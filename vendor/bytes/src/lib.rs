//! Vendored, dependency-free subset of the [`bytes`] crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! small slice of the `bytes` API it actually uses: cheaply-cloneable
//! immutable [`Bytes`], an append-only [`BytesMut`] builder, and the
//! big-endian cursor traits [`Buf`] / [`BufMut`]. Semantics match the real
//! crate for this subset (panics on out-of-bounds reads, `split_to`
//! advancing the cursor, `freeze` being O(1) conceptually).
//!
//! [`bytes`]: https://docs.rs/bytes

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Create an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Create from a static slice (copies; the shim has no zero-copy path).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Number of bytes remaining.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Split off the first `at` bytes, leaving `self` with the rest.
    ///
    /// # Panics
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// A view of a sub-range of these bytes, sharing the same backing
    /// allocation (no copy).
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// A growable byte buffer for building wire formats.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Create an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Create an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Resize to `new_len`, filling with `value` when growing.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(new_len, value);
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source; all multi-byte reads are big-endian.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advance the cursor by `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let v = u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }

    /// Read one signed byte.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    /// Read a big-endian `i16`.
    fn get_i16(&mut self) -> i16 {
        self.get_u16() as i16
    }

    /// Read a big-endian `i32`.
    fn get_i32(&mut self) -> i32 {
        self.get_u32() as i32
    }

    /// Read a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

/// Write cursor appending to a byte sink; all multi-byte writes are
/// big-endian.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, s: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append one signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    /// Append a big-endian `i16`.
    fn put_i16(&mut self, v: i16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_u32(0xDEADBEEF);
        b.put_u64(0x0102030405060708);
        let mut r = b.freeze();
        assert_eq!(r.len(), 15);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEADBEEF);
        assert_eq!(r.get_u64(), 0x0102030405060708);
        assert!(r.is_empty());
    }

    #[test]
    fn split_to_advances() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let a = Bytes::from(vec![9; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.len(), 1024);
    }

    #[test]
    fn index_mut_ranges_work() {
        let mut b = BytesMut::with_capacity(4);
        b.resize(4, 0);
        b[2..4].copy_from_slice(&[7, 8]);
        assert_eq!(&b[..], &[0, 0, 7, 8]);
    }
}
