//! Vendored subset of the [`bytes`] crate, backed by the `rpav_sim` arena.
//!
//! The build container has no registry access, so the workspace vendors the
//! small slice of the `bytes` API it actually uses: cheaply-cloneable
//! immutable [`Bytes`], an append-only [`BytesMut`] builder, and the
//! big-endian cursor traits [`Buf`] / [`BufMut`]. Semantics match the real
//! crate for this subset (panics on out-of-bounds reads, `split_to`
//! advancing the cursor, `freeze` being O(1) conceptually).
//!
//! Unlike the real crate, backing storage is recycled: [`BytesMut`] draws
//! uniquely-owned `Arc<Vec<u8>>` blocks from [`rpav_sim::arena`], and the
//! last [`Bytes`] / [`BytesMut`] owner of a block returns it — refcount
//! box and capacity together — to the per-thread slab on drop. Steady
//! state, serializing a packet therefore touches the system allocator
//! zero times. Contents are never reused (acquired blocks are cleared),
//! so recycling cannot perturb simulation results.
//!
//! [`bytes`]: https://docs.rs/bytes

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use rpav_sim::arena;

/// A cheaply cloneable, contiguous, immutable slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes {
            data: arena::empty(),
            start: 0,
            end: 0,
        }
    }
}

impl Drop for Bytes {
    fn drop(&mut self) {
        // Last owner of a real storage block: hand it back to the slab.
        // `get_mut` is the uniqueness check (strong == 1, no weaks); the
        // shared per-thread empty placeholder never satisfies it.
        if self.data.capacity() != 0 && Arc::get_mut(&mut self.data).is_some() {
            arena::recycle(std::mem::replace(&mut self.data, arena::empty()));
        }
    }
}

impl Bytes {
    /// Create an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Create from a static slice (copies into a pooled block; the shim
    /// has no zero-copy path).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s)
    }

    /// Number of bytes remaining.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Split off the first `at` bytes, leaving `self` with the rest.
    ///
    /// # Panics
    /// Panics if `at > self.len()`.
    #[inline]
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// A view of a sub-range of these bytes, sharing the same backing
    /// allocation (no copy).
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        let mut data = arena::acquire(s.len());
        Arc::get_mut(&mut data)
            .expect("freshly acquired block is unique")
            .extend_from_slice(s);
        Bytes {
            data,
            start: 0,
            end: s.len(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// A growable byte buffer for building wire formats.
///
/// Backed by a pooled arena block: at construction the block's vector is
/// moved *out* of its refcount shell so every write is a plain `Vec`
/// operation (no atomics on the write path), and [`BytesMut::freeze`]
/// moves it back in — a true O(1) hand-over with no copy and no
/// allocation. A dropped builder returns block and shell to the slab.
pub struct BytesMut {
    /// The buffer being built. Held directly (not through the shell) so
    /// the append path compiles to the same code as a bare `Vec<u8>`.
    vec: Vec<u8>,
    /// The uniquely-owned refcount shell the vector came from, waiting
    /// to receive it back at `freeze`. `None` for builders created
    /// without pooled storage (`BytesMut::new`).
    shell: Option<Arc<Vec<u8>>>,
}

impl Default for BytesMut {
    fn default() -> Self {
        BytesMut::new()
    }
}

impl Clone for BytesMut {
    fn clone(&self) -> Self {
        let mut b = BytesMut::with_capacity(self.len());
        b.vec.extend_from_slice(&self.vec);
        b
    }
}

impl Drop for BytesMut {
    fn drop(&mut self) {
        // Reunite vector and shell, then recycle the pair.
        if let Some(mut shell) = self.shell.take() {
            *Arc::get_mut(&mut shell).expect("builder shell is unique") =
                std::mem::take(&mut self.vec);
            arena::recycle(shell);
        }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("BytesMut").field(&&self[..]).finish()
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self.vec == other.vec
    }
}

impl Eq for BytesMut {}

impl BytesMut {
    /// Create an empty buffer. No pooled storage is acquired; the first
    /// `freeze` of a non-empty buffer mints a fresh shell (which is then
    /// recycled like any other block).
    pub fn new() -> Self {
        BytesMut {
            vec: Vec::new(),
            shell: None,
        }
    }

    /// Create an empty buffer with reserved capacity (pooled).
    pub fn with_capacity(cap: usize) -> Self {
        let mut shell = arena::acquire(cap);
        let vec = std::mem::take(Arc::get_mut(&mut shell).expect("acquired block is unique"));
        BytesMut {
            vec,
            shell: Some(shell),
        }
    }

    /// Current length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Resize to `new_len`, filling with `value` when growing.
    #[inline]
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.vec.resize(new_len, value);
    }

    /// Append a slice.
    #[inline]
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.vec.extend_from_slice(s);
    }

    /// Convert into an immutable [`Bytes`] — O(1), the block moves over.
    pub fn freeze(mut self) -> Bytes {
        let end = self.vec.len();
        let vec = std::mem::take(&mut self.vec);
        let data = match self.shell.take() {
            Some(mut shell) => {
                *Arc::get_mut(&mut shell).expect("builder shell is unique") = vec;
                shell
            }
            // Built via `BytesMut::new`: mint a shell for it.
            None => Arc::new(vec),
        };
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

/// Read cursor over a byte source; all multi-byte reads are big-endian.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advance the cursor by `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let v = u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }

    /// Read one signed byte.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    /// Read a big-endian `i16`.
    fn get_i16(&mut self) -> i16 {
        self.get_u16() as i16
    }

    /// Read a big-endian `i32`.
    fn get_i32(&mut self) -> i32 {
        self.get_u32() as i32
    }

    /// Read a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }
}

impl Buf for Bytes {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    #[inline]
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

/// Write cursor appending to a byte sink; all multi-byte writes are
/// big-endian.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, s: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append one signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    /// Append a big-endian `i16`.
    fn put_i16(&mut self, v: i16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_slice(&mut self, s: &[u8]) {
        self.vec.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_u32(0xDEADBEEF);
        b.put_u64(0x0102030405060708);
        let mut r = b.freeze();
        assert_eq!(r.len(), 15);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEADBEEF);
        assert_eq!(r.get_u64(), 0x0102030405060708);
        assert!(r.is_empty());
    }

    #[test]
    fn split_to_advances() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let a = Bytes::from(vec![9; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.len(), 1024);
    }

    #[test]
    fn freeze_moves_storage_without_copy() {
        let mut b = BytesMut::with_capacity(64);
        b.extend_from_slice(b"hello");
        let ptr = b.as_ref().as_ptr();
        let frozen = b.freeze();
        assert_eq!(frozen.as_ref().as_ptr(), ptr, "freeze must not copy");
        assert_eq!(&frozen[..], b"hello");
    }

    #[test]
    fn dropped_buffers_recycle_their_storage() {
        // Warm the slab, remember the block, and check the next builder
        // gets the same storage back.
        let mut b = BytesMut::with_capacity(512);
        b.extend_from_slice(b"warmup");
        let ptr = b.as_ref().as_ptr();
        drop(b.freeze()); // sole owner drops → block returns to the slab
        let again = BytesMut::with_capacity(256);
        assert_eq!(
            again.vec.as_ptr(),
            ptr,
            "storage must be recycled through the arena"
        );
        assert!(again.is_empty(), "recycled storage is cleared");
    }

    #[test]
    fn clones_pin_storage_until_the_last_owner_drops() {
        let mut b = BytesMut::with_capacity(64);
        b.extend_from_slice(&[1, 2, 3, 4]);
        let a = b.freeze();
        let c = a.clone();
        let tail = c.slice(2..);
        drop(a);
        drop(c);
        assert_eq!(&tail[..], &[3, 4], "slices keep the block alive");
    }

    #[test]
    fn index_mut_ranges_work() {
        let mut b = BytesMut::with_capacity(4);
        b.resize(4, 0);
        b[2..4].copy_from_slice(&[7, 8]);
        assert_eq!(&b[..], &[0, 0, 7, 8]);
    }
}
