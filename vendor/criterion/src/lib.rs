//! Vendored, dependency-free subset of the [`criterion`] bench harness.
//!
//! The build container has no registry access, so the workspace vendors the
//! four symbols its benches use: [`Criterion`], [`Bencher`],
//! [`criterion_group!`] and [`criterion_main!`]. Instead of statistical
//! sampling it runs each benchmark for a short fixed wall-clock budget and
//! prints the mean iteration time — enough to eyeball regressions and to
//! keep `cargo bench` compiling and running offline.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::time::{Duration, Instant};

/// Wall-clock budget per benchmark.
const TARGET: Duration = Duration::from_millis(300);

/// Benchmark registry/driver (subset of the real `Criterion`).
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Run `f` as the benchmark `name` and print its mean iteration time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        // Warm-up pass (not measured).
        f(&mut b);
        b.iters = 0;
        b.elapsed = Duration::ZERO;
        let start = Instant::now();
        while start.elapsed() < TARGET {
            f(&mut b);
        }
        let mean_ns = if b.iters == 0 {
            0.0
        } else {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        };
        println!(
            "bench {name:<40} {mean_ns:>12.1} ns/iter ({} iters)",
            b.iters
        );
        self
    }

    /// Start a named benchmark group (subset of the real API: the group
    /// only prefixes benchmark names; tuning knobs are accepted and
    /// ignored).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks (subset of the real `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's fixed wall-clock budget
    /// ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run `f` as `group/name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        self.c.bench_function(&full, f);
        self
    }

    /// End the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure repeated executions of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        const BATCH: u64 = 16;
        let start = Instant::now();
        for _ in 0..BATCH {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += BATCH;
    }
}

/// Prevent the optimiser from eliding a value (re-export shape of upstream).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        assert!(ran);
    }
}
