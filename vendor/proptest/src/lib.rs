//! Vendored, dependency-free subset of the [`proptest`] crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! slice of the proptest API its tests use: the [`proptest!`] macro, range /
//! tuple / `any` / `collection::vec` / `option::of` strategies and the
//! `prop_assert*` macros. Unlike upstream there is **no shrinking** and no
//! persisted failure file: every test runs a fixed number of cases
//! ([`CASES`]) from an RNG seeded deterministically from the test's name, so
//! failures are reproducible by re-running the test.
//!
//! [`proptest`]: https://docs.rs/proptest

use std::ops::Range;

/// Number of generated cases per property test.
pub const CASES: u32 = 128;

/// Deterministic generator used to drive strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name: same name ⇒ same case sequence.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift reduction; bias is negligible for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value generator. The vendored analogue of `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )+};
}

impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_sint {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}

impl_range_strategy_sint!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

/// Strategy for "any value of `T`" — see [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Generate arbitrary values of `T` (full value range for primitives).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_uint {
    ($($t:ty),+) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric spread over a wide magnitude range.
        rng.next_f64() * 2e9 - 1e9
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of values from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `Some`/`None` (≈ 3:1, matching upstream's default
    /// bias toward `Some`).
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S>(S);

    /// `Option` of values from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Glob import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`](crate::CASES) deterministic cases.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..$crate::CASES {
                let _ = __case;
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Assert inside a property test (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_name_same_sequence() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..10_000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let i = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    proptest! {
        /// The macro itself works end to end, including tuples, vecs and
        /// options.
        #[test]
        fn macro_smoke(
            x in 0u64..100,
            (a, b) in (any::<bool>(), 0u16..50),
            v in collection::vec(0u8..10, 1..20),
            o in option::of(0u32..5),
        ) {
            prop_assert!(x < 100);
            prop_assert!(b < 50);
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|e| *e < 10));
            if let Some(val) = o {
                prop_assert!(val < 5);
            }
            let _ = a;
        }

        #[test]
        fn second_fn_in_same_invocation(y in 0usize..3) {
            prop_assert!(y < 3);
        }
    }
}
