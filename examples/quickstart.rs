//! Quickstart: fly one simulated measurement run and print what the remote
//! pilot experienced.
//!
//! ```sh
//! cargo run -p rpav-examples --release --bin quickstart
//! ```

use rpav_core::prelude::*;
use rpav_core::stats;

fn main() {
    // One GCC flight in the rural area, operator P1 — the scenario where
    // adaptive streaming earns its keep (paper §4.2).
    let config = ExperimentConfig::builder()
        .environment(Environment::Rural)
        .cc(CcMode::Gcc)
        .seed(7)
        .build();
    println!("flying: {} (≈6 simulated minutes)...", config.label());
    let m = Simulation::new(config).run();

    println!("\n== link ==");
    println!("  goodput            {:>8.1} Mbps", m.goodput_bps() / 1e6);
    println!("  packet error rate  {:>8.3} %", m.per() * 100.0);
    println!(
        "  one-way delay      {:>8.1} ms median, {:.1} ms p99",
        stats::quantile(&m.owd_ms(), 0.5),
        stats::quantile(&m.owd_ms(), 0.99)
    );
    println!(
        "  handovers          {:>8} ({:.3}/s, {} cells visited)",
        m.handovers.len(),
        m.ho_frequency(),
        m.distinct_cells
    );

    println!("\n== video ==");
    let lat = m.playback_latency_ms();
    println!(
        "  playback latency   {:>8.0} ms median; within the 300 ms RP budget {:.1}% of the time",
        stats::quantile(&lat, 0.5),
        m.playback_within(300.0) * 100.0
    );
    let ssim = m.ssim_samples();
    println!(
        "  frame quality      {:>8.2} median SSIM; unusable (<0.5) {:.2}% of frames",
        stats::quantile(&ssim, 0.5),
        stats::fraction_below_strict(&ssim, 0.5) * 100.0
    );
    println!(
        "  smoothness         {:>8.2} stalls/min over {} displayed frames",
        m.stalls_per_minute(),
        m.frames.iter().filter(|f| f.displayed).count()
    );

    println!(
        "\nverdict: {}",
        if m.playback_within(300.0) > 0.8 && m.stalls_per_minute() < 1.0 {
            "remote piloting would have been possible on this flight"
        } else {
            "this flight would have challenged the remote pilot"
        }
    );
}
