//! Produce a release-shaped dataset directory — the analog of the paper's
//! published measurement data (doi 10.14459/2022mp1687221): per-run CSVs
//! plus an RRC message capture, from a small simulated campaign.
//!
//! ```sh
//! cargo run -p rpav-examples --release --bin make_dataset
//! # dataset lands in target/rpav-dataset/
//! ```

use rpav_core::dataset::{self, DatasetRun};
use rpav_core::prelude::*;
use rpav_lte::{NetworkProfile, RadioModel, RrcLog};
use rpav_sim::{RngSet, SimTime};
use rpav_uav::{profiles as uav_profiles, Position};

fn main() {
    let out = std::path::Path::new("target").join("rpav-dataset");

    // A small campaign: both environments, the three workloads, one run
    // each (`.runs(n)` for a fuller dataset) — expanded and executed as a
    // single matrix on the campaign engine's thread pool.
    let base = ExperimentConfig::builder()
        .environment(Environment::Urban)
        .cc(CcMode::Gcc)
        .seed(0xDA7A)
        .build();
    let spec = MatrixSpec::new(base)
        .environments([Environment::Urban, Environment::Rural])
        .paper_workloads();
    println!("running {} measurement flights...", spec.expand().len());
    let result = CampaignEngine::new().run(&spec);
    let runs: Vec<DatasetRun<'_>> = result
        .outcomes
        .iter()
        .map(|o| DatasetRun {
            config: &o.cell().config,
            metrics: o.metrics(),
        })
        .collect();
    dataset::export(&out, &runs).expect("dataset export");
    println!("{}", result.report.summary());

    // The RRC capture (QCSuper analog) for one urban flight.
    let profile = NetworkProfile::new(Environment::Urban, Operator::P1);
    let rngs = RngSet::new(0xDA7A);
    let mut radio = RadioModel::new(&profile, &rngs, 0);
    let plan = uav_profiles::paper_flight(
        Position::ground(0.0, 0.0),
        rpav_sim::SimDuration::from_secs(5),
    );
    let mut rrc = RrcLog::new();
    let mut t = SimTime::ZERO;
    while t < SimTime::ZERO + plan.duration() {
        let s = radio.step(t, &plan.position_at(t));
        if let Some(ho) = s.handover {
            rrc.record_handover(&ho);
        }
        t += radio.tick();
    }
    std::fs::write(out.join("rrc.csv"), rrc.to_csv()).expect("write rrc.csv");

    println!("dataset written to {}:", out.display());
    for entry in std::fs::read_dir(&out).unwrap() {
        let e = entry.unwrap();
        println!(
            "  {:<16} {:>9} bytes",
            e.file_name().to_string_lossy(),
            e.metadata().unwrap().len()
        );
    }
    println!(
        "\nHET check from the RRC capture alone: {} handovers, e.g. {:?}",
        rrc.extract_het().len(),
        rrc.extract_het().first().map(|(_, d)| *d)
    );
}
