//! Produce a release-shaped dataset directory — the analog of the paper's
//! published measurement data (doi 10.14459/2022mp1687221): per-run CSVs
//! plus an RRC message capture, from a small simulated campaign.
//!
//! ```sh
//! cargo run -p rpav-examples --release --bin make_dataset
//! # dataset lands in target/rpav-dataset/
//! ```

use rpav_core::dataset::{self, DatasetRun};
use rpav_core::prelude::*;
use rpav_lte::{NetworkProfile, RadioModel, RrcLog};
use rpav_sim::{RngSet, SimTime};
use rpav_uav::{profiles as uav_profiles, Position};

fn main() {
    let out = std::path::Path::new("target").join("rpav-dataset");

    // A small campaign: both environments, the three workloads, one run
    // each (bump `runs` for a fuller dataset).
    let mut configs = Vec::new();
    for env in [Environment::Urban, Environment::Rural] {
        for cc in [
            CcMode::paper_static(env),
            CcMode::paper_scream(),
            CcMode::Gcc,
        ] {
            configs.push(ExperimentConfig::paper(
                env,
                Operator::P1,
                Mobility::Air,
                cc,
                0xDA7A,
                0,
            ));
        }
    }
    println!("running {} measurement flights...", configs.len());
    let metrics: Vec<RunMetrics> = configs
        .iter()
        .map(|cfg| Simulation::new(*cfg).run())
        .collect();
    let runs: Vec<DatasetRun<'_>> = configs
        .iter()
        .zip(metrics.iter())
        .map(|(config, metrics)| DatasetRun { config, metrics })
        .collect();
    dataset::export(&out, &runs).expect("dataset export");

    // The RRC capture (QCSuper analog) for one urban flight.
    let profile = NetworkProfile::new(Environment::Urban, Operator::P1);
    let rngs = RngSet::new(0xDA7A);
    let mut radio = RadioModel::new(&profile, &rngs, 0);
    let plan = uav_profiles::paper_flight(
        Position::ground(0.0, 0.0),
        rpav_sim::SimDuration::from_secs(5),
    );
    let mut rrc = RrcLog::new();
    let mut t = SimTime::ZERO;
    while t < SimTime::ZERO + plan.duration() {
        let s = radio.step(t, &plan.position_at(t));
        if let Some(ho) = s.handover {
            rrc.record_handover(&ho);
        }
        t += radio.tick();
    }
    std::fs::write(out.join("rrc.csv"), rrc.to_csv()).expect("write rrc.csv");

    println!("dataset written to {}:", out.display());
    for entry in std::fs::read_dir(&out).unwrap() {
        let e = entry.unwrap();
        println!(
            "  {:<16} {:>9} bytes",
            e.file_name().to_string_lossy(),
            e.metadata().unwrap().len()
        );
    }
    println!(
        "\nHET check from the RRC capture alone: {} handovers, e.g. {:?}",
        rrc.extract_het().len(),
        rrc.extract_het().first().map(|(_, d)| *d)
    );
}
