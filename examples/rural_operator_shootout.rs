//! Appendix A.3 in miniature: does switching rural operator help?
//!
//! Compares P1 (sparse rural grid) against P2 (denser grid, more capacity,
//! more handovers) for all three workloads, and prints which operator a
//! drone fleet should pick per criterion.
//!
//! ```sh
//! cargo run -p rpav-examples --release --bin rural_operator_shootout
//! ```

use rpav_core::prelude::*;
use rpav_core::stats;

struct Row {
    cc: &'static str,
    op: &'static str,
    goodput_mbps: f64,
    within_300: f64,
    ssim_low: f64,
    ho_per_s: f64,
}

fn main() {
    println!("rural shootout, aerial, 2 runs per cell\n");
    let mut rows = Vec::new();
    for cc in [
        CcMode::paper_static(Environment::Rural),
        CcMode::paper_scream(),
        CcMode::Gcc,
    ] {
        for op in [Operator::P1, Operator::P2] {
            let cfg = ExperimentConfig::builder()
                .operator(op)
                .cc(cc)
                .seed(0x5400)
                .build();
            let c = CampaignEngine::new()
                .run(&CampaignSpec::new(cfg).runs(2).to_matrix())
                .campaigns()
                .pop()
                .expect("one campaign");
            rows.push(Row {
                cc: cc.name(),
                op: op.name(),
                goodput_mbps: stats::mean(
                    &c.runs
                        .iter()
                        .map(|r| r.goodput_bps() / 1e6)
                        .collect::<Vec<_>>(),
                ),
                within_300: stats::fraction_at_or_below(&c.playback_latency_ms(), 300.0),
                ssim_low: stats::fraction_below_strict(&c.ssim(), 0.5),
                ho_per_s: stats::mean(&c.ho_frequencies()),
            });
        }
    }

    println!(
        "{:<8} {:<4} {:>9} {:>10} {:>10} {:>8}",
        "method", "op", "Mbps", "<300ms %", "ssim<.5 %", "HO/s"
    );
    for r in &rows {
        println!(
            "{:<8} {:<4} {:>9.1} {:>10.1} {:>10.2} {:>8.3}",
            r.cc,
            r.op,
            r.goodput_mbps,
            r.within_300 * 100.0,
            r.ssim_low * 100.0,
            r.ho_per_s
        );
    }

    let p1: Vec<&Row> = rows.iter().filter(|r| r.op == "P1").collect();
    let p2: Vec<&Row> = rows.iter().filter(|r| r.op == "P2").collect();
    let avg = |v: &[&Row], f: fn(&Row) -> f64| v.iter().map(|r| f(r)).sum::<f64>() / v.len() as f64;
    println!(
        "\nP2 offers {:.1}x the goodput but {:.1}x the handover rate (paper App. A.3: \
         denser deployment wins on capacity and quality, not automatically on latency)",
        avg(&p2, |r| r.goodput_mbps) / avg(&p1, |r| r.goodput_mbps),
        avg(&p2, |r| r.ho_per_s) / avg(&p1, |r| r.ho_per_s).max(1e-9),
    );
}
