//! Stress scenario built from the low-level crates directly: a UAV hovers
//! at 120 m while we hand-crank the radio model, count handovers and show
//! how the link capacity breathes — the smoltcp-style "poke the stack with
//! adverse conditions" example.
//!
//! This example bypasses `rpav-core` on purpose to demonstrate the
//! substrate APIs (`rpav-lte`, `rpav-uav`) on their own.
//!
//! ```sh
//! cargo run -p rpav-examples --release --bin handover_storm
//! ```

use rpav_lte::{Environment, NetworkProfile, Operator, RadioModel};
use rpav_sim::{RngSet, SimDuration, SimTime};
use rpav_uav::{profiles, Position};

fn main() {
    // The worst case for mobility management: the dense urban grid seen
    // from above, with the paper trajectory flown twice back-to-back.
    let profile = NetworkProfile::new(Environment::Urban, Operator::P1);
    let rngs = RngSet::new(0x5702u64);
    let mut radio = RadioModel::new(&profile, &rngs, 0);
    let plan = profiles::paper_flight(Position::ground(0.0, 0.0), SimDuration::from_secs(5));

    let mut t = SimTime::ZERO;
    let end = SimTime::ZERO + plan.duration();
    let mut hos = Vec::new();
    let mut cap_min: f64 = f64::MAX;
    let mut cap_max: f64 = 0.0;
    let mut interrupted = SimDuration::ZERO;
    println!("time   alt    serving  SINR    uplink   event");
    while t < end {
        let pos = plan.position_at(t);
        let s = radio.step(t, &pos);
        cap_min = cap_min.min(s.uplink_capacity_bps.max(1.0));
        cap_max = cap_max.max(s.uplink_capacity_bps);
        if s.in_handover {
            interrupted += radio.tick();
        }
        if let Some(ho) = s.handover {
            println!(
                "{:>5.1}s {:>4.0}m cell {:>3} {:>5.1}dB {:>6.1}Mbps HO {:?}→{:?} ({:.0} ms, {:?})",
                t.as_secs_f64(),
                pos.z,
                s.serving.0,
                s.sinr_db,
                s.uplink_capacity_bps / 1e6,
                ho.from.0,
                ho.to.0,
                ho.het().as_millis_f64(),
                ho.kind
            );
            hos.push(ho);
        }
        t += radio.tick();
    }

    let dur = plan.duration().as_secs_f64();
    println!(
        "\n{} handovers in {:.0} s ({:.3}/s)",
        hos.len(),
        dur,
        hos.len() as f64 / dur
    );
    println!(
        "radio interrupted for {:.2} s total; capacity ranged {:.1}–{:.1} Mbps",
        interrupted.as_secs_f64(),
        cap_min / 1e6,
        cap_max / 1e6
    );
    println!("served by {} distinct cells", radio.distinct_cells());
    let worst = hos
        .iter()
        .map(|h| h.het())
        .max()
        .unwrap_or(SimDuration::ZERO);
    println!(
        "longest execution interruption: {:.0} ms{}",
        worst.as_millis_f64(),
        if worst > SimDuration::from_millis(300) {
            "  ← this is the kind of outage the paper flags as unbearable for RP"
        } else {
            ""
        }
    );
}
