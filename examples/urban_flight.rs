//! Urban bake-off: run the paper's three §3.2 workloads over the same
//! urban flights and write a Fig. 8-style CSV trace of the GCC run.
//!
//! ```sh
//! cargo run -p rpav-examples --release --bin urban_flight
//! # trace lands in target/urban_gcc_trace.csv
//! ```

use rpav_core::prelude::*;
use rpav_core::summary::HeadlineStats;
use rpav_core::trace;

fn main() {
    println!("urban P1, aerial, 2 runs per workload\n");
    println!("{}", HeadlineStats::header());
    let mut gcc_metrics = None;
    for cc in [
        CcMode::paper_static(Environment::Urban),
        CcMode::paper_scream(),
        CcMode::Gcc,
    ] {
        let cfg = ExperimentConfig::builder()
            .environment(Environment::Urban)
            .cc(cc)
            .seed(0xF11687)
            .build();
        let campaign = CampaignEngine::new()
            .run(&CampaignSpec::new(cfg).runs(2).to_matrix())
            .campaigns()
            .pop()
            .expect("one campaign");
        println!("{}", HeadlineStats::from_campaign(&campaign).row());
        if matches!(cc, CcMode::Gcc) {
            gcc_metrics = campaign.runs.into_iter().next();
        }
    }

    // Export the GCC flight as the joined time series of Fig. 8.
    if let Some(m) = gcc_metrics {
        let rows = trace::build_trace(&m);
        let csv = trace::to_csv(&rows);
        let path = std::path::Path::new("target").join("urban_gcc_trace.csv");
        std::fs::create_dir_all("target").ok();
        std::fs::write(&path, csv).expect("write trace");
        println!(
            "\nwrote {} trace rows to {} (network latency, playback latency, HO marks)",
            rows.len(),
            path.display()
        );
        // Show the moments the pilot would have noticed.
        let spikes: Vec<&trace::TraceRow> = rows
            .iter()
            .filter(|r| r.network_latency_ms.is_finite() && r.network_latency_ms > 200.0)
            .collect();
        println!(
            "latency exceeded 200 ms in {} of {} windows; {} handovers during the flight",
            spikes.len(),
            rows.len(),
            m.handovers.len()
        );
    }
}
