//! Failover dedup acceptance: cross-path duplication must never
//! double-count playback, and the repair machinery must stay coherent
//! when a retransmission races a cross-path duplicate.
//!
//! Two layers:
//!
//! * component level — the jitter buffer's first-copy-wins contract and
//!   the NACK generator's classification of an RTX copy that arrives
//!   *after* a duplicate already filled the gap (it must read `Stale`,
//!   not `Recovered`, so repair efficiency is not inflated);
//! * end-to-end — seed-matched multipath runs where every accepted
//!   packet's second copy is discarded exactly once and goodput counts
//!   each sequence number at most once.

use rpav_core::multipath::{run_multipath, MultipathScheme};
use rpav_core::prelude::*;
use rpav_rtp::nack::Arrival;
use rpav_rtp::{JitterBuffer, JitterConfig, NackConfig, NackGenerator, RtpPacket};
use rpav_sim::{SimDuration, SimTime};

fn ms(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(n)
}

fn pkt(seq: u16, timestamp: u32) -> RtpPacket {
    RtpPacket {
        marker: false,
        payload_type: 96,
        sequence: seq,
        timestamp,
        ssrc: 0x5EED,
        transport_seq: None,
        payload: bytes::Bytes::from(vec![0u8; 1_200]),
        wire: None,
    }
}

#[test]
fn jitter_buffer_first_copy_wins_across_paths() {
    let mut jb = JitterBuffer::new(JitterConfig::default());
    // The fast leg delivers seq 0..5; the slow leg's copies trail by
    // 30 ms. Every trailing copy must be discarded as a duplicate —
    // whether it arrives while the original is still buffered or after
    // the original was already delivered.
    for seq in 0u16..5 {
        jb.push(ms(u64::from(seq) * 33), pkt(seq, u32::from(seq) * 3_000));
    }
    for seq in 0u16..3 {
        jb.push(
            ms(u64::from(seq) * 33 + 30),
            pkt(seq, u32::from(seq) * 3_000),
        );
    }
    // Drain past the 150 ms target: the first copies play out.
    let mut delivered = Vec::new();
    let mut t = SimTime::ZERO;
    while t < ms(2_000) {
        while let Some((_, p)) = jb.pop_due(t) {
            delivered.push(p.sequence);
        }
        t += SimDuration::from_millis(1);
    }
    assert_eq!(delivered, vec![0, 1, 2, 3, 4]);
    assert_eq!(jb.stats().duplicates, 3);
    // Copies of already-delivered packets are also rejected (delivery
    // watermark, not just the in-queue scan).
    jb.push(ms(2_000), pkt(4, 4 * 3_000));
    assert_eq!(jb.stats().duplicates, 4);
    assert_eq!(jb.stats().delivered, 5);
}

#[test]
fn rtx_copy_after_cross_path_duplicate_reads_stale() {
    let mut gen = NackGenerator::new(NackConfig::default());
    gen.set_rtt_hint(SimDuration::from_millis(40));

    // Seq 0, 1 arrive in order on the active leg; 2 is lost there.
    assert_eq!(gen.on_packet(ms(0), 0), Arrival::InOrder);
    assert_eq!(gen.on_packet(ms(33), 1), Arrival::InOrder);
    // 3 arrives, opening a gap at 2; the generator NACKs it.
    assert_eq!(gen.on_packet(ms(66), 3), Arrival::InOrder);
    let nack = gen.poll(ms(120)).expect("gap must be NACKed");
    assert_eq!(nack.lost, vec![2]);

    // The standby leg's duplicate copy of 2 lands first and fills the
    // gap — it was requested, so it classifies as recovered.
    assert_eq!(gen.on_packet(ms(140), 2), Arrival::Recovered);
    assert_eq!(gen.stats().recovered, 1);

    // The actual RTX answer to the NACK trails in. The gap is gone:
    // the copy must read Stale and must NOT bump the recovered counter
    // (that would double-count the repair).
    assert_eq!(gen.on_packet(ms(180), 2), Arrival::Stale);
    assert_eq!(gen.stats().recovered, 1);

    // And the jitter buffer discards that same RTX copy, so playback
    // never sees the sequence number twice.
    let mut jb = JitterBuffer::new(JitterConfig::default());
    for (t, seq) in [(0u64, 0u16), (33, 1), (66, 3), (140, 2)] {
        jb.push(ms(t), pkt(seq, u32::from(seq) * 3_000));
    }
    let before = jb.stats().pushed;
    jb.push(ms(180), pkt(2, 2 * 3_000));
    assert_eq!(jb.stats().duplicates, 1);
    assert_eq!(jb.stats().pushed, before);
}

/// A short multipath run for the end-to-end accounting checks.
fn mp_run(scheme: MultipathScheme) -> RunMetrics {
    let cfg = ExperimentConfig::builder()
        .cc(CcMode::paper_static(Environment::Rural))
        .seed(0xFA11)
        .hold_secs(1)
        .build();
    run_multipath(&cfg, scheme)
}

#[test]
fn duplicate_scheme_discards_second_copies_and_counts_goodput_once() {
    let single = mp_run(MultipathScheme::SinglePath);
    let dup = mp_run(MultipathScheme::Duplicate);

    // Seed-matched static-CC runs encode identically.
    assert_eq!(dup.media_sent, single.media_sent);
    // Every media packet went out twice...
    assert_eq!(dup.dup_tx_packets, dup.media_sent);
    // ...but goodput counts each sequence number at most once.
    assert!(dup.media_received <= dup.media_sent);
    assert!(
        dup.media_received_bytes <= dup.media_sent * 1_500,
        "goodput double-counted: {} bytes for {} sent",
        dup.media_received_bytes,
        dup.media_sent
    );
    // The discarded copies are visible in the dedup counter: on two
    // mostly-clean rural legs, most packets' second copy survives the
    // wire and is rejected at the receiver.
    assert!(
        dup.duplicate_packets > dup.media_sent / 2,
        "only {} duplicates discarded for {} sent",
        dup.duplicate_packets,
        dup.media_sent
    );
    // Redundancy can only help delivery.
    assert!(dup.media_received >= single.media_received);
}

#[test]
fn selective_duplicate_dedup_accounting_conserves_packets() {
    let sel = mp_run(MultipathScheme::SelectiveDuplicate);
    assert!(sel.dup_tx_packets > 0, "keyframes must be duplicated");
    // Conservation: the dedup counter merges cross-path second copies
    // (at most one per duplicated transmission) with jitter-buffer
    // below-watermark discards (at most one per accepted packet — a
    // fast-leg keyframe copy that plays out can stale-bin originals
    // still queued behind a bufferbloated active leg). Nothing else may
    // feed it.
    assert!(
        sel.duplicate_packets <= sel.dup_tx_packets + sel.media_received,
        "discarded {} duplicates from {} copies + {} accepted",
        sel.duplicate_packets,
        sel.dup_tx_packets,
        sel.media_received
    );
    // Goodput still counts each sequence number at most once.
    assert!(sel.media_received <= sel.media_sent);
}
