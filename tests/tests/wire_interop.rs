//! Cross-crate wire-format interop: the sender-side crates and the
//! receiver-side crates only meet through serialised bytes crossing the
//! emulated network — these tests exercise those seams directly.

use rpav_netem::{FaultConfig, Packet, PacketKind, Path};
use rpav_rtp::jitter::{JitterBuffer, JitterConfig};
use rpav_rtp::packet::RtpPacket;
use rpav_rtp::packetize::{Depacketizer, FrameMeta, Packetizer};
use rpav_rtp::rfc8888::{Rfc8888Builder, Rfc8888Packet};
use rpav_rtp::twcc::{TwccFeedback, TwccRecorder};
use rpav_sim::{RngSet, SimDuration, SimTime};

fn path(rate_bps: f64, loss: f64, seed: u64) -> Path {
    let rngs = RngSet::new(seed);
    Path::new(
        FaultConfig {
            drop_chance: loss,
            ..Default::default()
        },
        rngs.stream("fault"),
        rate_bps,
        SimDuration::from_millis(5),
        usize::MAX,
        SimDuration::from_millis(12),
        SimDuration::from_micros(500),
        rngs.stream("wan"),
    )
}

/// Frames → RTP → wire bytes → lossy path → parse → jitter buffer →
/// depacketizer → frames, with loss accounting consistent end to end.
#[test]
fn video_over_lossy_path_roundtrip() {
    let mut packetizer = Packetizer::new(2, true);
    let mut path = path(20e6, 0.02, 42);
    let mut jitter = JitterBuffer::new(JitterConfig::default());
    let mut depack = Depacketizer::new();

    let mut sent_packets = 0u64;
    let mut t = SimTime::ZERO;
    let n_frames = 90u64;
    for n in 0..n_frames {
        t = SimTime::from_micros(n * 33_333);
        let meta = FrameMeta {
            frame_number: n,
            encode_time: t,
            keyframe: n % 30 == 0,
            frame_bytes: 8_000,
        };
        for rtp in packetizer.packetize(meta, t) {
            sent_packets += 1;
            let wire = rtp.serialize();
            path.enqueue(t, Packet::new(sent_packets, wire, PacketKind::Media, t));
        }
    }
    // Drain the path and feed the receiver.
    let horizon = t + SimDuration::from_secs(5);
    let mut now = SimTime::ZERO;
    let mut received = 0u64;
    while now < horizon {
        while let Some(p) = path.poll(now) {
            let rtp = RtpPacket::parse(p.payload).expect("wire-valid RTP");
            received += 1;
            jitter.push(now, rtp);
        }
        while let Some((playout, rtp)) = jitter.pop_due(now) {
            depack.push(&rtp, playout);
        }
        now += SimDuration::from_millis(5);
    }
    let frames = depack.drain(u64::MAX);
    assert_eq!(frames.len() as u64, n_frames, "every frame must surface");
    let complete = frames.iter().filter(|f| f.is_complete()).count();
    assert!(
        complete >= 60,
        "only {complete}/90 frames complete at 2% loss"
    );
    assert!(complete < 90, "2% loss should damage some frames");
    // Conservation: received + injector drops == sent.
    let (dropped, _, _, _) = path.fault_counters();
    assert_eq!(received + dropped, sent_packets);
    // Depacketizer's gap-based loss count matches the real loss.
    assert_eq!(depack.lost_packets(), dropped);
}

/// GCC's TWCC feedback survives its own wire format over a path and the
/// reconstructed arrival times match what the receiver recorded.
#[test]
fn twcc_feedback_over_network() {
    let mut rec = TwccRecorder::new();
    let mut arrivals = Vec::new();
    for i in 0..500u16 {
        let at = SimTime::from_micros(1_000_000 + i as u64 * 700);
        if i % 37 != 0 {
            rec.on_packet(i, at);
            arrivals.push((i, at));
        }
    }
    let fb = rec.build_feedback().unwrap();
    let mut path = path(10e6, 0.0, 7);
    let t0 = SimTime::from_secs(2);
    path.enqueue(t0, Packet::new(1, fb.serialize(), PacketKind::Feedback, t0));
    let mut got = None;
    let mut now = t0;
    while got.is_none() && now < t0 + SimDuration::from_secs(1) {
        if let Some(p) = path.poll(now) {
            got = TwccFeedback::parse(p.payload).ok();
        }
        now += SimDuration::from_millis(1);
    }
    let parsed = got.expect("feedback must arrive and parse");
    let mut matched = 0;
    let mut total_err = 0i64;
    for (seq, want) in arrivals {
        let idx = seq.wrapping_sub(parsed.base_seq) as usize;
        if let Some(arrival) = parsed.arrival_time(idx) {
            let err = arrival.as_micros() as i64 - want.as_micros() as i64;
            // Deltas are 250 µs-quantised; the encoder accumulates the
            // quantised reconstruction, so the error never drifts past one
            // tick.
            assert!(err.abs() <= 250, "seq {seq}: err {err} µs");
            total_err += err;
            matched += 1;
        }
    }
    assert!(
        (total_err / matched.max(1)).abs() <= 250,
        "systematic bias: {} µs avg",
        total_err / matched.max(1)
    );
    assert!(matched > 450);
    // Lost packets are reported as such.
    let lost = parsed.packets().filter(|(_, a)| a.is_none()).count();
    assert!(lost >= 13, "expected the %37 holes, saw {lost}");
}

/// RFC 8888 feedback across the network keeps the bounded span: the first
/// report never reaches further back than `max_reports`.
#[test]
fn rfc8888_span_preserved_over_wire() {
    let mut builder = Rfc8888Builder::new(64);
    for i in 0..1_000u16 {
        builder.on_packet(i, SimTime::from_micros(i as u64 * 300));
    }
    let fb = builder.build(SimTime::from_millis(400)).unwrap();
    let parsed = Rfc8888Packet::parse(fb.serialize()).unwrap();
    assert_eq!(parsed.reports.len(), 64);
    assert_eq!(parsed.reports.first().unwrap().seq, 1_000 - 64);
    assert_eq!(parsed.reports.last().unwrap().seq, 999);
}

/// Regression corpus for the hardened wire parsers: every historically
/// interesting malformed shape maps to a typed `ParseError` — never a
/// panic, never a bogus `Ok`. The randomized complement lives in
/// `parser_fuzz.rs`; this corpus pins the exact shapes so a parser
/// regression names the case that broke.
#[test]
fn malformed_wire_regression_corpus() {
    use bytes::Bytes;
    use rpav_rtp::error::ParseError;
    use rpav_rtp::nack::Nack;
    use rpav_rtp::pli::Pli;

    // -- Truncations: empty, sub-header, and one-byte-short-of-valid.
    assert!(matches!(
        RtpPacket::parse(Bytes::from(&[][..])),
        Err(ParseError::Truncated {
            needed: 12,
            have: 0
        })
    ));
    let rtp = RtpPacket {
        marker: true,
        payload_type: 96,
        sequence: 7,
        timestamp: 90_000,
        ssrc: 2,
        transport_seq: Some(9),
        payload: Bytes::from(&[1u8, 2, 3][..]),
        wire: None,
    };
    let wire = rtp.serialize();
    for len in 0..wire.len() {
        let r = RtpPacket::parse(Bytes::from(&wire[..len]));
        assert!(
            r != Ok(rtp.clone()),
            "truncation at {len} still produced the full packet"
        );
    }
    assert_eq!(RtpPacket::parse(wire.clone()), Ok(rtp.clone()));

    // -- Version field: RTP/RTCP version must be 2.
    let mut bad = wire.to_vec();
    bad[0] &= 0x3f; // version 0
    assert!(matches!(
        RtpPacket::parse(Bytes::from(bad)),
        Err(ParseError::BadVersion { version: 0 })
    ));

    // -- RTCP dialect demultiplexing on the shared feedback stream: each
    //    parser rejects the other dialects as WrongPacketType, which is a
    //    routing outcome, not wire damage.
    let pli = Pli {
        sender_ssrc: 1,
        media_ssrc: 2,
    }
    .serialize();
    // Losses >16 apart force one FCI entry each, keeping the packet
    // long enough that the other dialects reject it on type, not length.
    let nack = Nack {
        sender_ssrc: 1,
        media_ssrc: 2,
        lost: vec![5, 100, 200],
    }
    .serialize();
    assert!(matches!(
        Nack::parse(pli.clone()),
        Err(ParseError::WrongPacketType { .. })
    ));
    assert!(matches!(
        Pli::parse(nack.clone()),
        Err(ParseError::WrongPacketType { .. })
    ));
    assert!(matches!(
        TwccFeedback::parse(nack.clone()),
        Err(ParseError::WrongPacketType { .. })
    ));
    assert!(matches!(
        Rfc8888Packet::parse(nack.clone()),
        Err(ParseError::WrongPacketType { .. })
    ));
    // And the right dialect still parses after the cross-checks.
    assert!(Pli::parse(pli).is_ok());
    assert_eq!(Nack::parse(nack).unwrap().lost, vec![5, 100, 200]);

    // -- Structural damage: a NACK whose FCI list is not a whole number
    //    of (PID, BLP) words.
    let mut ragged = Nack {
        sender_ssrc: 1,
        media_ssrc: 2,
        lost: vec![5],
    }
    .serialize()
    .to_vec();
    ragged.extend_from_slice(&[0xAA, 0xBB]);
    assert!(matches!(
        Nack::parse(Bytes::from(ragged)),
        Err(ParseError::Malformed { .. })
    ));

    // -- Payload metadata: zero fragment count and index ≥ count are
    //    structurally impossible and must be rejected.
    use rpav_rtp::packetize::{decode_meta, META_LEN};
    let mut zero_count = vec![0u8; META_LEN];
    assert!(matches!(
        decode_meta(Bytes::from(zero_count.clone())),
        Err(ParseError::Malformed {
            reason: "zero fragment count"
        })
    ));
    zero_count[META_LEN - 4..].copy_from_slice(&[0, 3, 0, 3]); // index 3, count 3
    assert!(matches!(
        decode_meta(Bytes::from(zero_count)),
        Err(ParseError::Malformed {
            reason: "fragment index beyond count"
        })
    ));

    // -- Trailing padding beyond a valid PLI must not break parsing (RTCP
    //    compound-packet slack).
    let mut padded = Pli {
        sender_ssrc: 3,
        media_ssrc: 4,
    }
    .serialize()
    .to_vec();
    padded.extend_from_slice(&[0, 0, 0, 0]);
    assert_eq!(
        Pli::parse(Bytes::from(padded)),
        Ok(Pli {
            sender_ssrc: 3,
            media_ssrc: 4,
        })
    );
}
