//! End-to-end validation of the paper's headline claims (DESIGN.md §4):
//! each test runs the real pipeline and checks a *shape* statement from the
//! evaluation — who wins, by roughly what factor, where the crossover is.
//!
//! Runs use shortened hovers to keep CI time reasonable; the shapes are
//! robust to that (the bench binaries run the full-length campaigns).

use rpav_core::prelude::*;
use rpav_core::stats;

fn quick_cfg(
    env: Environment,
    op: Operator,
    mobility: Mobility,
    cc: CcMode,
    seed: u64,
) -> ExperimentConfig {
    ExperimentConfig::builder()
        .environment(env)
        .operator(op)
        .mobility(mobility)
        .cc(cc)
        .seed(seed)
        .hold_secs(1)
        .ground_sweeps(2)
        .build()
}

fn quick_run(
    env: Environment,
    op: Operator,
    mobility: Mobility,
    cc: CcMode,
    seed: u64,
) -> RunMetrics {
    Simulation::new(quick_cfg(env, op, mobility, cc, seed)).run()
}

/// §4.1 / Fig. 4(a): the aerial handover frequency is far above ground.
/// This claim needs the paper-default mobility (the ground dataset's long
/// stationary periods are part of the comparison), so it uses full runs.
#[test]
fn air_handover_frequency_dwarfs_ground() {
    let mut air = 0.0;
    let mut grd = 0.0;
    for seed in 0..2 {
        let cc = CcMode::paper_static(Environment::Urban);
        let a = ExperimentConfig::builder()
            .environment(Environment::Urban)
            .cc(cc)
            .seed(seed)
            .build();
        let g = ExperimentConfig::builder()
            .environment(Environment::Urban)
            .mobility(Mobility::Ground)
            .cc(cc)
            .seed(seed)
            .build();
        air += Simulation::new(a).run().ho_frequency();
        grd += Simulation::new(g).run().ho_frequency();
    }
    assert!(
        air > 3.0 * grd,
        "aerial HO frequency {air:.3}/s not well above ground {grd:.3}/s"
    );
}

/// §4.1 / Fig. 4(b): the bulk of HETs beat the 3GPP 49.5 ms threshold, and
/// the aerial tail is heavy.
#[test]
fn het_bulk_fast_with_aerial_outliers() {
    let mut hets = Vec::new();
    for seed in 0..4 {
        let m = quick_run(
            Environment::Urban,
            Operator::P1,
            Mobility::Air,
            CcMode::paper_static(Environment::Urban),
            seed,
        );
        hets.extend(m.het_ms());
    }
    assert!(
        hets.len() >= 20,
        "too few handovers to judge: {}",
        hets.len()
    );
    let ok = stats::fraction_at_or_below(&hets, 49.5);
    assert!(ok > 0.7, "only {ok:.2} of HETs below 49.5 ms");
    let max = hets.iter().cloned().fold(0.0f64, f64::max);
    assert!(max > 100.0, "no heavy-tail HET outliers (max {max:.0} ms)");
    assert!(
        max <= 4_000.0,
        "HET beyond the paper's 4 s clamp: {max:.0} ms"
    );
}

/// §4.1 / Fig. 5: one-way latency is double-digit milliseconds most of the
/// time, with a worse tail in the air than on the ground.
#[test]
fn one_way_latency_shape() {
    let cc = CcMode::paper_static(Environment::Urban);
    let air = quick_run(Environment::Urban, Operator::P1, Mobility::Air, cc, 15);
    let grd = quick_run(Environment::Urban, Operator::P1, Mobility::Ground, cc, 15);
    let f_air = stats::fraction_at_or_below(&air.owd_ms(), 100.0);
    let f_grd = stats::fraction_at_or_below(&grd.owd_ms(), 100.0);
    assert!(f_grd > 0.97, "ground: only {f_grd:.3} below 100 ms");
    assert!(f_air > 0.85, "air: only {f_air:.3} below 100 ms");
    assert!(f_grd >= f_air, "air tail should be heavier than ground");
}

/// §4.1: PER stays tiny and is unaffected by flying — deep buffers turn
/// congestion into delay.
#[test]
fn per_is_tiny_in_both_domains() {
    let cc = CcMode::Gcc;
    let air = quick_run(Environment::Rural, Operator::P1, Mobility::Air, cc, 5);
    let grd = quick_run(Environment::Rural, Operator::P1, Mobility::Ground, cc, 5);
    assert!(air.per() < 0.01, "aerial PER {:.4}", air.per());
    assert!(grd.per() < 0.01, "ground PER {:.4}", grd.per());
}

/// Fig. 6: static wins the well-provisioned urban link; the adaptive CCs
/// land within the capacity neighbourhood in rural.
#[test]
fn goodput_ordering_matches_figure_6() {
    let urban_static = quick_run(
        Environment::Urban,
        Operator::P1,
        Mobility::Air,
        CcMode::paper_static(Environment::Urban),
        21,
    );
    let urban_gcc = quick_run(
        Environment::Urban,
        Operator::P1,
        Mobility::Air,
        CcMode::Gcc,
        21,
    );
    assert!(
        urban_static.goodput_bps() > 20e6,
        "urban static goodput {:.1} Mbps",
        urban_static.goodput_bps() / 1e6
    );
    assert!(
        urban_static.goodput_bps() > urban_gcc.goodput_bps(),
        "static must out-rate GCC on the abundant urban link"
    );
    let rural_gcc = quick_run(
        Environment::Rural,
        Operator::P1,
        Mobility::Air,
        CcMode::Gcc,
        21,
    );
    let g = rural_gcc.goodput_bps() / 1e6;
    assert!((4.0..14.0).contains(&g), "rural GCC goodput {g:.1} Mbps");
}

/// §4.2.2: playback latency within the 300 ms budget for the vast majority
/// of the time under GCC, in both environments.
#[test]
fn gcc_playback_latency_mostly_within_budget() {
    for (env, seed) in [(Environment::Urban, 31), (Environment::Rural, 32)] {
        let m = quick_run(env, Operator::P1, Mobility::Air, CcMode::Gcc, seed);
        let frac = m.playback_within(300.0);
        assert!(
            frac > 0.75,
            "{}: GCC within 300 ms only {frac:.2}",
            env.name()
        );
    }
}

/// §4.2.3: high-quality video the overwhelming majority of the time, SSIM
/// interruptions present but bounded.
#[test]
fn ssim_mostly_high_with_bounded_interruptions() {
    let m = quick_run(
        Environment::Urban,
        Operator::P1,
        Mobility::Air,
        CcMode::Gcc,
        41,
    );
    let ssim = m.ssim_samples();
    let low = stats::fraction_below_strict(&ssim, 0.5);
    assert!(low < 0.35, "SSIM < 0.5 for {low:.2} of frames");
    let high = 1.0 - stats::fraction_at_or_below(&ssim, 0.8);
    assert!(high > 0.5, "SSIM > 0.8 for only {high:.2} of frames");
}

/// Fig. 9: latency spikes precede handovers — the before-HO max/min ratio
/// exceeds the after-HO ratio.
#[test]
fn latency_spikes_precede_handovers() {
    let mut before = Vec::new();
    let mut after = Vec::new();
    for seed in 0..4 {
        let m = quick_run(
            Environment::Urban,
            Operator::P1,
            Mobility::Air,
            CcMode::paper_static(Environment::Urban),
            100 + seed,
        );
        let (b, a) = m.ho_latency_ratios();
        before.extend(b);
        after.extend(a);
    }
    assert!(before.len() >= 10, "too few HO windows: {}", before.len());
    let mb = stats::mean(&before);
    let ma = stats::mean(&after);
    // The paper reports means of ≈8× (before) and ≈5× (after); the robust
    // claim is that handovers sit inside multi-x latency disturbances on
    // both sides. (Our model puts the two means within ~1–2x of each
    // other; see EXPERIMENTS.md for the discussion.)
    assert!(
        mb > 2.0,
        "before-HO latency ratio {mb:.1} shows no spike at all"
    );
    assert!(
        ma > 2.0,
        "after-HO latency ratio {ma:.1} shows no disturbance at all"
    );
    assert!(
        mb < 40.0 && ma < 40.0,
        "ratios implausible: {mb:.1}/{ma:.1}"
    );
}

/// Fig. 10 / App. A.3: P2's denser rural grid gives more capacity and more
/// handovers.
#[test]
fn rural_p2_beats_p1_on_capacity_not_on_mobility() {
    let mut p1_good = 0.0;
    let mut p2_good = 0.0;
    let mut p1_ho = 0.0;
    let mut p2_ho = 0.0;
    for seed in 0..3 {
        // An overdriving constant load keeps the runs capacity-limited, so
        // goodput reflects the channel rather than a CC's ramp dynamics.
        let cc = CcMode::Static { bitrate_bps: 25e6 };
        let a = quick_run(
            Environment::Rural,
            Operator::P1,
            Mobility::Air,
            cc,
            60 + seed,
        );
        let b = quick_run(
            Environment::Rural,
            Operator::P2,
            Mobility::Air,
            cc,
            60 + seed,
        );
        p1_good += a.goodput_bps();
        p2_good += b.goodput_bps();
        p1_ho += a.ho_frequency();
        p2_ho += b.ho_frequency();
    }
    assert!(
        p2_good > p1_good * 1.15,
        "P2 goodput {:.1} Mbps not clearly above P1 {:.1} Mbps",
        p2_good / 3e6,
        p1_good / 3e6
    );
    assert!(
        p2_ho > p1_ho,
        "P2 handovers {p2_ho:.3}/s not above P1 {p1_ho:.3}/s"
    );
}

/// Whole-run determinism across the complete stack.
#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        quick_run(
            Environment::Rural,
            Operator::P2,
            Mobility::Air,
            CcMode::paper_scream(),
            77,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.media_sent, b.media_sent);
    assert_eq!(a.media_received, b.media_received);
    assert_eq!(a.media_received_bytes, b.media_received_bytes);
    assert_eq!(a.handovers.len(), b.handovers.len());
    assert_eq!(a.frames.len(), b.frames.len());
    assert_eq!(a.stalls, b.stalls);
    // Sample-level equality on the latency series.
    assert_eq!(a.owd.len(), b.owd.len());
    for (x, y) in a.owd.iter().zip(b.owd.iter()).step_by(1_000) {
        assert_eq!(x, y);
    }
}
