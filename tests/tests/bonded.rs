//! Bonded reassembly acceptance: striping a frame across two operators
//! must survive pathological cross-leg skew, races between FEC recovery
//! and retransmission, and a leg dying mid-FEC-group — without
//! double-counting playback or losing determinism.
//!
//! Two layers, mirroring `failover.rs`:
//!
//! * component level — the FEC/NACK/jitter interaction when a parity
//!   recovery and an RTX answer race for the same hole (the trailing
//!   copy must read `Stale`, never `Recovered` twice), and partial
//!   parity emission when the group is cut short;
//! * end-to-end — seed-matched bonded runs with one leg 250 ms slower
//!   than the other, and with a leg blacking out mid-flight while the
//!   adaptive FEC layer is armed.

use rpav_core::multipath::{run_multipath_scripted, MultipathScheme};
use rpav_core::prelude::*;
use rpav_netem::FaultScript;
use rpav_rtp::nack::Arrival;
use rpav_rtp::{FecGroup, JitterBuffer, JitterConfig, NackConfig, NackGenerator, RtpPacket};
use rpav_sim::{SimDuration, SimTime};

fn ms(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(n)
}

fn pkt(seq: u16, timestamp: u32) -> RtpPacket {
    RtpPacket {
        marker: false,
        payload_type: 96,
        sequence: seq,
        timestamp,
        ssrc: 0x5EED,
        transport_seq: None,
        payload: bytes::Bytes::from(vec![seq as u8; 1_200]),
        wire: None,
    }
}

fn bonded_cfg(seed: u64) -> ExperimentConfigBuilder {
    ExperimentConfig::builder()
        .cc(CcMode::paper_static(Environment::Rural))
        .seed(seed)
        .hold_secs(2)
}

// ---------------------------------------------------------------------
// Component level
// ---------------------------------------------------------------------

#[test]
fn rtx_copy_after_fec_recovery_reads_stale() {
    // Sender side: a 4-packet group, one member lost on the wire.
    let mut group = FecGroup::new();
    let members: Vec<RtpPacket> = (0u16..4).map(|s| pkt(s, u32::from(s) * 3_000)).collect();
    for p in &members {
        assert!(group.push(p));
    }
    let parity = group.build().expect("non-empty group");

    // Receiver side: 0, 2, 3 arrive; 1 is the hole. The gap is detected
    // and NACKed before the parity lands.
    let mut gen = NackGenerator::new(NackConfig::default());
    gen.set_rtt_hint(SimDuration::from_millis(40));
    assert_eq!(gen.on_packet(ms(0), 0), Arrival::InOrder);
    assert_eq!(gen.on_packet(ms(3), 2), Arrival::InOrder);
    assert_eq!(gen.on_packet(ms(4), 3), Arrival::InOrder);
    let nack = gen.poll(ms(10)).expect("hole must be NACKed");
    assert_eq!(nack.lost, vec![1]);

    // The parity beats the RTX: exactly one member missing, so recovery
    // yields the original bytes, and the recovered arrival cancels the
    // chase as `Recovered` (it was requested).
    let survivors: Vec<&RtpPacket> = members.iter().filter(|p| p.sequence != 1).collect();
    let rec = parity.recover(&survivors).expect("one hole is recoverable");
    assert_eq!(rec.sequence, 1);
    assert_eq!(rec.payload, members[1].payload);
    assert_eq!(rec.timestamp, members[1].timestamp);
    assert_eq!(gen.on_packet(ms(30), rec.sequence), Arrival::Recovered);
    assert_eq!(gen.stats().recovered, 1);

    // The RTX answer trails in: the hole is gone, the copy must read
    // Stale and must NOT bump the recovered counter again.
    assert_eq!(gen.on_packet(ms(60), 1), Arrival::Stale);
    assert_eq!(gen.stats().recovered, 1);

    // The jitter buffer likewise keeps the FEC copy and discards the RTX.
    let mut jb = JitterBuffer::new(JitterConfig::default());
    for p in &survivors {
        jb.push(ms(5), (*p).clone());
    }
    jb.push(ms(30), rec);
    let before = jb.stats().pushed;
    jb.push(ms(60), pkt(1, 3_000));
    assert_eq!(jb.stats().duplicates, 1);
    assert_eq!(jb.stats().pushed, before);
}

#[test]
fn fec_hold_lets_parity_cancel_the_nack_entirely() {
    // With the bonded FEC hold configured, a hole repaired by parity
    // inside the hold never costs a NACK at all — the retransmission
    // path only chases holes FEC missed.
    let mut gen = NackGenerator::new(NackConfig {
        initial_hold: SimDuration::from_millis(40),
        ..Default::default()
    });
    gen.set_rtt_hint(SimDuration::from_millis(40));
    gen.on_packet(ms(0), 0);
    gen.on_packet(ms(3), 2); // hole at 1, held until t=43 ms
    assert!(gen.poll(ms(10)).is_none(), "hold must suppress the NACK");
    assert_eq!(gen.on_packet(ms(20), 1), Arrival::Reordered);
    assert!(gen.poll(ms(50)).is_none());
    assert_eq!(gen.stats().nacks_sent, 0);
}

#[test]
fn partial_group_parity_recovers_after_group_cut_short() {
    // A leg dies mid-group: the sender flushes the partial group (2 of a
    // planned 4 members). The short parity must still cover — and
    // recover — its actual members.
    let mut group = FecGroup::new();
    let members: Vec<RtpPacket> = (10u16..12).map(|s| pkt(s, u32::from(s) * 3_000)).collect();
    for p in &members {
        group.push(p);
    }
    let parity = group.build().expect("partial group still builds");
    assert!(parity.covers(10) && parity.covers(11) && !parity.covers(12));
    let survivors = vec![&members[0]];
    let rec = parity.recover(&survivors).expect("one of two recoverable");
    assert_eq!(rec.sequence, 11);
    assert_eq!(rec.payload, members[1].payload);
    // The accumulator reset: the next group starts clean.
    assert!(group.is_empty());
}

// ---------------------------------------------------------------------
// End-to-end
// ---------------------------------------------------------------------

/// One leg 250 ms slower than the other for the whole flight — cross-leg
/// skew far past the jitter target, the pathological case for striped
/// delivery.
fn skew_250ms() -> FaultScript {
    FaultScript::new().delay_spike(
        SimTime::ZERO,
        SimDuration::from_secs(120),
        SimDuration::from_millis(250),
    )
}

#[test]
fn bonded_reassembly_survives_250ms_slower_leg() {
    let cfg = bonded_cfg(0xB0DE).build();
    let m = run_multipath_scripted(&cfg, MultipathScheme::Bonded, None, Some(skew_250ms()));

    // Both legs carried traffic despite the skew...
    let share0 = m.leg_tx_share(0);
    assert!(
        (0.05..=0.95).contains(&share0),
        "scheduler abandoned a leg (leg0 share {share0:.2})"
    );
    // ...and the slow leg's arrivals landed behind the fast leg's head
    // of line: the reassembly window absorbed real cross-leg reordering.
    assert!(
        m.reorder_buffered > 0,
        "250 ms skew produced no reordered arrivals"
    );
    // Playback stayed intact: frames reached the player and displayed.
    let displayed = m.frames.iter().filter(|f| f.displayed).count();
    assert!(
        displayed > 0,
        "no frame displayed under skew ({} received)",
        m.media_received
    );
    assert!(m.media_received > 0);

    // Byte-identical replay: the reorder machinery holds determinism.
    let replay = run_multipath_scripted(&cfg, MultipathScheme::Bonded, None, Some(skew_250ms()));
    assert_eq!(replay.to_bytes(), m.to_bytes(), "skewed run not replayable");
}

#[test]
fn fec_survives_leg_death_mid_group() {
    // The secondary operator dies mid-flight while the adaptive FEC
    // layer is armed: groups in flight at the death span a leg that will
    // never deliver again. The sender must keep emitting parity on the
    // survivor, nothing may panic, and the run must stay deterministic.
    let blackout = || FaultScript::new().blackout(ms(8_000), SimDuration::from_secs(60));
    let cfg = bonded_cfg(0xFEC).fec_cap(0.25).repair(true).build();
    let m = run_multipath_scripted(&cfg, MultipathScheme::Bonded, None, Some(blackout()));

    assert!(m.fec_tx > 0, "parity never emitted before/after leg death");
    // After the death the scheduler concentrated on the surviving leg.
    let share0 = m.leg_tx_share(0);
    assert!(
        share0 > 0.5,
        "surviving leg carried only {share0:.2} of media"
    );
    let displayed = m.frames.iter().filter(|f| f.displayed).count();
    assert!(displayed > 0, "playback died with the leg");

    let replay = run_multipath_scripted(&cfg, MultipathScheme::Bonded, None, Some(blackout()));
    assert_eq!(
        replay.to_bytes(),
        m.to_bytes(),
        "leg-death run not replayable"
    );
}
