//! Wire-parser fuzz suite: every parser in `rpav-rtp` is a total
//! function — any byte string maps to `Ok` or a typed `ParseError`,
//! never a panic.
//!
//! Each parser gets ≥10 000 adversarial inputs from three generators:
//!
//! * random byte strings of random length (including empty);
//! * truncations of a freshly serialised valid packet at every prefix
//!   length (cycled until the case budget is spent);
//! * single-bit flips of a valid packet at random bit positions.
//!
//! All randomness comes from the deterministic `SimRng`, so a failure
//! reproduces exactly. The vendored proptest shim caps its own case
//! count far below 10 000, so these are plain loops, not proptest
//! strategies.

use bytes::{BufMut, Bytes, BytesMut};
use rpav_rtp::nack::Nack;
use rpav_rtp::packet::RtpPacket;
use rpav_rtp::packetize::{decode_meta, FrameMeta, META_LEN};
use rpav_rtp::pli::Pli;
use rpav_rtp::rfc8888::{Rfc8888Builder, Rfc8888Packet};
use rpav_rtp::twcc::{TwccFeedback, TwccRecorder};
use rpav_sim::{SimRng, SimTime};

/// Adversarial cases per parser (the acceptance floor is 10 000).
const CASES: usize = 12_000;

/// Hammer one parser with the three generators. `valid` must return a
/// wire-format byte string the parser accepts; `parse` returns whether
/// the input parsed (the return value only feeds the sanity tallies).
fn hammer(
    name: &str,
    seed: u64,
    mut valid: impl FnMut(&mut SimRng) -> Bytes,
    parse: impl Fn(Bytes) -> bool,
) {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut ok = 0u64;
    let mut err = 0u64;
    let mut tally = |parsed: bool| if parsed { ok += 1 } else { err += 1 };

    // 1) Pure noise: random bytes, random length.
    for _ in 0..CASES / 3 {
        let len = rng.uniform_u64(0, 96) as usize;
        let mut b = BytesMut::with_capacity(len);
        for _ in 0..len {
            b.put_u8(rng.uniform_u64(0, 256) as u8);
        }
        tally(parse(b.freeze()));
    }

    // 2) Every truncation of a valid packet, cycling fresh packets until
    //    the budget is spent. The full-length prefix must parse.
    let mut spent = 0;
    while spent < CASES / 3 {
        let wire = valid(&mut rng);
        for len in 0..=wire.len() {
            tally(parse(Bytes::from(&wire[..len])));
            spent += 1;
        }
        assert!(
            parse(wire),
            "{name}: freshly serialised valid packet failed to parse"
        );
    }

    // 3) Single-bit flips of a valid packet.
    for _ in 0..CASES / 3 {
        let wire = valid(&mut rng);
        let mut bytes = wire.to_vec();
        let bit = rng.uniform_u64(0, bytes.len() as u64 * 8);
        bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
        tally(parse(Bytes::from(bytes)));
    }

    // Sanity: the suite exercised both outcomes — a fuzz run where
    // nothing ever parses (or nothing ever fails) is testing the
    // generators, not the parser.
    assert!(ok > 0, "{name}: no generated input ever parsed");
    assert!(err > 0, "{name}: no generated input was ever rejected");
}

fn random_payload(rng: &mut SimRng, max: u64) -> Bytes {
    let len = rng.uniform_u64(0, max) as usize;
    let mut b = BytesMut::with_capacity(len);
    for _ in 0..len {
        b.put_u8(rng.uniform_u64(0, 256) as u8);
    }
    b.freeze()
}

fn valid_rtp(rng: &mut SimRng) -> RtpPacket {
    RtpPacket {
        marker: rng.chance(0.5),
        payload_type: rng.uniform_u64(0, 128) as u8,
        sequence: rng.uniform_u64(0, 65_536) as u16,
        timestamp: rng.uniform_u64(0, u32::MAX as u64 + 1) as u32,
        ssrc: rng.uniform_u64(0, u32::MAX as u64 + 1) as u32,
        transport_seq: if rng.chance(0.5) {
            Some(rng.uniform_u64(0, 65_536) as u16)
        } else {
            None
        },
        payload: random_payload(rng, 48),
        wire: None,
    }
}

#[test]
fn rtp_packet_parse_is_total() {
    hammer(
        "RtpPacket",
        0xF0001,
        |rng| valid_rtp(rng).serialize(),
        |b| RtpPacket::parse(b).is_ok(),
    );
}

#[test]
fn rtp_roundtrip_is_lossless() {
    let mut rng = SimRng::seed_from_u64(0xF0002);
    for _ in 0..CASES {
        let pkt = valid_rtp(&mut rng);
        let back = RtpPacket::parse(pkt.serialize()).expect("roundtrip");
        assert_eq!(back, pkt);
    }
}

#[test]
fn twcc_parse_is_total() {
    hammer(
        "TwccFeedback",
        0xF0003,
        |rng| {
            let mut rec = TwccRecorder::new();
            let base = rng.uniform_u64(0, 65_536) as u16;
            let n = rng.uniform_u64(1, 40) as u16;
            // Keep the base inside TWCC's 24-bit × 64 ms reference-time
            // range (~12 days) so the serialised packet is wire-valid.
            let mut at = SimTime::from_micros(rng.uniform_u64(0, 1 << 39));
            for i in 0..n {
                if rng.chance(0.8) {
                    rec.on_packet(base.wrapping_add(i), at);
                }
                at += rpav_sim::SimDuration::from_micros(rng.uniform_u64(0, 5_000));
            }
            rec.on_packet(base.wrapping_add(n), at);
            rec.build_feedback()
                .expect("non-empty recorder")
                .serialize()
        },
        |b| TwccFeedback::parse(b).is_ok(),
    );
}

#[test]
fn rfc8888_parse_is_total() {
    hammer(
        "Rfc8888Packet",
        0xF0004,
        |rng| {
            let mut builder = Rfc8888Builder::new(rng.uniform_u64(1, 64) as usize);
            let base = rng.uniform_u64(0, 65_536) as u16;
            let n = rng.uniform_u64(1, 80) as u16;
            for i in 0..n {
                if rng.chance(0.8) {
                    builder.on_packet(base.wrapping_add(i), SimTime::from_micros(i as u64 * 300));
                }
            }
            builder.on_packet(base.wrapping_add(n), SimTime::from_micros(n as u64 * 300));
            builder
                .build(SimTime::from_micros(n as u64 * 300 + 1_000))
                .expect("non-empty builder")
                .serialize()
        },
        |b| Rfc8888Packet::parse(b).is_ok(),
    );
}

#[test]
fn pli_parse_is_total() {
    hammer(
        "Pli",
        0xF0005,
        |rng| {
            Pli {
                sender_ssrc: rng.uniform_u64(0, u32::MAX as u64 + 1) as u32,
                media_ssrc: rng.uniform_u64(0, u32::MAX as u64 + 1) as u32,
            }
            .serialize()
        },
        |b| Pli::parse(b).is_ok(),
    );
}

#[test]
fn nack_parse_is_total() {
    hammer(
        "Nack",
        0xF0006,
        |rng| {
            let base = rng.uniform_u64(0, 65_536) as u16;
            let n = rng.uniform_u64(1, 20);
            let mut lost: Vec<u16> = Vec::new();
            let mut seq = base;
            for _ in 0..n {
                seq = seq.wrapping_add(rng.uniform_u64(1, 30) as u16);
                lost.push(seq);
            }
            Nack {
                sender_ssrc: rng.uniform_u64(0, u32::MAX as u64 + 1) as u32,
                media_ssrc: rng.uniform_u64(0, u32::MAX as u64 + 1) as u32,
                lost,
            }
            .serialize()
        },
        |b| Nack::parse(b).is_ok(),
    );
}

#[test]
fn decode_meta_is_total() {
    hammer(
        "decode_meta",
        0xF0007,
        |rng| {
            // Hand-rolled valid payload header (the crate's encoder is
            // private): frame_number, encode µs, keyframe, frame_bytes,
            // frag_index < frag_count, then filler.
            let count = rng.uniform_u64(1, 64) as u16;
            let index = rng.uniform_u64(0, count as u64) as u16;
            let mut b = BytesMut::with_capacity(META_LEN + 16);
            b.put_u64(rng.uniform_u64(0, 1 << 48));
            b.put_u64(rng.uniform_u64(0, 1 << 48));
            b.put_u8(rng.chance(0.1) as u8);
            b.put_u32(rng.uniform_u64(0, 1 << 24) as u32);
            b.put_u16(index);
            b.put_u16(count);
            b.resize(META_LEN + rng.uniform_u64(0, 16) as usize, 0xAB);
            b.freeze()
        },
        |b| decode_meta(b).is_ok(),
    );
}

/// The wire decode must invert the hand-rolled encoding above — guards
/// against the fuzz generator drifting out of sync with `META_LEN`.
#[test]
fn decode_meta_roundtrips_fields() {
    let meta = FrameMeta {
        frame_number: 77,
        encode_time: SimTime::from_micros(123_456),
        keyframe: true,
        frame_bytes: 9_000,
    };
    let mut b = BytesMut::new();
    b.put_u64(meta.frame_number);
    b.put_u64(meta.encode_time.as_micros());
    b.put_u8(meta.keyframe as u8);
    b.put_u32(meta.frame_bytes);
    b.put_u16(3);
    b.put_u16(7);
    b.resize(META_LEN + 10, 0xAB);
    let (got, idx, count) = decode_meta(b.freeze()).unwrap();
    assert_eq!(got, meta);
    assert_eq!((idx, count), (3, 7));
}
