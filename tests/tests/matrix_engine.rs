//! End-to-end determinism contract of the parallel campaign engine
//! (DESIGN.md §9): for any job count, a matrix produces bit-identical
//! results in submission order, and a cache-warm re-run replays from the
//! cache without simulating anything.

use rpav_core::prelude::*;

/// 12 cells: 2 environments × 3 paper workloads × 2 runs, short holds.
fn spec() -> MatrixSpec {
    let base = ExperimentConfig::builder()
        .environment(Environment::Urban)
        .cc(CcMode::Gcc)
        .seed(0xD15C)
        .hold_secs(1)
        .build();
    MatrixSpec::new(base)
        .environments([Environment::Urban, Environment::Rural])
        .paper_workloads()
        .runs(2)
}

#[test]
fn parallel_execution_is_bit_identical_to_sequential() {
    let spec = spec();
    assert_eq!(spec.expand().len(), 12);

    let sequential = CampaignEngine::new().with_jobs(1).run(&spec);
    let parallel = CampaignEngine::new().with_jobs(8).run(&spec);
    assert_eq!(sequential.outcomes.len(), 12);
    assert_eq!(parallel.outcomes.len(), 12);

    for (s, p) in sequential.outcomes.iter().zip(&parallel.outcomes) {
        assert_eq!(
            s.cell().label(),
            p.cell().label(),
            "submission order diverged"
        );
        assert_eq!(
            s.metrics().to_bytes(),
            p.metrics().to_bytes(),
            "{}: jobs=8 result is not bit-identical to jobs=1",
            s.cell().label()
        );
    }
    // The streaming aggregates fold in submission order, so they share
    // the bit-identity guarantee.
    assert_eq!(
        sequential.report.aggregates.to_bytes(),
        parallel.report.aggregates.to_bytes(),
        "aggregates diverged across job counts"
    );
}

#[test]
fn warm_cache_replays_without_simulating() {
    let spec = spec();
    let engine = CampaignEngine::new().with_jobs(4);

    let cold = engine.run(&spec);
    assert_eq!(
        engine.simulations(),
        12,
        "cold run must simulate every cell"
    );
    assert!(cold.outcomes.iter().all(|o| !o.cached()));

    let warm = engine.run(&spec);
    assert_eq!(
        engine.simulations(),
        12,
        "warm run re-simulated cached cells"
    );
    assert_eq!(engine.cache_hits(), 12);
    assert!(warm.outcomes.iter().all(|o| o.cached()));

    for (c, w) in cold.outcomes.iter().zip(&warm.outcomes) {
        assert_eq!(c.metrics().to_bytes(), w.metrics().to_bytes());
    }
}
