//! Cache-codec fuzz suite: the disk-cache decode path is a total
//! function — any byte string maps to `Some(RunMetrics)` or `None`
//! (a cache miss), never a panic and never a silent partial decode.
//!
//! Extends the wire-parser pattern from `parser_fuzz.rs` to the two
//! cache entry points:
//!
//! * [`RunMetrics::from_bytes`] — the raw canonical encoding;
//! * [`RunMetrics::from_cache_bytes`] — the CRC-framed envelope the
//!   engine writes to `RPAV_CACHE` (`"RPVE" ‖ len ‖ crc32 ‖ payload`).
//!
//! The generators are the same three as PR 2's suite (pure noise,
//! truncation at every byte boundary, single-bit flips) plus the
//! corruptions a real cache directory produces: trailing garbage from
//! a torn append, and a stale `FORMAT_VERSION` resealed with a valid
//! CRC. All randomness comes from the deterministic `SimRng`, so a
//! failure reproduces exactly.

use rpav_core::codec::{seal, FORMAT_VERSION};
use rpav_core::prelude::*;
use rpav_sim::{SimDuration, SimRng, SimTime};

/// Adversarial cases per entry point (the acceptance floor is 10 000).
const CASES: usize = 12_000;

/// A randomised but valid metrics record: scalar counters plus a few
/// variable-length sequences so truncation boundaries land inside
/// `seq` headers, elements, and the f64 payloads alike. NaN OWD
/// samples are included deliberately — the codec must round-trip their
/// exact bit pattern.
fn valid_metrics(rng: &mut SimRng) -> RunMetrics {
    let mut m = RunMetrics {
        duration: SimDuration::from_millis(rng.uniform_u64(1, 120_000)),
        media_sent: rng.uniform_u64(0, 1 << 24),
        media_received: rng.uniform_u64(0, 1 << 24),
        media_received_bytes: rng.uniform_u64(0, 1 << 32),
        stalls: rng.uniform_u64(0, 64),
        stalled_time: SimDuration::from_micros(rng.uniform_u64(0, 5_000_000)),
        nacks_sent: rng.uniform_u64(0, 1 << 12),
        rtx_recovered: rng.uniform_u64(0, 1 << 12),
        fec_tx: rng.uniform_u64(0, 1 << 12),
        fec_recovered: rng.uniform_u64(0, 1 << 10),
        ..RunMetrics::default()
    };
    for i in 0..rng.uniform_u64(0, 12) {
        let ms = if rng.chance(0.1) {
            f64::NAN
        } else {
            rng.uniform_u64(0, 500_000) as f64 / 1_000.0
        };
        m.owd.push((SimTime::from_micros(i * 1_000), ms));
    }
    m
}

fn random_bytes(rng: &mut SimRng, max: u64) -> Vec<u8> {
    let len = rng.uniform_u64(0, max) as usize;
    (0..len).map(|_| rng.uniform_u64(0, 256) as u8).collect()
}

/// Hammer one decoder with noise, every-boundary truncations, and
/// single-bit flips. `strict_flips` asserts every flip is *rejected*
/// (the sealed envelope's CRC guarantee); without it a flip merely
/// must not panic (the raw encoding carries no checksum).
fn hammer(
    name: &str,
    seed: u64,
    encode: impl Fn(&RunMetrics) -> Vec<u8>,
    parse: impl Fn(&[u8]) -> bool,
    strict_flips: bool,
) {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut ok = 0u64;
    let mut err = 0u64;
    let mut tally = |parsed: bool| if parsed { ok += 1 } else { err += 1 };

    // 1) Pure noise, half of it wearing a plausible 4-byte magic so the
    //    decoders get past the cheapest rejection.
    for _ in 0..CASES / 3 {
        let mut b = random_bytes(&mut rng, 96);
        if rng.chance(0.5) && b.len() >= 4 {
            let magic = if rng.chance(0.5) { b"RPAV" } else { b"RPVE" };
            b[..4].copy_from_slice(magic);
        }
        tally(parse(&b));
    }

    // 2) Truncation at every byte boundary of a valid record, cycling
    //    fresh records until the budget is spent. Every proper prefix
    //    is a clean miss; the full encoding parses.
    let mut spent = 0;
    while spent < CASES / 3 {
        let wire = encode(&valid_metrics(&mut rng));
        for cut in 0..wire.len() {
            assert!(!parse(&wire[..cut]), "{name}: truncation at {cut} parsed");
            spent += 1;
        }
        assert!(parse(&wire), "{name}: valid record failed to parse");
        tally(true);
        // Trailing garbage — a torn cache append — is a miss, not a
        // silent partial decode.
        let mut padded = wire.clone();
        padded.push(rng.uniform_u64(0, 256) as u8);
        assert!(!parse(&padded), "{name}: trailing garbage parsed");
    }

    // 3) Single-bit flips at random positions.
    for _ in 0..CASES / 3 {
        let mut bytes = encode(&valid_metrics(&mut rng));
        let bit = rng.uniform_u64(0, bytes.len() as u64 * 8);
        bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
        let parsed = parse(&bytes);
        if strict_flips {
            assert!(!parsed, "{name}: bit flip at {bit} slipped past the CRC");
        }
        tally(parsed);
    }

    assert!(ok > 0, "{name}: no generated input ever parsed");
    assert!(err > 0, "{name}: no generated input was ever rejected");
}

#[test]
fn from_bytes_is_total() {
    hammer(
        "RunMetrics::from_bytes",
        0xCAFE_0001,
        |m| m.to_bytes(),
        |b| RunMetrics::from_bytes(b).is_some(),
        false,
    );
}

#[test]
fn from_cache_bytes_is_total_and_crc_rejects_every_flip() {
    hammer(
        "RunMetrics::from_cache_bytes",
        0xCAFE_0002,
        |m| m.to_cache_bytes(),
        |b| RunMetrics::from_cache_bytes(b).is_some(),
        // CRC-32 detects any single-bit error, and flips in the
        // envelope header break the magic / length / stored CRC — so
        // *every* flip must read as a miss, not just most.
        true,
    );
}

/// Exhaustive single-bit sweep over one sealed record: all
/// `len × 8` flips are rejected, and restoring the bit re-parses.
#[test]
fn sealed_record_rejects_all_bit_flips_exhaustively() {
    let mut rng = SimRng::seed_from_u64(0xCAFE_0003);
    let mut wire = valid_metrics(&mut rng).to_cache_bytes();
    for bit in 0..wire.len() * 8 {
        wire[bit / 8] ^= 1 << (bit % 8);
        assert!(
            RunMetrics::from_cache_bytes(&wire).is_none(),
            "flip at bit {bit} survived"
        );
        wire[bit / 8] ^= 1 << (bit % 8);
    }
    assert!(RunMetrics::from_cache_bytes(&wire).is_some());
}

/// A `FORMAT_VERSION` bump is a clean miss through both entry points —
/// including when the stale payload is *resealed with a valid CRC*,
/// the shape an old cache directory takes after a release upgrade.
#[test]
fn format_version_bump_is_a_clean_miss() {
    let mut rng = SimRng::seed_from_u64(0xCAFE_0004);
    let good = valid_metrics(&mut rng).to_bytes();
    assert!(RunMetrics::from_bytes(&good).is_some());
    // The version is the little-endian u32 after the 4-byte magic.
    for stale in [FORMAT_VERSION + 1, FORMAT_VERSION - 1, 0, u32::MAX] {
        let mut patched = good.clone();
        patched[4..8].copy_from_slice(&stale.to_le_bytes());
        assert!(
            RunMetrics::from_bytes(&patched).is_none(),
            "version {stale} decoded"
        );
        // Resealing gives the stale payload a *correct* envelope CRC;
        // the inner version check must still reject it.
        assert!(
            RunMetrics::from_cache_bytes(&seal(&patched)).is_none(),
            "resealed version {stale} decoded"
        );
    }
}

/// Round-trip through the sealed envelope is byte-exact — the property
/// the engine's bit-identity invariants (jobs=1 ≡ jobs=N, kill/resume)
/// stand on.
#[test]
fn cache_roundtrip_is_byte_exact() {
    let mut rng = SimRng::seed_from_u64(0xCAFE_0005);
    for _ in 0..200 {
        let m = valid_metrics(&mut rng);
        let back = RunMetrics::from_cache_bytes(&m.to_cache_bytes()).expect("roundtrip");
        assert_eq!(back.to_bytes(), m.to_bytes());
    }
}
