//! End-to-end §4.2.1 ablation: SCReAM's bounded RFC 8888 ack span causes
//! false losses on the real pipeline (handover stalls make arrivals
//! bursty), and a wider span removes them.

use rpav_core::prelude::*;

fn run_span(span: usize, seed: u64) -> RunMetrics {
    let cfg = ExperimentConfig::builder()
        .environment(Environment::Urban)
        .cc(CcMode::Scream { ack_span: span })
        .seed(seed)
        .hold_secs(1)
        .build();
    Simulation::new(cfg).run()
}

#[test]
fn narrow_span_produces_false_losses_wide_span_does_not() {
    let mut narrow_skips = 0u64;
    let mut wide_skips = 0u64;
    for seed in 0..3 {
        narrow_skips += run_span(64, 900 + seed).span_skipped;
        wide_skips += run_span(1024, 900 + seed).span_skipped;
    }
    assert!(
        narrow_skips > 0,
        "the stock 64-packet span should leave packets unacknowledged \
         after handover bursts"
    );
    assert!(
        wide_skips < narrow_skips / 4,
        "a 1024-packet span should (nearly) eliminate false losses: \
         narrow {narrow_skips} vs wide {wide_skips}"
    );
}

#[test]
fn paper_mitigation_256_reduces_false_losses() {
    let mut stock = 0u64;
    let mut mitigated = 0u64;
    for seed in 0..3 {
        stock += run_span(64, 300 + seed).span_skipped;
        mitigated += run_span(256, 300 + seed).span_skipped;
    }
    assert!(
        mitigated < stock,
        "raising the span 64 → 256 must lower false losses \
         (paper §4.2.1): {stock} vs {mitigated}"
    );
}
