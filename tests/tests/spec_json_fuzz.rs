//! Spec/JSON codec fuzz suite: the daemon's wire format is a total
//! function both ways — any byte string maps to `Ok(CampaignSpec)` or a
//! typed [`SpecError`], never a panic — and canonical bytes are a
//! *stable identity*: `from_json ∘ to_json` is the identity on specs,
//! `to_json ∘ from_json` is the identity on canonical documents, and
//! whitespace/key-order noise re-canonicalizes to the same bytes (so
//! the same campaign always lands on the same cache entries, journal,
//! and daemon id).
//!
//! Same discipline as `cache_fuzz.rs`: generators draw from the
//! deterministic `SimRng`, truncation is exercised at *every* byte
//! boundary, and bit flips must map to typed errors or a clean parse.

use rpav_core::json::{Json, JsonError};
use rpav_core::prelude::*;
use rpav_netem::{FaultScript, PacketKind};
use rpav_sim::{SimDuration, SimRng, SimTime};
use std::time::Duration;

fn random_kind(rng: &mut SimRng) -> Option<PacketKind> {
    match rng.uniform_u64(0, 4) {
        0 => Some(PacketKind::Media),
        1 => Some(PacketKind::Feedback),
        2 => Some(PacketKind::Probe),
        _ => None,
    }
}

fn random_cc(rng: &mut SimRng) -> CcMode {
    match rng.uniform_u64(0, 3) {
        0 => CcMode::Static {
            bitrate_bps: rng.uniform_u64(1, 50) as f64 * 1e6,
        },
        1 => CcMode::Gcc,
        _ => CcMode::Scream {
            ack_span: rng.uniform_u64(1, 512) as usize,
        },
    }
}

/// A script touching every clause kind the wire format knows, with
/// randomised windows and parameters.
fn random_script(rng: &mut SimRng) -> FaultScript {
    let mut script = FaultScript::new();
    for _ in 0..rng.uniform_u64(1, 4) {
        let at = SimTime::from_micros(rng.uniform_u64(0, 60_000_000));
        let dur = SimDuration::from_micros(rng.uniform_u64(1, 30_000_000));
        let prob = rng.uniform_u64(1, 100) as f64 / 100.0;
        script = match rng.uniform_u64(0, 9) {
            0 => script.blackout(at, dur),
            1 => script.feedback_blackout(at, dur),
            2 => script.loss_window(at, dur, prob, random_kind(rng)),
            3 => script.burst_loss_window(
                at,
                dur,
                prob,
                rng.uniform_u64(1, 100) as f64 / 100.0,
                rng.uniform_u64(1, 100) as f64 / 100.0,
                random_kind(rng),
            ),
            4 => script.delay_spike(
                at,
                dur,
                SimDuration::from_micros(rng.uniform_u64(1, 500_000)),
            ),
            5 => script.duplicate_window(at, dur, prob, random_kind(rng)),
            6 => script.corrupt_window(at, dur, prob, random_kind(rng)),
            7 => script.reorder_window(at, dur, prob, rng.uniform_u64(1, 32)),
            _ => script.coverage_hole(
                rng.uniform_u64(0, 5_000) as f64,
                rng.uniform_u64(0, 5_000) as f64,
                rng.uniform_u64(10, 800) as f64,
                rng.uniform_u64(0, 120) as f64,
            ),
        };
    }
    script
}

fn random_fault(rng: &mut SimRng, i: u64) -> CellFault {
    let mut fault = match rng.uniform_u64(0, 4) {
        0 => CellFault::none(),
        1 => CellFault::link(format!("link-{i}"), random_script(rng)),
        2 => CellFault::uplink(format!("up-{i}"), random_script(rng)),
        _ => CellFault::downlink(format!("down-{i}"), random_script(rng)),
    };
    if rng.chance(0.3) {
        fault.secondary = Some(random_script(rng));
    }
    for _ in 0..rng.uniform_u64(0, 3) {
        fault.extra.push(if rng.chance(0.5) {
            Some(random_script(rng))
        } else {
            None
        });
    }
    fault
}

/// A random but valid spec exercising every axis and every base-config
/// knob the wire format carries.
fn random_spec(rng: &mut SimRng) -> CampaignSpec {
    let mut base = ExperimentConfig::builder()
        .environment(if rng.chance(0.5) {
            Environment::Urban
        } else {
            Environment::Rural
        })
        .operator(if rng.chance(0.5) {
            Operator::P1
        } else {
            Operator::P2
        })
        .mobility(if rng.chance(0.5) {
            Mobility::Air
        } else {
            Mobility::Ground
        })
        .cc(random_cc(rng))
        .seed(rng.uniform_u64(0, u64::MAX))
        .run_index(rng.uniform_u64(0, 16))
        .hold(SimDuration::from_micros(rng.uniform_u64(1, 10_000_000)))
        .ground_sweeps(rng.uniform_u64(1, 6) as usize)
        .drop_on_latency(rng.chance(0.5))
        .repair(rng.chance(0.5))
        .fec_cap(rng.uniform_u64(0, 50) as f64 / 100.0)
        .n_legs(rng.uniform_u64(1, MAX_LEGS as u64 + 1) as usize)
        .coupled_cc(rng.chance(0.5))
        .watchdog_enabled(rng.chance(0.5));
    if rng.chance(0.4) {
        base = base.hysteresis_db(rng.uniform_u64(0, 100) as f64 / 10.0);
    }
    if rng.chance(0.4) {
        base = base.ttt_ms(rng.uniform_u64(0, 1024));
    }
    if rng.chance(0.4) {
        base = base.jitter_target_ms(rng.uniform_u64(10, 500));
    }
    if rng.chance(0.4) {
        base = base.leg_caps(
            rng.uniform_u64(1, 40) as f64 * 1e6,
            rng.uniform_u64(1, 40) as f64 * 1e6,
        );
    }

    let mut spec = CampaignSpec::new(base.build()).runs(rng.uniform_u64(1, 5));
    if rng.chance(0.5) {
        spec = spec.environments(
            [Environment::Urban, Environment::Rural]
                .into_iter()
                .take(rng.uniform_u64(1, 3) as usize),
        );
    }
    if rng.chance(0.5) {
        spec = spec.operators(
            [Operator::P1, Operator::P2]
                .into_iter()
                .take(rng.uniform_u64(1, 3) as usize),
        );
    }
    if rng.chance(0.3) {
        spec = spec.mobilities([Mobility::Air, Mobility::Ground]);
    }
    match rng.uniform_u64(0, 3) {
        0 => {}
        1 => spec = spec.paper_workloads(),
        _ => {
            let ccs: Vec<CcMode> = (0..rng.uniform_u64(1, 4)).map(|_| random_cc(rng)).collect();
            spec = spec.ccs(ccs);
        }
    }
    if rng.chance(0.4) {
        spec = spec.schemes([
            RunScheme::Pipeline,
            RunScheme::Multipath(match rng.uniform_u64(0, 5) {
                0 => MultipathScheme::SinglePath,
                1 => MultipathScheme::Duplicate,
                2 => MultipathScheme::Failover,
                3 => MultipathScheme::SelectiveDuplicate,
                _ => MultipathScheme::Bonded,
            }),
        ]);
    }
    if rng.chance(0.5) {
        let faults: Vec<CellFault> = (0..rng.uniform_u64(1, 4))
            .map(|i| random_fault(rng, i))
            .collect();
        spec = spec.faults(faults);
    }
    if rng.chance(0.3) {
        spec = spec.repairs([false, true]);
    }
    if rng.chance(0.5) {
        spec = spec.with_options(EngineOptions {
            jobs: if rng.chance(0.5) {
                Some(rng.uniform_u64(1, 16) as usize)
            } else {
                None
            },
            batch: if rng.chance(0.5) {
                Some(rng.uniform_u64(1, 8) as usize)
            } else {
                None
            },
            cache_dir: if rng.chance(0.5) {
                Some(std::path::PathBuf::from(format!(
                    "target/fuzz-cache-{}",
                    rng.uniform_u64(0, 1000)
                )))
            } else {
                None
            },
            max_attempts: rng.uniform_u64(1, 5) as u32,
            stuck_budget: Duration::from_micros(rng.uniform_u64(1, 600_000_000)),
            reference_tick: rng.chance(0.5),
        });
    }
    spec
}

/// Inject random whitespace between JSON tokens (never inside strings).
fn add_whitespace(rng: &mut SimRng, doc: &str) -> String {
    let mut out = String::with_capacity(doc.len() * 2);
    let mut in_string = false;
    let mut escaped = false;
    for c in doc.chars() {
        out.push(c);
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '}' | '[' | ']' | ':' | ',' => {
                for _ in 0..rng.uniform_u64(0, 3) {
                    out.push(match rng.uniform_u64(0, 4) {
                        0 => ' ',
                        1 => '\t',
                        2 => '\n',
                        _ => '\r',
                    });
                }
            }
            _ => {}
        }
    }
    out
}

#[test]
fn round_trip_is_lossless_and_canonical_bytes_are_the_identity() {
    let mut rng = SimRng::seed_from_u64(0x5EC_0001);
    for case in 0..400 {
        let spec = random_spec(&mut rng);
        let doc = spec.to_json();
        assert!(doc.is_ascii(), "canonical documents are ASCII");

        let parsed = CampaignSpec::from_json(&doc)
            .unwrap_or_else(|e| panic!("case {case}: own document rejected: {e}\n{doc}"));
        assert_eq!(parsed, spec, "case {case}: round-trip lost information");
        assert_eq!(
            parsed.to_json(),
            doc,
            "case {case}: canonical bytes drifted"
        );
        assert_eq!(parsed.identity(), spec.identity());

        // Non-canonical presentation of the same document must
        // re-canonicalize to *identical* bytes — the cache/journal/id
        // identity rule.
        let noisy = add_whitespace(&mut rng, &doc);
        let reparsed = CampaignSpec::from_json(&noisy)
            .unwrap_or_else(|e| panic!("case {case}: whitespace variant rejected: {e}"));
        assert_eq!(reparsed.to_json(), doc);
        assert_eq!(reparsed.identity(), spec.identity());

        // The expansion the engine sees is a pure function of those
        // bytes: cell keys agree between the original and the wire copy.
        let a: Vec<u64> = spec.to_matrix().expand().iter().map(|c| c.key()).collect();
        let b: Vec<u64> = reparsed
            .to_matrix()
            .expand()
            .iter()
            .map(|c| c.key())
            .collect();
        assert_eq!(a, b, "case {case}: wire copy expands to different cells");
    }
}

#[test]
fn truncation_at_every_boundary_is_a_typed_error() {
    let mut rng = SimRng::seed_from_u64(0x5EC_0002);
    let mut spent = 0usize;
    while spent < 12_000 {
        let doc = random_spec(&mut rng).to_json();
        for cut in 0..doc.len() {
            assert!(
                CampaignSpec::from_json(&doc[..cut]).is_err(),
                "truncation at {cut} parsed:\n{doc}"
            );
            spent += 1;
        }
        assert!(CampaignSpec::from_json(&doc).is_ok());
    }
}

#[test]
fn bit_flips_and_noise_never_panic() {
    let mut rng = SimRng::seed_from_u64(0x5EC_0003);
    let (mut ok, mut err) = (0u64, 0u64);
    for _ in 0..4_000 {
        let mut bytes = random_spec(&mut rng).to_json().into_bytes();
        let bit = rng.uniform_u64(0, bytes.len() as u64 * 8);
        bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
        let Ok(text) = std::str::from_utf8(&bytes) else {
            continue; // from_json takes &str; a non-UTF-8 flip can't reach it
        };
        match CampaignSpec::from_json(text) {
            Ok(_) => ok += 1,   // e.g. a digit flip — still a valid document
            Err(_) => err += 1, // typed, not a panic
        }
    }
    assert!(err > 0, "no flip was ever rejected");
    // Pure noise through the raw JSON layer, magic-free: total as well.
    for _ in 0..8_000 {
        let len = rng.uniform_u64(0, 96) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.uniform_u64(0, 256) as u8).collect();
        if let Ok(text) = std::str::from_utf8(&bytes) {
            match Json::parse(text) {
                Ok(_) => ok += 1,
                Err(_) => err += 1,
            }
        }
    }
    assert!(ok > 0 && err > 0);
}

#[test]
fn unknown_spec_version_is_a_typed_error() {
    let doc = CampaignSpec::new(ExperimentConfig::builder().hold_secs(1).build()).to_json();
    for bad in [0, SPEC_VERSION + 1, 999] {
        let patched = doc.replace(
            &format!("\"spec_version\":{SPEC_VERSION}"),
            &format!("\"spec_version\":{bad}"),
        );
        match CampaignSpec::from_json(&patched) {
            Err(SpecError::UnsupportedVersion { found }) => assert_eq!(found, bad),
            other => panic!("version {bad}: expected UnsupportedVersion, got {other:?}"),
        }
    }
    // And a document with *no* version field is refused outright.
    match CampaignSpec::from_json("{}") {
        Err(SpecError::MissingField { path }) => assert_eq!(path, "spec_version"),
        other => panic!("expected MissingField(spec_version), got {other:?}"),
    }
}

#[test]
fn oversized_cross_products_are_typed_errors_not_aborts() {
    // A hostile `runs` must die at parse time — before the daemon can
    // persist the spec or try to allocate u64::MAX cells.
    for runs in [u64::MAX, MAX_CELLS + 1] {
        let doc = format!("{{\"spec_version\":1,\"runs\":{runs}}}");
        match CampaignSpec::from_json(&doc) {
            Err(SpecError::TooManyCells { cells, max }) => {
                assert_eq!(max, MAX_CELLS);
                assert_eq!(cells, Some(runs));
            }
            other => panic!("runs={runs}: expected TooManyCells, got {other:?}"),
        }
    }
    // Overflow of the count itself (axes × runs past u64) is the same
    // typed error, with the count marked uncomputable.
    let doc = format!(
        "{{\"spec_version\":1,\"environments\":[\"urban\",\"rural\"],\"runs\":{}}}",
        u64::MAX
    );
    match CampaignSpec::from_json(&doc) {
        Err(SpecError::TooManyCells { cells: None, max }) => assert_eq!(max, MAX_CELLS),
        other => panic!("expected overflowing TooManyCells, got {other:?}"),
    }
    // The cap is inclusive: exactly MAX_CELLS parses, and the counted
    // size matches what expansion would produce.
    let doc = format!("{{\"spec_version\":1,\"runs\":{MAX_CELLS}}}");
    let spec = CampaignSpec::from_json(&doc).expect("MAX_CELLS itself is accepted");
    assert_eq!(spec.to_matrix().cell_count(), Some(MAX_CELLS));
}

#[test]
fn cell_count_matches_expansion() {
    let mut rng = SimRng::seed_from_u64(0x5EC_0007);
    for _ in 0..50 {
        let spec = random_spec(&mut rng);
        let matrix = spec.to_matrix();
        assert_eq!(
            matrix.cell_count(),
            Some(matrix.expand().len() as u64),
            "checked count must agree with the real expansion"
        );
    }
}

#[test]
fn duplicate_keys_are_rejected_at_the_json_layer() {
    let mut rng = SimRng::seed_from_u64(0x5EC_0004);
    for _ in 0..50 {
        let doc = random_spec(&mut rng).to_json();
        // Canonical docs open with `{"base":…`; prefixing a second
        // `"base"` member makes the *object* malformed before the spec
        // layer ever sees it.
        let dup = format!("{{\"base\":0,{}", &doc[1..]);
        match CampaignSpec::from_json(&dup) {
            Err(SpecError::Json(JsonError::DuplicateKey { key, .. })) => {
                assert_eq!(key, "base");
            }
            other => panic!("expected DuplicateKey, got {other:?}"),
        }
    }
    // Duplicates deep inside a nested object are caught too.
    let nested = r#"{"spec_version":1,"base":{"seed":1,"seed":2}}"#;
    assert!(matches!(
        CampaignSpec::from_json(nested),
        Err(SpecError::Json(JsonError::DuplicateKey { .. }))
    ));
}

#[test]
fn readme_quick_start_example_parses() {
    // The exact spec body from README.md's service-mode quick start —
    // if this stops parsing, fix the docs along with the codec.
    let body = r#"{
  "spec_version": 1,
  "base": {"cc": {"mode": "gcc"}, "seed": 42, "hold_us": 2000000},
  "environments": ["urban", "rural"],
  "runs": 2
}"#;
    let spec = CampaignSpec::from_json(body).expect("README example must stay valid");
    assert_eq!(spec.to_matrix().expand().len(), 4);
    // Re-canonicalized bytes are the identity, whatever the input spacing.
    assert_eq!(
        spec.identity(),
        CampaignSpec::from_json(&spec.to_json()).unwrap().identity()
    );
}
