//! The adaptive deadline scheduler must be *byte-identical* to the 1 ms
//! reference loop: [`Simulation::run_fast`] and [`Simulation::run_reference`]
//! produce [`RunMetrics`] whose canonical `to_bytes()` encodings match
//! exactly — every OWD sample's f64 bit pattern, every handover record,
//! every watchdog stat.
//!
//! The seeded matrix spans all three congestion controllers, both
//! environments, both mobility profiles, and a hostile fault script
//! (blackout + loss burst) — the states where deadline bookkeeping is
//! hardest to get right. The multipath failover driver keeps its fixed
//! tick, so its cell pins determinism under the scripted scheme instead.

use rpav_core::multipath::{run_multipath_scripted, MultipathScheme};
use rpav_core::prelude::*;
use rpav_netem::FaultScript;
use rpav_sim::{SimDuration, SimTime};

/// Blackout + loss-burst campaign used by the scripted cells: feedback
/// starvation, watchdog backoff, PLI recovery, and NACK abandonment all
/// fire inside one run.
fn hostile_script() -> FaultScript {
    FaultScript::new()
        .blackout(SimTime::from_secs(12), SimDuration::from_secs(3))
        .loss_window(
            SimTime::from_secs(22),
            SimDuration::from_secs(4),
            0.25,
            None,
        )
}

fn config(cc: CcMode, env: Environment, mobility: Mobility, seed: u64) -> ExperimentConfig {
    ExperimentConfig::builder()
        .environment(env)
        .mobility(mobility)
        .cc(cc)
        .seed(seed)
        .hold_secs(1)
        .ground_sweeps(1)
        .build()
}

/// Run one cell under both drivers and assert canonical-byte identity.
fn assert_bit_identical(cfg: ExperimentConfig, script: Option<FaultScript>, label: &str) {
    let build = |cfg: ExperimentConfig| match &script {
        Some(s) => Simulation::new(cfg).with_link_script(s.clone()),
        None => Simulation::new(cfg),
    };
    let fast = build(cfg).run_fast().to_bytes();
    let reference = build(cfg).run_reference().to_bytes();
    assert!(
        fast == reference,
        "{label}: adaptive scheduler diverged from the 1 ms reference loop \
         ({} vs {} canonical bytes)",
        fast.len(),
        reference.len()
    );
}

type CcCtor = fn() -> CcMode;

const CCS: [(&str, CcCtor); 3] = [
    ("static", || CcMode::paper_static(Environment::Urban)),
    ("gcc", || CcMode::Gcc),
    ("scream", || CcMode::paper_scream()),
];

#[test]
fn clean_air_cells_are_bit_identical() {
    for (name, cc) in CCS {
        for env in [Environment::Urban, Environment::Rural] {
            assert_bit_identical(
                config(cc(), env, Mobility::Air, 0xE0_0001),
                None,
                &format!("{name}/{env:?}/air/clean"),
            );
        }
    }
}

#[test]
fn ground_cells_are_bit_identical() {
    for (name, cc) in CCS {
        assert_bit_identical(
            config(cc(), Environment::Urban, Mobility::Ground, 0xE0_0002),
            None,
            &format!("{name}/urban/ground/clean"),
        );
    }
}

#[test]
fn scripted_fault_cells_are_bit_identical() {
    for (name, cc) in CCS {
        assert_bit_identical(
            config(cc(), Environment::Rural, Mobility::Air, 0xE0_0003),
            Some(hostile_script()),
            &format!("{name}/rural/air/hostile"),
        );
    }
}

/// Bonded multipath with both repair layers armed (NACK/RTX plus
/// Reed-Solomon FEC) — a config for `n` legs and the full repair stack.
fn bonded_config(n_legs: usize, seed: u64) -> ExperimentConfig {
    ExperimentConfig::builder()
        .environment(Environment::Urban)
        .mobility(Mobility::Air)
        .cc(CcMode::Gcc)
        .seed(seed)
        .hold_secs(1)
        .ground_sweeps(1)
        .n_legs(n_legs)
        .fec_cap(0.25)
        .repair(true)
        .build()
}

/// The multipath driver keeps its fixed tick under both scheduler modes,
/// so the cross-scheduler contract for a bonded cell is that
/// [`Cell::execute_with`] produces the *same* canonical bytes whether the
/// engine resolved the reference oracle or the adaptive scheduler — and
/// that repeated runs reproduce exactly. These cells pin that for the
/// configs the alloc work touched hardest: bonded N=2 and 4-leg striping
/// with RTX repair and RS FEC both on.
fn assert_bonded_bit_identical(n_legs: usize, seed: u64, label: &str) {
    let spec =
        MatrixSpec::new(bonded_config(n_legs, seed)).multipath_schemes([MultipathScheme::Bonded]);
    let cells = spec.expand();
    assert_eq!(cells.len(), 1, "{label}: expected a single expanded cell");
    let cell = &cells[0];
    let adaptive = cell.execute_with(false).to_bytes();
    let reference = cell.execute_with(true).to_bytes();
    assert!(
        adaptive == reference,
        "{label}: bonded cell diverged between the adaptive scheduler \
         and the reference oracle ({} vs {} canonical bytes)",
        adaptive.len(),
        reference.len()
    );
    let again = cell.execute_with(false).to_bytes();
    assert!(
        adaptive == again,
        "{label}: bonded cell is not reproducible byte-for-byte"
    );
}

#[test]
fn bonded_two_leg_repair_fec_is_bit_identical() {
    assert_bonded_bit_identical(2, 0xE0_0005, "bonded/n=2/repair+fec");
}

#[test]
fn bonded_four_leg_repair_fec_is_bit_identical() {
    assert_bonded_bit_identical(4, 0xE0_0006, "bonded/n=4/repair+fec");
}

#[test]
fn failover_scheme_stays_deterministic_under_script() {
    // The multipath driver is unchanged by the adaptive scheduler (it
    // keeps the fixed tick); this cell pins that the scripted failover
    // path still reproduces byte-for-byte, so the matrix the perf
    // harness sweeps is deterministic end to end.
    let cfg = config(CcMode::Gcc, Environment::Urban, Mobility::Air, 0xE0_0004);
    let run = || {
        run_multipath_scripted(
            &cfg,
            MultipathScheme::Failover,
            Some(hostile_script()),
            None,
        )
        .to_bytes()
    };
    assert!(
        run() == run(),
        "scripted failover run is not reproducible byte-for-byte"
    );
}
