//! Property-based invariants across crate boundaries: conservation,
//! ordering and monotonicity statements that must hold for *any* input,
//! not just the calibrated scenarios.

use bytes::Bytes;
use proptest::prelude::*;
use rpav_lte::channel;
use rpav_netem::{BottleneckLink, Packet, PacketKind};
use rpav_rtp::jitter::{JitterBuffer, JitterConfig};
use rpav_rtp::packet::RtpPacket;
use rpav_sim::{SimDuration, SimTime};
use rpav_video::{encode_ssim, Encoder, EncoderConfig, SourceVideo};

fn media_packet(seq: u64, bytes: usize) -> Packet {
    Packet::new(
        seq,
        Bytes::from(vec![0u8; bytes]),
        PacketKind::Media,
        SimTime::ZERO,
    )
}

proptest! {
    /// A lossless bottleneck link conserves packets and preserves FIFO
    /// order for any arrival pattern, rate schedule and pause.
    #[test]
    fn bottleneck_conserves_and_orders(
        arrivals in proptest::collection::vec((0u64..2_000_000, 200usize..1_400), 1..120),
        rate_khz in 1u64..50_000,
        pause_ms in 0u64..2_000,
    ) {
        let mut link = BottleneckLink::new(
            rate_khz as f64 * 1_000.0,
            SimDuration::from_millis(5),
            usize::MAX,
            usize::MAX,
        );
        let mut times: Vec<u64> = arrivals.iter().map(|(t, _)| *t).collect();
        times.sort_unstable();
        let mut accepted = 0u64;
        for (i, ((_, size), t)) in arrivals.iter().zip(times.iter()).enumerate() {
            let now = SimTime::from_micros(*t);
            if i == arrivals.len() / 2 && pause_ms > 0 {
                link.pause_until(now, now + SimDuration::from_millis(pause_ms));
            }
            prop_assert!(link.enqueue(now, media_packet(i as u64, *size)));
            accepted += 1;
        }
        // Drain far in the future.
        let horizon = SimTime::from_secs(3_600);
        let mut got = Vec::new();
        while let Some(p) = link.poll(horizon) {
            got.push(p.seq);
        }
        prop_assert_eq!(got.len() as u64, accepted, "packets lost or duplicated");
        let mut sorted = got.clone();
        sorted.sort_unstable();
        prop_assert_eq!(got, sorted, "FIFO violated");
    }

    /// The jitter buffer never delivers a packet before its buffering
    /// target, never duplicates, and always releases everything eventually.
    #[test]
    fn jitter_buffer_release_invariants(
        deliveries in proptest::collection::vec((0u64..5_000, 0u16..200), 1..150),
    ) {
        let mut jb = JitterBuffer::new(JitterConfig::default());
        let mut unique = std::collections::HashSet::new();
        for (arrive_ms, seq) in &deliveries {
            unique.insert(*seq);
            jb.push(
                SimTime::from_millis(*arrive_ms),
                RtpPacket {
                    marker: false,
                    payload_type: 96,
                    sequence: *seq,
                    timestamp: *seq as u32 * 3_000,
                    ssrc: 1,
                    transport_seq: None,
                    payload: Bytes::from_static(b"x"),
                    wire: None,
                },
            );
        }
        let horizon = SimTime::from_secs(7_200);
        let mut seen = std::collections::HashSet::new();
        let mut last_playout = SimTime::ZERO;
        while let Some((playout, p)) = jb.pop_due(horizon) {
            prop_assert!(playout >= last_playout, "playout time went backwards");
            last_playout = playout;
            prop_assert!(seen.insert(p.sequence), "duplicate delivered: {}", p.sequence);
        }
        // Everything unique was either delivered or (only in
        // drop-on-latency mode, which is off here) dropped.
        prop_assert_eq!(seen.len(), unique.len());
    }

    /// The SINR → throughput mapping and the HARQ-delay model are monotone
    /// in SINR — a better channel never yields less capacity or more delay.
    #[test]
    fn radio_mappings_monotone(sinrs in proptest::collection::vec(-30.0f64..40.0, 2..50)) {
        let mut s = sinrs.clone();
        s.sort_by(|a, b| a.total_cmp(b));
        let params = rpav_lte::NetworkProfile::new(
            rpav_lte::Environment::Urban,
            rpav_lte::Operator::P1,
        )
        .channel;
        let mut last_thr = -1.0f64;
        let mut last_delay = SimDuration::MAX;
        for sinr in s {
            let thr = channel::uplink_throughput_bps(&params, sinr);
            prop_assert!(thr >= last_thr, "throughput not monotone at {sinr} dB");
            last_thr = thr;
            let d = channel::harq_delay(sinr);
            prop_assert!(d <= last_delay, "HARQ delay not monotone at {sinr} dB");
            last_delay = d;
        }
    }

    /// The encoder's long-run output rate tracks any (positive) target,
    /// and SSIM is monotone in the spent bits.
    #[test]
    fn encoder_rate_tracking(target_mbps in 1u32..40) {
        let target = target_mbps as f64 * 1e6;
        let mut enc = Encoder::new(EncoderConfig::default(), SourceVideo::new(5), target);
        let mut bits = 0.0;
        let mut t = SimTime::ZERO;
        let secs = 20u64;
        while t < SimTime::from_secs(secs) {
            if let Some(f) = enc.poll(t) {
                bits += f.meta.frame_bytes as f64 * 8.0;
            }
            t += SimDuration::from_millis(5);
        }
        let rate = bits / secs as f64;
        prop_assert!(
            (rate - target).abs() < 0.2 * target,
            "target {target:.1e} produced {rate:.1e}"
        );
    }

    /// SSIM responds monotonically to bitrate at any complexity.
    #[test]
    fn ssim_monotone_in_bits(complexity in 0.5f64..1.6) {
        let mut last = -1.0;
        for kb in (10u32..3_000).step_by(50) {
            let q = encode_ssim(kb * 1_000, complexity);
            prop_assert!(q >= last);
            prop_assert!((0.0..=1.0).contains(&q));
            last = q;
        }
    }
}

// ---------------------------------------------------------------------
// Parser-hardening counter deltas: the pipeline's wire parsers are total
// functions whose failures land in typed counters instead of silent
// drops (or panics). These are plain deterministic runs, not proptest —
// the full-pipeline cases are too slow for per-case shrinking.

mod hostile_wire {
    use rpav_core::prelude::*;
    use rpav_netem::{FaultScript, PacketKind};
    use rpav_sim::{SimDuration, SimTime};

    fn cfg(repair: bool) -> ExperimentConfig {
        ExperimentConfig::builder()
            .environment(rpav_lte::Environment::Urban)
            .cc(CcMode::Gcc)
            .seed(0x3AD_51DE)
            .hold_secs(1)
            .repair(repair)
            .build()
    }

    /// Valid traffic leaves every damage counter at zero: hardening the
    /// parsers changed error handling, not the happy path.
    #[test]
    fn clean_wire_keeps_damage_counters_zero() {
        let m = Simulation::new(cfg(false)).run();
        assert_eq!(m.malformed_packets, 0);
        assert_eq!(m.malformed_payloads, 0);
        assert_eq!(m.corrupted_arrivals, 0);
        assert_eq!(m.duplicate_packets, 0);
        assert!(m.frames.iter().any(|f| f.displayed));
    }

    /// Bit-corruption and duplication on the wire surface as counter
    /// deltas while the run itself survives to keep displaying frames.
    #[test]
    fn hostile_wire_lands_in_counters_not_panics() {
        let script = FaultScript::new()
            .corrupt_window(
                SimTime::from_secs(10),
                SimDuration::from_secs(60),
                0.05,
                None,
            )
            .duplicate_window(
                SimTime::from_secs(10),
                SimDuration::from_secs(60),
                0.05,
                Some(PacketKind::Media),
            );
        let clean = Simulation::new(cfg(false)).run();
        let hostile = Simulation::new(cfg(false)).with_link_script(script).run();

        // Corruption reached the receiver and was counted, not dropped
        // at the door...
        assert!(hostile.corrupted_arrivals > 0);
        // ...and the flipped bits made some packets unparseable (media
        // header damage) or structurally valid but with a rejected
        // payload header.
        assert!(
            hostile.malformed_packets + hostile.malformed_payloads > 0,
            "5% corruption produced no parse failures"
        );
        // Wire duplicates were detected and discarded exactly once.
        assert!(hostile.duplicate_packets > 0);
        // Deltas are real: the clean twin of the same seed has none.
        assert_eq!(clean.malformed_packets, 0);
        assert_eq!(clean.duplicate_packets, 0);
        // Graceful degradation, not collapse.
        assert!(hostile.frames.iter().any(|f| f.displayed));
    }
}
