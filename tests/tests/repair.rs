//! Loss-repair acceptance: seed-matched NACK/RTX-on vs -off runs under
//! hostile-wire conditions.
//!
//! The contract from the repair subsystem's design: at ≥1 % media loss,
//! enabling repair must never make playback worse — stall time and forced
//! keyframes are at most the repair-off values for the same seed and the
//! same fault script — and for the low-latency adaptive CCs it must
//! actively recover losses before their playout deadline. Everything is
//! bit-identical per seed, so these comparisons are exact, not
//! statistical.

use rpav_core::prelude::*;
use rpav_netem::{FaultScript, PacketKind};
use rpav_sim::{SimDuration, SimTime};

const SEED: u64 = 0x4EC0;

/// Stall-time comparison tolerance: one 33 ms display slot. The on/off
/// runs share a seed but diverge in RNG-draw order once RTX packets enter
/// the shared network streams, which shifts handover-induced stalls (the
/// dominant stall source, untouched by repair) by sub-slot amounts.
const SLOT: SimDuration = SimDuration::from_millis(34);

/// One run with a 2 % media-loss window covering the cruise phase.
fn lossy_run(cc: CcMode, repair: bool) -> RunMetrics {
    let cfg = ExperimentConfig::builder()
        .environment(Environment::Urban)
        .cc(cc)
        .seed(SEED)
        .hold_secs(1)
        .repair(repair)
        .build();
    let script = FaultScript::new().loss_window(
        SimTime::from_secs(10),
        SimDuration::from_secs(120),
        0.02,
        Some(PacketKind::Media),
    );
    Simulation::new(cfg).with_uplink_script(script).run()
}

#[test]
fn repair_never_worse_and_recovers_for_gcc() {
    let off = lossy_run(CcMode::Gcc, false);
    let on = lossy_run(CcMode::Gcc, true);

    // Repair must actually engage: gaps detected, NACKs sent, RTX
    // arriving in time to fill them.
    assert!(on.nacks_sent > 0, "no NACKs sent under 2% loss");
    assert!(
        on.rtx_recovered > 0,
        "no losses recovered (nacks {} requested {} abandoned {})",
        on.nacks_sent,
        on.nack_seqs_requested,
        on.nack_abandoned
    );
    // The off-run must not sprout repair state out of nowhere.
    assert_eq!(off.nacks_sent, 0);
    assert_eq!(off.rtx_sent, 0);

    // The acceptance bar: repair-on is no worse on both stalls and
    // forced keyframes, and GCC's short queues make it strictly better
    // on keyframes (every recovered gap is a PLI that never fires).
    assert!(
        on.stalls <= off.stalls,
        "stalls rose: {} > {}",
        on.stalls,
        off.stalls
    );
    assert!(
        on.stalled_time <= off.stalled_time + SLOT,
        "stall time rose with repair: {:?} > {:?}",
        on.stalled_time,
        off.stalled_time
    );
    assert!(
        on.forced_keyframes <= off.forced_keyframes,
        "forced keyframes rose with repair: {} > {}",
        on.forced_keyframes,
        off.forced_keyframes
    );
    assert!(
        on.forced_keyframes < off.forced_keyframes,
        "repair recovered {} losses yet saved no keyframes ({} vs {})",
        on.rtx_recovered,
        on.forced_keyframes,
        off.forced_keyframes
    );
}

#[test]
fn repair_never_worse_for_scream_and_static() {
    for cc in [
        CcMode::paper_scream(),
        CcMode::paper_static(Environment::Urban),
    ] {
        let off = lossy_run(cc, false);
        let on = lossy_run(cc, true);
        assert!(
            on.stalls <= off.stalls,
            "{}: stalls rose: {} > {}",
            cc.name(),
            on.stalls,
            off.stalls
        );
        assert!(
            on.stalled_time <= off.stalled_time + SLOT,
            "{}: stall time rose with repair: {:?} > {:?}",
            cc.name(),
            on.stalled_time,
            off.stalled_time
        );
        assert!(
            on.forced_keyframes <= off.forced_keyframes,
            "{}: forced keyframes rose with repair: {} > {}",
            cc.name(),
            on.forced_keyframes,
            off.forced_keyframes
        );
    }
}

#[test]
fn repair_run_replays_bit_identically() {
    let a = lossy_run(CcMode::Gcc, true);
    let b = lossy_run(CcMode::Gcc, true);
    assert_eq!(a.media_sent, b.media_sent);
    assert_eq!(a.media_received, b.media_received);
    assert_eq!(a.nacks_sent, b.nacks_sent);
    assert_eq!(a.nack_seqs_requested, b.nack_seqs_requested);
    assert_eq!(a.rtx_sent, b.rtx_sent);
    assert_eq!(a.rtx_recovered, b.rtx_recovered);
    assert_eq!(a.forced_keyframes, b.forced_keyframes);
    assert_eq!(a.stalled_time, b.stalled_time);
    assert_eq!(a.frames.len(), b.frames.len());
}
