//! End-to-end outage survival: a 5 s mid-flight link blackout must not
//! permanently stall the pipeline under either adaptive controller.
//!
//! The bars mirror the chaos campaign's acceptance criteria
//! (`rpav-bench`'s `chaos_matrix`): frames are displayed again after the
//! blackout, and the delivered rate is back to at least 50 % of the
//! pre-outage baseline within 30 s. Getting there exercises the whole
//! recovery chain — feedback-starvation watchdog, PLI → forced IDR, and
//! jitter-target inflation.

use rpav_core::prelude::*;
use rpav_netem::FaultScript;
use rpav_sim::{SimDuration, SimTime};

const BLACKOUT_AT: SimTime = SimTime::from_secs(120);
const BLACKOUT_LEN: SimDuration = SimDuration::from_secs(5);

fn run_with_blackout(cc: CcMode) -> RunMetrics {
    let cfg = ExperimentConfig::builder()
        .environment(Environment::Urban)
        .cc(cc)
        .seed(0x1AC_2022)
        .build();
    let script = FaultScript::new().blackout(BLACKOUT_AT, BLACKOUT_LEN);
    Simulation::new(cfg).with_link_script(script).run()
}

fn assert_recovered(metrics: &RunMetrics, label: &str) {
    assert_eq!(metrics.outages.len(), 1, "{label}: one outage expected");
    let o = &metrics.outages[0];
    assert!(
        o.survived(),
        "{label}: no frame displayed after the blackout (permanent stall)"
    );
    let frames_after = metrics
        .frames
        .iter()
        .filter(|f| f.displayed && f.display_at >= o.until)
        .count();
    assert!(
        frames_after > 0,
        "{label}: zero frames delivered after the outage"
    );
    let half = o
        .time_to_half_rate_recovery()
        .unwrap_or_else(|| SimDuration::from_secs(u64::MAX / 2));
    assert!(
        half <= SimDuration::from_secs(30),
        "{label}: rate back to 50% of the {:.1} Mbps baseline only after \
         {} ms (bar 30 s)",
        o.baseline_bps / 1e6,
        half.as_millis()
    );
}

#[test]
fn gcc_survives_five_second_blackout() {
    let metrics = run_with_blackout(CcMode::Gcc);
    assert_recovered(&metrics, "GCC");
    // The recovery machinery actually fired: the watchdog noticed the
    // feedback gap and the receiver asked for (and got) a keyframe.
    assert!(metrics.watchdog_activations >= 1, "watchdog never armed in");
    assert!(
        metrics.watchdog_recoveries >= 1,
        "watchdog never ramped out"
    );
    assert!(metrics.plis_sent >= 1, "receiver never sent a PLI");
    assert!(metrics.forced_keyframes >= 1, "sender never forced an IDR");
}

#[test]
fn scream_survives_five_second_blackout() {
    let metrics = run_with_blackout(CcMode::Scream { ack_span: 64 });
    assert_recovered(&metrics, "SCReAM");
    assert!(metrics.watchdog_activations >= 1, "watchdog never armed in");
    assert!(metrics.plis_sent >= 1, "receiver never sent a PLI");
}
