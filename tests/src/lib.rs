//! Host crate for the cross-crate integration tests in `tests/`.
//!
//! The actual tests live in this package's `tests/` directory:
//! `paper_claims.rs` (end-to-end shape claims), `wire_interop.rs`
//! (serialisation seams), `ackspan_ablation.rs` (§4.2.1).
