//! UAV and ground-vehicle mobility models.
//!
//! The paper's measurement campaign (§3.1, Appendix A.2) flew a fixed
//! trajectory per flight: vertical lift-off to 40 m, a ≈200 m horizontal
//! leap, the same at 80 m and 120 m, then a straight descent — ≈6 minutes of
//! air time, median ground speed 13 km/h, maximum 60 km/h. Ground baselines
//! were collected with a motorbike moving at comparable horizontal speeds.
//!
//! This crate provides:
//!
//! * [`Position`] / [`Velocity`] — a local east/north/up frame in metres.
//! * [`FlightPlan`] — piecewise-linear waypoint kinematics with per-leg
//!   speeds and hover/hold segments, sampled at any [`rpav_sim::SimTime`].
//! * [`profiles`] — builders for the paper's aerial trajectory
//!   ([`profiles::paper_flight`]) and the motorbike ground run
//!   ([`profiles::ground_run`]).

pub mod geo;
pub mod plan;
pub mod profiles;

pub use geo::{Position, Velocity};
pub use plan::{FlightPlan, Leg};
