//! Ready-made mobility profiles matching the paper's campaign.

use rpav_sim::SimDuration;

use crate::geo::Position;
use crate::plan::{FlightPlan, Leg};

/// Climb/descent rate used for the vertical segments (m/s). The DJI-M600
/// with a ≈5 kg payload climbs conservatively.
pub const CLIMB_RATE_MPS: f64 = 2.5;

/// Cruise speed for horizontal leaps: 13 km/h, the paper's median recorded
/// speed (§3.1).
pub const CRUISE_SPEED_MPS: f64 = 13.0 / 3.6;

/// Fastest recorded speed (60 km/h, §3.1) — used by the ground run's
/// reposition leg.
pub const MAX_SPEED_MPS: f64 = 60.0 / 3.6;

/// Horizontal leap length at each altitude step (m), per Appendix A.2.
pub const LEAP_LENGTH_M: f64 = 200.0;

/// The altitude steps of the paper trajectory (m), per Appendix A.2.
pub const ALTITUDE_STEPS_M: [f64; 3] = [40.0, 80.0, 120.0];

/// Build the paper's flight trajectory (Fig. 11) starting from `origin`:
/// lift off vertically to 40 m, leap ≈200 m horizontally, repeat the
/// climb-and-leap at 80 m and 120 m (alternating direction), then descend
/// straight down. Total air time ≈6 minutes.
///
/// `hold` is the hover time inserted after each leg (the real pilot pauses
/// to stabilise before the next manoeuvre).
pub fn paper_flight(origin: Position, hold: SimDuration) -> FlightPlan {
    let (x0, y0) = (origin.x, origin.y);
    let mut legs = Vec::new();
    let mut x = x0;
    for (i, alt) in ALTITUDE_STEPS_M.iter().enumerate() {
        // Climb vertically to the next altitude step.
        legs.push(Leg::Goto {
            to: Position::new(x, y0, *alt),
            speed_mps: CLIMB_RATE_MPS,
        });
        legs.push(Leg::Hold { duration: hold });
        // Horizontal leap, alternating outbound/return.
        x = if i % 2 == 0 { x0 + LEAP_LENGTH_M } else { x0 };
        legs.push(Leg::Goto {
            to: Position::new(x, y0, *alt),
            speed_mps: CRUISE_SPEED_MPS,
        });
        legs.push(Leg::Hold { duration: hold });
    }
    // Straight descent from the end of the last leap.
    legs.push(Leg::Goto {
        to: Position::new(x, y0, 0.0),
        speed_mps: CLIMB_RATE_MPS,
    });
    FlightPlan::new(Position::ground(x0, y0), &legs)
}

/// Build the motorbike ground run used as the terrestrial baseline (§4.1):
/// out-and-back sweeps along the UAV's 200 m leap track at flight-like
/// speeds, with stationary holds — the paper notes the ground dataset
/// "likely includes longer durations without horizontal movements", so the
/// holds are generous.
pub fn ground_run(origin: Position, sweeps: usize, hold: SimDuration) -> FlightPlan {
    let (x0, y0) = (origin.x, origin.y);
    let far = x0 + LEAP_LENGTH_M;
    let mut legs = Vec::new();
    legs.push(Leg::Hold { duration: hold });
    for i in 0..sweeps {
        // Alternate between cruise-speed and one faster sweep to cover the
        // speed range the UAV sees.
        let speed = if i == sweeps / 2 {
            MAX_SPEED_MPS
        } else {
            CRUISE_SPEED_MPS
        };
        legs.push(Leg::Goto {
            to: Position::ground(far, y0),
            speed_mps: speed,
        });
        legs.push(Leg::Hold { duration: hold });
        legs.push(Leg::Goto {
            to: Position::ground(x0, y0),
            speed_mps: speed,
        });
        legs.push(Leg::Hold { duration: hold });
    }
    FlightPlan::new(Position::ground(x0, y0), &legs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpav_sim::SimTime;

    #[test]
    fn paper_flight_duration_is_about_six_minutes() {
        let plan = paper_flight(Position::ground(0.0, 0.0), SimDuration::from_secs(5));
        let mins = plan.duration().as_secs_f64() / 60.0;
        assert!(
            (4.5..8.0).contains(&mins),
            "air time was {mins:.1} min, expected ≈6"
        );
    }

    #[test]
    fn paper_flight_reaches_all_altitude_steps() {
        let plan = paper_flight(Position::ground(0.0, 0.0), SimDuration::from_secs(5));
        assert!((plan.max_altitude() - 120.0).abs() < 1e-9);
        // Sample densely and confirm each step is visited as a plateau.
        let mut seen = [false; 3];
        let n = 4_000;
        for i in 0..n {
            let t = SimTime::from_secs_f64(plan.duration().as_secs_f64() * i as f64 / n as f64);
            let z = plan.altitude_at(t);
            for (k, step) in ALTITUDE_STEPS_M.iter().enumerate() {
                if (z - step).abs() < 0.5 {
                    seen[k] = true;
                }
            }
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn paper_flight_lands() {
        let plan = paper_flight(Position::ground(0.0, 0.0), SimDuration::from_secs(5));
        let end = plan.position_at(SimTime::ZERO + plan.duration());
        assert!(end.z.abs() < 1e-9, "did not land: {end:?}");
    }

    #[test]
    fn paper_flight_speed_profile() {
        let plan = paper_flight(Position::ground(0.0, 0.0), SimDuration::from_secs(5));
        let n = 2_000;
        let mut max_kmph: f64 = 0.0;
        for i in 0..n {
            let t = SimTime::from_secs_f64(plan.duration().as_secs_f64() * i as f64 / n as f64);
            max_kmph = max_kmph.max(plan.velocity_at(t).horizontal_kmph());
        }
        // Horizontal speed never exceeds the paper's recorded max.
        assert!(max_kmph <= 60.0 + 1e-9, "max speed {max_kmph} km/h");
        assert!(max_kmph >= 12.0, "cruise speed missing: {max_kmph} km/h");
    }

    #[test]
    fn ground_run_stays_on_the_ground() {
        let plan = ground_run(Position::ground(0.0, 0.0), 3, SimDuration::from_secs(20));
        assert!(!plan.is_aerial());
        let n = 500;
        for i in 0..n {
            let t = SimTime::from_secs_f64(plan.duration().as_secs_f64() * i as f64 / n as f64);
            assert!(plan.position_at(t).z.abs() < 1e-9);
        }
    }

    #[test]
    fn ground_run_includes_fast_sweep() {
        let plan = ground_run(Position::ground(0.0, 0.0), 3, SimDuration::from_secs(5));
        let n = 4_000;
        let mut max_kmph: f64 = 0.0;
        for i in 0..n {
            let t = SimTime::from_secs_f64(plan.duration().as_secs_f64() * i as f64 / n as f64);
            max_kmph = max_kmph.max(plan.velocity_at(t).horizontal_kmph());
        }
        assert!((max_kmph - 60.0).abs() < 1.0, "max was {max_kmph}");
    }

    #[test]
    fn ground_run_returns_to_origin() {
        let plan = ground_run(Position::ground(0.0, 0.0), 2, SimDuration::from_secs(5));
        let end = plan.position_at(SimTime::ZERO + plan.duration());
        assert!(end.horizontal_distance(&Position::ground(0.0, 0.0)) < 1e-6);
    }
}
