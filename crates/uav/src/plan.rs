//! Waypoint-based piecewise-linear kinematics.

use rpav_sim::{SimDuration, SimTime};

use crate::geo::{Position, Velocity};

/// One segment of a [`FlightPlan`].
#[derive(Clone, Copy, Debug)]
pub enum Leg {
    /// Fly in a straight line to `to` at `speed_mps` (must be > 0).
    Goto {
        /// Destination waypoint.
        to: Position,
        /// Constant speed along the leg (m/s).
        speed_mps: f64,
    },
    /// Hold the current position for a duration (hover, or a parked ground
    /// vehicle).
    Hold {
        /// How long to hold.
        duration: SimDuration,
    },
}

/// A mobility model: a start position plus a list of legs, sampled with
/// piecewise-linear interpolation. After the final leg the vehicle holds its
/// last position indefinitely.
#[derive(Clone, Debug)]
pub struct FlightPlan {
    start: Position,
    /// Compiled segments: (start_time, end_time, from, to).
    segments: Vec<Segment>,
    total: SimDuration,
}

#[derive(Clone, Copy, Debug)]
struct Segment {
    t0: SimTime,
    t1: SimTime,
    from: Position,
    to: Position,
}

impl FlightPlan {
    /// Compile `legs` into a sampled plan starting at `start` at t = 0.
    ///
    /// # Panics
    /// Panics if a `Goto` leg has a non-positive speed.
    pub fn new(start: Position, legs: &[Leg]) -> Self {
        let mut segments = Vec::with_capacity(legs.len());
        let mut pos = start;
        let mut t = SimTime::ZERO;
        for leg in legs {
            match *leg {
                Leg::Goto { to, speed_mps } => {
                    assert!(speed_mps > 0.0, "Goto leg needs positive speed");
                    let dist = pos.distance(&to);
                    let dur = SimDuration::from_secs_f64(dist / speed_mps);
                    let t1 = t + dur;
                    segments.push(Segment {
                        t0: t,
                        t1,
                        from: pos,
                        to,
                    });
                    pos = to;
                    t = t1;
                }
                Leg::Hold { duration } => {
                    let t1 = t + duration;
                    segments.push(Segment {
                        t0: t,
                        t1,
                        from: pos,
                        to: pos,
                    });
                    t = t1;
                }
            }
        }
        FlightPlan {
            start,
            segments,
            total: t.saturating_since(SimTime::ZERO),
        }
    }

    /// Total duration of the plan.
    pub fn duration(&self) -> SimDuration {
        self.total
    }

    /// Position at time `t` (clamped to the end of the plan).
    pub fn position_at(&self, t: SimTime) -> Position {
        for seg in &self.segments {
            if t < seg.t1 {
                if t <= seg.t0 {
                    return seg.from;
                }
                let span = seg.t1.saturating_since(seg.t0).as_secs_f64();
                if span <= 0.0 {
                    return seg.to;
                }
                let frac = t.saturating_since(seg.t0).as_secs_f64() / span;
                return seg.from + (seg.to - seg.from) * frac;
            }
        }
        self.segments.last().map(|s| s.to).unwrap_or(self.start)
    }

    /// Velocity at time `t` (zero during holds and after the plan ends).
    pub fn velocity_at(&self, t: SimTime) -> Velocity {
        for seg in &self.segments {
            if t >= seg.t0 && t < seg.t1 {
                let span = seg.t1.saturating_since(seg.t0).as_secs_f64();
                if span <= 0.0 {
                    return Velocity::default();
                }
                return (seg.to - seg.from) * (1.0 / span);
            }
        }
        Velocity::default()
    }

    /// Altitude at time `t` (m above ground).
    pub fn altitude_at(&self, t: SimTime) -> f64 {
        self.position_at(t).z
    }

    /// Maximum altitude reached anywhere on the plan.
    pub fn max_altitude(&self) -> f64 {
        self.segments
            .iter()
            .flat_map(|s| [s.from.z, s.to.z])
            .fold(self.start.z, f64::max)
    }

    /// True if the plan ever leaves the ground.
    pub fn is_aerial(&self) -> bool {
        self.max_altitude() > 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_plan() -> FlightPlan {
        FlightPlan::new(
            Position::ground(0.0, 0.0),
            &[
                // Climb 40 m at 4 m/s: 10 s.
                Leg::Goto {
                    to: Position::new(0.0, 0.0, 40.0),
                    speed_mps: 4.0,
                },
                // Hold 5 s.
                Leg::Hold {
                    duration: SimDuration::from_secs(5),
                },
                // Cruise 100 m east at 10 m/s: 10 s.
                Leg::Goto {
                    to: Position::new(100.0, 0.0, 40.0),
                    speed_mps: 10.0,
                },
            ],
        )
    }

    #[test]
    fn duration_is_sum_of_legs() {
        assert_eq!(simple_plan().duration(), SimDuration::from_secs(25));
    }

    #[test]
    fn position_interpolates_linearly() {
        let p = simple_plan();
        assert_eq!(p.position_at(SimTime::ZERO), Position::ground(0.0, 0.0));
        // Mid-climb.
        let mid = p.position_at(SimTime::from_secs(5));
        assert!((mid.z - 20.0).abs() < 1e-9);
        // Top of climb through the hold.
        assert!((p.position_at(SimTime::from_secs(10)).z - 40.0).abs() < 1e-9);
        assert!((p.position_at(SimTime::from_secs(12)).z - 40.0).abs() < 1e-9);
        // Mid-cruise.
        let cruise = p.position_at(SimTime::from_secs(20));
        assert!((cruise.x - 50.0).abs() < 1e-9);
        assert!((cruise.z - 40.0).abs() < 1e-9);
    }

    #[test]
    fn position_clamps_after_end() {
        let p = simple_plan();
        let end = p.position_at(SimTime::from_secs(1_000));
        assert!((end.x - 100.0).abs() < 1e-9);
        assert!((end.z - 40.0).abs() < 1e-9);
    }

    #[test]
    fn velocity_reflects_leg() {
        let p = simple_plan();
        let climb = p.velocity_at(SimTime::from_secs(5));
        assert!((climb.z - 4.0).abs() < 1e-9);
        assert!(climb.horizontal_speed() < 1e-9);
        let hold = p.velocity_at(SimTime::from_secs(11));
        assert_eq!(hold, Velocity::default());
        let cruise = p.velocity_at(SimTime::from_secs(20));
        assert!((cruise.x - 10.0).abs() < 1e-9);
        assert_eq!(p.velocity_at(SimTime::from_secs(30)), Velocity::default());
    }

    #[test]
    fn max_altitude_and_aerial() {
        let p = simple_plan();
        assert!((p.max_altitude() - 40.0).abs() < 1e-9);
        assert!(p.is_aerial());
        let flat = FlightPlan::new(
            Position::ground(0.0, 0.0),
            &[Leg::Goto {
                to: Position::ground(500.0, 0.0),
                speed_mps: 10.0,
            }],
        );
        assert!(!flat.is_aerial());
    }

    #[test]
    fn empty_plan_holds_start() {
        let p = FlightPlan::new(Position::new(1.0, 2.0, 3.0), &[]);
        assert_eq!(p.duration(), SimDuration::ZERO);
        assert_eq!(
            p.position_at(SimTime::from_secs(9)),
            Position::new(1.0, 2.0, 3.0)
        );
    }

    #[test]
    #[should_panic(expected = "positive speed")]
    fn zero_speed_goto_panics() {
        FlightPlan::new(
            Position::ground(0.0, 0.0),
            &[Leg::Goto {
                to: Position::ground(1.0, 0.0),
                speed_mps: 0.0,
            }],
        );
    }
}
