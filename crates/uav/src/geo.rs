//! Local east/north/up geometry.
//!
//! All positions live in a flat local frame centred on the take-off pad:
//! `x` east, `y` north, `z` up, in metres. At the ≤1.5 km scale of the
//! paper's flight areas a flat-earth approximation is exact to centimetres,
//! so no geodesy is needed.

use std::ops::{Add, Mul, Sub};

/// A point in the local ENU frame (metres).
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Position {
    /// East (m).
    pub x: f64,
    /// North (m).
    pub y: f64,
    /// Altitude above ground (m).
    pub z: f64,
}

/// A velocity vector (m/s per component).
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Velocity {
    /// East rate (m/s).
    pub x: f64,
    /// North rate (m/s).
    pub y: f64,
    /// Climb rate (m/s).
    pub z: f64,
}

impl Position {
    /// Construct a position.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Position { x, y, z }
    }

    /// A position on the ground (z = 0).
    pub const fn ground(x: f64, y: f64) -> Self {
        Position { x, y, z: 0.0 }
    }

    /// Straight-line 3D distance to `other` (m).
    pub fn distance(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Horizontal (ground-plane) distance to `other` (m).
    pub fn horizontal_distance(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Elevation angle from `self` up to `other`, in degrees. Positive when
    /// `other` is above `self`; ±90° straight up/down.
    pub fn elevation_deg_to(&self, other: &Position) -> f64 {
        let h = self.horizontal_distance(other);
        let dz = other.z - self.z;
        dz.atan2(h).to_degrees()
    }
}

impl Velocity {
    /// Construct a velocity.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Velocity { x, y, z }
    }

    /// 3D speed (m/s).
    pub fn speed(&self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Horizontal speed (m/s).
    pub fn horizontal_speed(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Horizontal speed expressed in km/h (the unit the paper reports).
    pub fn horizontal_kmph(&self) -> f64 {
        self.horizontal_speed() * 3.6
    }
}

impl Sub for Position {
    type Output = Velocity;
    /// Displacement per unit "time" — used for finite differencing.
    fn sub(self, rhs: Position) -> Velocity {
        Velocity::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Add<Velocity> for Position {
    type Output = Position;
    fn add(self, rhs: Velocity) -> Position {
        Position::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Mul<f64> for Velocity {
    type Output = Velocity;
    fn mul(self, k: f64) -> Velocity {
        Velocity::new(self.x * k, self.y * k, self.z * k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Position::new(0.0, 0.0, 0.0);
        let b = Position::new(3.0, 4.0, 12.0);
        assert!((a.distance(&b) - 13.0).abs() < 1e-12);
        assert!((a.horizontal_distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn elevation_angles() {
        let ground = Position::ground(0.0, 0.0);
        let above = Position::new(0.0, 0.0, 100.0);
        assert!((ground.elevation_deg_to(&above) - 90.0).abs() < 1e-9);
        let level = Position::new(100.0, 0.0, 0.0);
        assert!(ground.elevation_deg_to(&level).abs() < 1e-9);
        let diag = Position::new(100.0, 0.0, 100.0);
        assert!((ground.elevation_deg_to(&diag) - 45.0).abs() < 1e-9);
        // Looking down.
        assert!((above.elevation_deg_to(&ground) + 90.0).abs() < 1e-9);
    }

    #[test]
    fn speed_conversions() {
        let v = Velocity::new(3.0, 4.0, 0.0);
        assert!((v.speed() - 5.0).abs() < 1e-12);
        assert!((v.horizontal_kmph() - 18.0).abs() < 1e-12);
    }

    #[test]
    fn vector_arithmetic() {
        let p = Position::new(1.0, 2.0, 3.0);
        let v = Velocity::new(0.5, -1.0, 2.0);
        let q = p + v * 2.0;
        assert_eq!(q, Position::new(2.0, 0.0, 7.0));
        let d = q - p;
        assert_eq!(d, Velocity::new(1.0, -2.0, 4.0));
    }
}
