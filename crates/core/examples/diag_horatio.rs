//! Calibration diagnostic: Fig. 9 before/after-HO latency ratios on a
//! short urban static campaign.
use rpav_core::prelude::*;
use rpav_core::stats;
use rpav_sim::SimDuration;
fn main() {
    let mut before = vec![];
    let mut after = vec![];
    for seed in 0..4 {
        let mut cfg = ExperimentConfig::paper(
            Environment::Urban,
            Operator::P1,
            Mobility::Air,
            CcMode::paper_static(Environment::Urban),
            100 + seed,
            0,
        );
        cfg.hold = SimDuration::from_secs(1);
        let m = Simulation::new(cfg).run();
        let (b, a) = m.ho_latency_ratios();
        before.extend(b);
        after.extend(a);
    }
    println!(
        "before mean {:.1} (n={}), after mean {:.1} (n={})",
        stats::mean(&before),
        before.len(),
        stats::mean(&after),
        after.len()
    );
}
