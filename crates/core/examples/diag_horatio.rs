//! Calibration diagnostic: Fig. 9 before/after-HO latency ratios on a
//! short urban static campaign.
use rpav_core::prelude::*;
use rpav_core::stats;
fn main() {
    let mut before = vec![];
    let mut after = vec![];
    for seed in 0..4 {
        let cfg = ExperimentConfig::builder()
            .environment(Environment::Urban)
            .cc(CcMode::paper_static(Environment::Urban))
            .seed(100 + seed)
            .hold_secs(1)
            .build();
        let m = Simulation::new(cfg).run();
        let (b, a) = m.ho_latency_ratios();
        before.extend(b);
        after.extend(a);
    }
    println!(
        "before mean {:.1} (n={}), after mean {:.1} (n={})",
        stats::mean(&before),
        before.len(),
        stats::mean(&after),
        after.len()
    );
}
