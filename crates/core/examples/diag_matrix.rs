//! Quick matrix: 3 CC × 2 env headline stats, 2 runs each.
use rpav_core::prelude::*;
use rpav_core::summary::HeadlineStats;

fn main() {
    println!("{}", HeadlineStats::header());
    for env in [Environment::Urban, Environment::Rural] {
        for cc in [
            CcMode::paper_static(env),
            CcMode::paper_scream(),
            CcMode::Gcc,
        ] {
            let cfg = ExperimentConfig::paper(env, Operator::P1, Mobility::Air, cc, 0xABCD, 0);
            let campaign = run_campaign(cfg, 2);
            println!("{}", HeadlineStats::from_campaign(&campaign).row());
        }
    }
}
