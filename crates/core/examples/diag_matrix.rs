//! Quick matrix: 3 CC × 2 env headline stats, 2 runs each — one
//! `MatrixSpec` on the campaign engine's thread pool.
use rpav_core::prelude::*;
use rpav_core::summary::HeadlineStats;

fn main() {
    let base = ExperimentConfig::builder()
        .environment(Environment::Urban)
        .cc(CcMode::Gcc)
        .seed(0xABCD)
        .build();
    let spec = MatrixSpec::new(base)
        .environments([Environment::Urban, Environment::Rural])
        .paper_workloads()
        .runs(2);
    let result = CampaignEngine::new().run(&spec);
    println!("{}", HeadlineStats::header());
    for campaign in result.campaigns() {
        println!("{}", HeadlineStats::from_campaign(&campaign).row());
    }
    eprintln!("{}", result.report.summary());
}
