//! Calibration diagnostic: static-25-Mbps urban flight — capacity sag
//! fractions, OWD quantiles, playback compliance.
use rpav_core::prelude::*;

fn main() {
    let cfg = ExperimentConfig::builder()
        .environment(Environment::Urban)
        .cc(CcMode::paper_static(Environment::Urban))
        .seed(0xC0FFEE)
        .hold_secs(1)
        .build();
    let m = Simulation::new(cfg).run();
    let caps: Vec<f64> = m.radio.iter().map(|r| r.capacity_bps / 1e6).collect();
    let below = caps.iter().filter(|c| **c < 25.0).count() as f64 / caps.len() as f64;
    // longest below-25 episode
    let mut longest = 0;
    let mut cur = 0;
    for c in &caps {
        if *c < 25.0 {
            cur += 1;
            longest = longest.max(cur);
        } else {
            cur = 0;
        }
    }
    let owd = m.owd_ms();
    let q = |p: f64| rpav_core::stats::quantile(&owd, p);
    println!(
        "PER={:.4} goodput={:.1}Mbps frac_cap_below25={:.2} longest_ep={}ms",
        m.per(),
        m.goodput_bps() / 1e6,
        below,
        longest * 100
    );
    println!(
        "owd p50={:.0} p90={:.0} p99={:.0} max={:.0}",
        q(0.5),
        q(0.9),
        q(0.99),
        q(1.0)
    );
    println!(
        "playback<300 {:.2}; stalls/min {:.2}; HOs {}",
        m.playback_within(300.0),
        m.stalls_per_minute(),
        m.handovers.len()
    );
    let mut caps_sorted = caps.clone();
    caps_sorted.sort_by(|a, b| a.total_cmp(b));
    println!(
        "cap p5={:.1} p25={:.1} p50={:.1}",
        caps_sorted[caps.len() / 20],
        caps_sorted[caps.len() / 4],
        caps_sorted[caps.len() / 2]
    );
}
