//! Calibration diagnostic: SCReAM pipeline health (set RPAV_DEBUG=1 for a
//! per-second cwnd/queue/target trace).
use rpav_core::prelude::*;

fn main() {
    let cfg = ExperimentConfig::builder()
        .environment(Environment::Urban)
        .cc(CcMode::paper_scream())
        .seed(0xABCD)
        .hold_secs(1)
        .build();
    let m = Simulation::new(cfg).run();
    println!(
        "goodput={:.1}Mbps PER={:.4} stalls/min={:.1}",
        m.goodput_bps() / 1e6,
        m.per(),
        m.stalls_per_minute()
    );
    println!(
        "sender_discarded={} span_skipped={}",
        m.sender_discarded, m.span_skipped
    );
    println!("media sent={} recv={}", m.media_sent, m.media_received);
    let owd = m.owd_ms();
    println!(
        "owd p50={:.0} p90={:.0}",
        rpav_core::stats::quantile(&owd, 0.5),
        rpav_core::stats::quantile(&owd, 0.9)
    );
    let skipped = m.frames.iter().filter(|f| !f.displayed).count();
    println!("frames total={} skipped={}", m.frames.len(), skipped);
}
