//! Headline statistics — the numbers quoted in the paper's running text.

use crate::runner::CampaignResult;
use crate::stats;

/// The in-text statistics for one configuration.
#[derive(Clone, Debug)]
pub struct HeadlineStats {
    /// Configuration label.
    pub label: String,
    /// Mean goodput (Mbps).
    pub goodput_mbps: f64,
    /// Stall events per minute (§4.2.1: 0.11 / 0.89 / 1.37).
    pub stalls_per_minute: f64,
    /// Fraction of playback latency ≤ 300 ms (§4.2.2).
    pub playback_within_300ms: f64,
    /// Fraction of SSIM samples < 0.5 (§4.2.3: 0.37–19.09 %).
    pub ssim_below_half: f64,
    /// Fraction of FPS windows at ≥ 29 FPS.
    pub fps_at_30: f64,
    /// Packet error rate (§4.1: 0.06–0.07 %).
    pub per: f64,
    /// Mean handover frequency (HO/s).
    pub ho_per_second: f64,
    /// Median one-way latency (ms).
    pub owd_median_ms: f64,
    /// 99th-percentile one-way latency (ms).
    pub owd_p99_ms: f64,
}

impl HeadlineStats {
    /// Compute the headline stats of a campaign.
    pub fn from_campaign(c: &CampaignResult) -> Self {
        let playback = c.playback_latency_ms();
        let ssim = c.ssim();
        let fps = c.fps_samples();
        let owd = c.owd_ms();
        HeadlineStats {
            label: c.label.clone(),
            goodput_mbps: stats::mean(
                &c.runs
                    .iter()
                    .map(|r| r.goodput_bps() / 1e6)
                    .collect::<Vec<f64>>(),
            ),
            stalls_per_minute: c.stalls_per_minute(),
            playback_within_300ms: stats::fraction_at_or_below(&playback, 300.0),
            ssim_below_half: stats::fraction_below_strict(&ssim, 0.5),
            fps_at_30: 1.0 - stats::fraction_at_or_below(&fps, 29.0),
            per: c.per(),
            ho_per_second: stats::mean(&c.ho_frequencies()),
            owd_median_ms: if owd.is_empty() {
                f64::NAN
            } else {
                stats::quantile(&owd, 0.5)
            },
            owd_p99_ms: if owd.is_empty() {
                f64::NAN
            } else {
                stats::quantile(&owd, 0.99)
            },
        }
    }

    /// Render one table row.
    pub fn row(&self) -> String {
        format!(
            "{:<24} {:>8.1} {:>10.2} {:>10.1} {:>9.2} {:>8.1} {:>8.3} {:>7.3} {:>8.1} {:>8.1}",
            self.label,
            self.goodput_mbps,
            self.stalls_per_minute,
            self.playback_within_300ms * 100.0,
            self.ssim_below_half * 100.0,
            self.fps_at_30 * 100.0,
            self.per * 100.0,
            self.ho_per_second,
            self.owd_median_ms,
            self.owd_p99_ms,
        )
    }

    /// Table header matching [`HeadlineStats::row`].
    pub fn header() -> String {
        format!(
            "{:<24} {:>8} {:>10} {:>10} {:>9} {:>8} {:>8} {:>7} {:>8} {:>8}",
            "configuration",
            "Mbps",
            "stalls/mn",
            "<300ms %",
            "ssim<.5%",
            "30fps %",
            "PER %",
            "HO/s",
            "owd p50",
            "owd p99",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RunMetrics;
    use rpav_sim::SimDuration;

    #[test]
    fn headline_from_synthetic_campaign() {
        let mut run = RunMetrics {
            duration: SimDuration::from_secs(60),
            media_sent: 10_000,
            media_received: 9_993,
            media_received_bytes: 9_993 * 1_200,
            stalls: 1,
            ..Default::default()
        };
        run.owd = (0..9_993)
            .map(|i| (rpav_sim::SimTime::from_millis(i * 6), 50.0))
            .collect();
        run.frames = (0..1_800)
            .map(|i| crate::metrics::FrameRecord {
                number: i,
                display_at: rpav_sim::SimTime::from_millis(i * 33),
                latency_ms: Some(if i % 10 == 0 { 400.0 } else { 200.0 }),
                ssim: if i % 20 == 0 { 0.4 } else { 0.9 },
                displayed: true,
            })
            .collect();
        let campaign = crate::runner::CampaignResult {
            label: "synthetic".into(),
            runs: vec![run],
        };
        let h = HeadlineStats::from_campaign(&campaign);
        assert!((h.playback_within_300ms - 0.9).abs() < 0.01);
        assert!((h.ssim_below_half - 0.05).abs() < 0.01);
        assert!((h.stalls_per_minute - 1.0).abs() < 1e-9);
        assert!((h.per - 0.0007).abs() < 1e-4);
        assert_eq!(h.owd_median_ms, 50.0);
        // Rows render without panicking and align with the header.
        assert!(!h.row().is_empty());
        assert!(!HeadlineStats::header().is_empty());
    }
}
