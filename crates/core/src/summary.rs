//! Headline statistics — the numbers quoted in the paper's running text.

use crate::runner::CampaignResult;
use crate::stats;

/// The in-text statistics for one configuration.
#[derive(Clone, Debug)]
pub struct HeadlineStats {
    /// Configuration label.
    pub label: String,
    /// Mean goodput (Mbps).
    pub goodput_mbps: f64,
    /// Stall events per minute (§4.2.1: 0.11 / 0.89 / 1.37).
    pub stalls_per_minute: f64,
    /// Fraction of playback latency ≤ 300 ms (§4.2.2).
    pub playback_within_300ms: f64,
    /// Fraction of SSIM samples < 0.5 (§4.2.3: 0.37–19.09 %).
    pub ssim_below_half: f64,
    /// Fraction of FPS windows at ≥ 29 FPS.
    pub fps_at_30: f64,
    /// Packet error rate (§4.1: 0.06–0.07 %).
    pub per: f64,
    /// Mean handover frequency (HO/s).
    pub ho_per_second: f64,
    /// Median one-way latency (ms).
    pub owd_median_ms: f64,
    /// 99th-percentile one-way latency (ms).
    pub owd_p99_ms: f64,
    /// Wire-damage tally pooled over the campaign: packets that failed to
    /// parse plus payloads whose metadata header was rejected.
    pub malformed: u64,
    /// Duplicate arrivals discarded (netem duplication or a lost RTX race).
    pub duplicates: u64,
    /// Packets that arrived after the receiver had given up on them —
    /// reordered beyond the NACK track window or an RTX past its playout
    /// deadline.
    pub late: u64,
    /// NACK feedback messages sent across the campaign.
    pub nacks_sent: u64,
    /// Lost packets recovered by retransmission in time for playout.
    pub rtx_recovered: u64,
    /// Wasted retransmissions: RTX that arrived past the playout deadline.
    pub rtx_wasted: u64,
    /// Pooled repair efficiency: recovered / requested sequence numbers
    /// (0.0 when repair was off — nothing was ever requested).
    pub repair_efficiency: f64,
    /// Failover switch events across the campaign (multipath runs only).
    pub switches: u64,
    /// Packets transmitted a second time on the other leg.
    pub dup_tx: u64,
    /// Mean per-run path dead time (ms, summed over legs).
    pub dead_ms: f64,
    /// FEC parity packets transmitted (bonded runs only).
    pub fec_tx: u64,
    /// Erased packets rebuilt from parity before the NACK path fired.
    pub fec_recovered: u64,
    /// Of those, packets from groups that lost more than one member —
    /// Reed–Solomon repairs beyond any single-parity XOR code.
    pub fec_multi_recovered: u64,
    /// Cross-leg arrivals behind the highest delivered sequence, absorbed
    /// by the reorder-tolerant reassembly window.
    pub reorder_buffered: u64,
    /// Mean fraction of first-flight media carried by leg 0 (0.5 = even
    /// bonded split; 1.0 = everything on the primary).
    pub leg0_share: f64,
}

impl HeadlineStats {
    /// Compute the headline stats of a campaign.
    pub fn from_campaign(c: &CampaignResult) -> Self {
        let playback = c.playback_latency_ms();
        let ssim = c.ssim();
        let fps = c.fps_samples();
        let owd = c.owd_ms();
        HeadlineStats {
            label: c.label.clone(),
            goodput_mbps: stats::mean(
                &c.runs
                    .iter()
                    .map(|r| r.goodput_bps() / 1e6)
                    .collect::<Vec<f64>>(),
            ),
            stalls_per_minute: c.stalls_per_minute(),
            playback_within_300ms: stats::fraction_at_or_below(&playback, 300.0),
            ssim_below_half: stats::fraction_below_strict(&ssim, 0.5),
            fps_at_30: 1.0 - stats::fraction_at_or_below(&fps, 29.0),
            per: c.per(),
            ho_per_second: stats::mean(&c.ho_frequencies()),
            owd_median_ms: if owd.is_empty() {
                f64::NAN
            } else {
                stats::quantile(&owd, 0.5)
            },
            owd_p99_ms: if owd.is_empty() {
                f64::NAN
            } else {
                stats::quantile(&owd, 0.99)
            },
            malformed: c
                .runs
                .iter()
                .map(|r| r.malformed_packets + r.malformed_payloads)
                .sum(),
            duplicates: c.runs.iter().map(|r| r.duplicate_packets).sum(),
            late: c.runs.iter().map(|r| r.late_packets).sum(),
            nacks_sent: c.runs.iter().map(|r| r.nacks_sent).sum(),
            rtx_recovered: c.runs.iter().map(|r| r.rtx_recovered).sum(),
            rtx_wasted: c.runs.iter().map(|r| r.rtx_late).sum(),
            repair_efficiency: {
                let requested: u64 = c.runs.iter().map(|r| r.nack_seqs_requested).sum();
                let recovered: u64 = c.runs.iter().map(|r| r.rtx_recovered).sum();
                if requested == 0 {
                    0.0
                } else {
                    recovered as f64 / requested as f64
                }
            },
            switches: c.runs.iter().map(|r| r.switches.len() as u64).sum(),
            dup_tx: c.runs.iter().map(|r| r.dup_tx_packets).sum(),
            dead_ms: stats::mean(
                &c.runs
                    .iter()
                    .map(|r| r.path_dead_ms())
                    .collect::<Vec<f64>>(),
            ),
            fec_tx: c.runs.iter().map(|r| r.fec_tx).sum(),
            fec_recovered: c.runs.iter().map(|r| r.fec_recovered).sum(),
            fec_multi_recovered: c.runs.iter().map(|r| r.fec_multi_recovered).sum(),
            reorder_buffered: c.runs.iter().map(|r| r.reorder_buffered).sum(),
            leg0_share: stats::mean(
                &c.runs
                    .iter()
                    .map(|r| r.leg_tx_share(0))
                    .collect::<Vec<f64>>(),
            ),
        }
    }

    /// Render one table row.
    pub fn row(&self) -> String {
        format!(
            "{:<24} {:>8.1} {:>10.2} {:>10.1} {:>9.2} {:>8.1} {:>8.3} {:>7.3} {:>8.1} {:>8.1} {:>6} {:>6} {:>6} {:>7} {:>7} {:>6} {:>5.2} {:>4} {:>6} {:>7.0} {:>6} {:>6} {:>6} {:>6} {:>5.2}",
            self.label,
            self.goodput_mbps,
            self.stalls_per_minute,
            self.playback_within_300ms * 100.0,
            self.ssim_below_half * 100.0,
            self.fps_at_30 * 100.0,
            self.per * 100.0,
            self.ho_per_second,
            self.owd_median_ms,
            self.owd_p99_ms,
            self.malformed,
            self.duplicates,
            self.late,
            self.nacks_sent,
            self.rtx_recovered,
            self.rtx_wasted,
            self.repair_efficiency,
            self.switches,
            self.dup_tx,
            self.dead_ms,
            self.fec_tx,
            self.fec_recovered,
            self.fec_multi_recovered,
            self.reorder_buffered,
            self.leg0_share,
        )
    }

    /// Table header matching [`HeadlineStats::row`].
    pub fn header() -> String {
        format!(
            "{:<24} {:>8} {:>10} {:>10} {:>9} {:>8} {:>8} {:>7} {:>8} {:>8} {:>6} {:>6} {:>6} {:>7} {:>7} {:>6} {:>5} {:>4} {:>6} {:>7} {:>6} {:>6} {:>6} {:>6} {:>5}",
            "configuration",
            "Mbps",
            "stalls/mn",
            "<300ms %",
            "ssim<.5%",
            "30fps %",
            "PER %",
            "HO/s",
            "owd p50",
            "owd p99",
            "malf",
            "dup",
            "late",
            "nacks",
            "rec",
            "waste",
            "eff",
            "sw",
            "dupx",
            "deadms",
            "fectx",
            "fecrec",
            "fecmr",
            "reord",
            "leg0",
        )
    }
}

/// Streaming campaign aggregates: everything [`EngineReport`]
/// (`crate::exec::EngineReport`) accumulates about a matrix without
/// retaining per-run [`RunMetrics`]. Counters are exact; distributions live
/// in mergeable [`LogHistogram`] sketches whose memory is flat in the cell
/// count — the structure behind the ROADMAP's "1M-cell matrix with flat
/// memory" target.
///
/// Folding happens in **submission order** (the engine guarantees this),
/// so the f64 sums — and therefore [`to_bytes`](Self::to_bytes) — are
/// bit-identical across job counts and across kill/resume boundaries.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CampaignAggregates {
    /// Cells folded in (completed, whether simulated or cache-served).
    pub cells: u64,
    /// Cells that exhausted their retry budget and were poisoned.
    pub failed: u64,
    /// Media packets sent, summed.
    pub media_sent: u64,
    /// Media packets received, summed.
    pub media_received: u64,
    /// Media payload bytes received, summed.
    pub media_received_bytes: u64,
    /// Stall events, summed.
    pub stalls: u64,
    /// Stalled wall-clock, summed (µs).
    pub stalled_time_us: u64,
    /// NACK feedback messages, summed.
    pub nacks_sent: u64,
    /// RTX-recovered packets, summed.
    pub rtx_recovered: u64,
    /// FEC-recovered packets, summed.
    pub fec_recovered: u64,
    /// SSIM samples observed, summed.
    pub ssim_samples: u64,
    /// SSIM samples < 0.5 (the §4.2.3 quality criterion), summed.
    pub ssim_below_half: u64,
    /// Per-run goodput (Mbit/s) distribution.
    pub goodput_mbps: stats::LogHistogram,
    /// Per-sample one-way delay (ms) distribution.
    pub owd_ms: stats::LogHistogram,
    /// Per-frame playback latency (ms) distribution.
    pub playback_ms: stats::LogHistogram,
}

impl CampaignAggregates {
    /// Fold one completed run in.
    pub fn fold(&mut self, m: &crate::metrics::RunMetrics) {
        self.cells += 1;
        self.media_sent += m.media_sent;
        self.media_received += m.media_received;
        self.media_received_bytes += m.media_received_bytes;
        self.stalls += m.stalls;
        self.stalled_time_us += m.stalled_time.as_micros();
        self.nacks_sent += m.nacks_sent;
        self.rtx_recovered += m.rtx_recovered;
        self.fec_recovered += m.fec_recovered;
        self.goodput_mbps.record(m.goodput_bps() / 1e6);
        for (_, ms) in &m.owd {
            self.owd_ms.record(*ms);
        }
        for f in &m.frames {
            self.ssim_samples += 1;
            if f.ssim < 0.5 {
                self.ssim_below_half += 1;
            }
            if let Some(lat) = f.latency_ms {
                self.playback_ms.record(lat);
            }
        }
    }

    /// Record a poisoned cell (no metrics to fold).
    pub fn fold_failure(&mut self) {
        self.failed += 1;
    }

    /// Merge another aggregate in (shards, resumed segments).
    pub fn merge(&mut self, other: &CampaignAggregates) {
        self.cells += other.cells;
        self.failed += other.failed;
        self.media_sent += other.media_sent;
        self.media_received += other.media_received;
        self.media_received_bytes += other.media_received_bytes;
        self.stalls += other.stalls;
        self.stalled_time_us += other.stalled_time_us;
        self.nacks_sent += other.nacks_sent;
        self.rtx_recovered += other.rtx_recovered;
        self.fec_recovered += other.fec_recovered;
        self.ssim_samples += other.ssim_samples;
        self.ssim_below_half += other.ssim_below_half;
        self.goodput_mbps.merge(&other.goodput_mbps);
        self.owd_ms.merge(&other.owd_ms);
        self.playback_ms.merge(&other.playback_ms);
    }

    /// Bytes retained — flat regardless of how many cells were folded.
    pub fn retained_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.goodput_mbps.retained_bytes()
            + self.owd_ms.retained_bytes()
            + self.playback_ms.retained_bytes()
    }

    /// Canonical byte encoding. Two aggregates encode identically iff every
    /// counter, every histogram bucket, and every f64 sum's bit pattern
    /// agree — the resilience harness compares resumed vs. uninterrupted
    /// campaigns over exactly these bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = crate::codec::ByteWriter::new();
        w.u64(self.cells);
        w.u64(self.failed);
        w.u64(self.media_sent);
        w.u64(self.media_received);
        w.u64(self.media_received_bytes);
        w.u64(self.stalls);
        w.u64(self.stalled_time_us);
        w.u64(self.nacks_sent);
        w.u64(self.rtx_recovered);
        w.u64(self.fec_recovered);
        w.u64(self.ssim_samples);
        w.u64(self.ssim_below_half);
        for h in [&self.goodput_mbps, &self.owd_ms, &self.playback_ms] {
            let buckets: Vec<(usize, u64)> = h.nonzero_buckets().collect();
            w.u64(buckets.len() as u64);
            for (i, c) in buckets {
                w.u64(i as u64);
                w.u64(c);
            }
            w.u64(h.below);
            w.u64(h.non_finite);
            w.u64(h.count);
            w.f64(h.sum);
            w.f64(h.min);
            w.f64(h.max);
        }
        w.into_bytes()
    }

    /// Human summary lines for bench/engine reports.
    pub fn summary(&self) -> String {
        let q = |h: &stats::LogHistogram, q: f64| h.quantile(q).unwrap_or(f64::NAN);
        format!(
            "aggregates: {} cells ({} failed) | goodput p50={:.2} p99={:.2} Mbps | \
             owd p50={:.1} p99={:.1} ms | playback p50={:.1} p99={:.1} ms | \
             stalls={} nacks={} rtx+fec={}",
            self.cells,
            self.failed,
            q(&self.goodput_mbps, 0.5),
            q(&self.goodput_mbps, 0.99),
            q(&self.owd_ms, 0.5),
            q(&self.owd_ms, 0.99),
            q(&self.playback_ms, 0.5),
            q(&self.playback_ms, 0.99),
            self.stalls,
            self.nacks_sent,
            self.rtx_recovered + self.fec_recovered,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RunMetrics;
    use rpav_sim::SimDuration;

    #[test]
    fn headline_from_synthetic_campaign() {
        let mut run = RunMetrics {
            duration: SimDuration::from_secs(60),
            media_sent: 10_000,
            media_received: 9_993,
            media_received_bytes: 9_993 * 1_200,
            stalls: 1,
            ..Default::default()
        };
        run.owd = (0..9_993)
            .map(|i| (rpav_sim::SimTime::from_millis(i * 6), 50.0))
            .collect();
        run.frames = (0..1_800)
            .map(|i| crate::metrics::FrameRecord {
                number: i,
                display_at: rpav_sim::SimTime::from_millis(i * 33),
                latency_ms: Some(if i % 10 == 0 { 400.0 } else { 200.0 }),
                ssim: if i % 20 == 0 { 0.4 } else { 0.9 },
                displayed: true,
            })
            .collect();
        let campaign = crate::runner::CampaignResult {
            label: "synthetic".into(),
            runs: vec![run],
        };
        let h = HeadlineStats::from_campaign(&campaign);
        assert!((h.playback_within_300ms - 0.9).abs() < 0.01);
        assert!((h.ssim_below_half - 0.05).abs() < 0.01);
        assert!((h.stalls_per_minute - 1.0).abs() < 1e-9);
        assert!((h.per - 0.0007).abs() < 1e-4);
        assert_eq!(h.owd_median_ms, 50.0);
        // Rows render without panicking and align with the header.
        assert!(!h.row().is_empty());
        assert!(!HeadlineStats::header().is_empty());
    }

    #[test]
    fn repair_counters_pool_and_serialize() {
        let mk = |scale: u64| RunMetrics {
            duration: SimDuration::from_secs(60),
            media_sent: 1_000,
            media_received: 990,
            malformed_packets: 3 * scale,
            malformed_payloads: scale,
            duplicate_packets: 5 * scale,
            late_packets: 2 * scale,
            nacks_sent: 40 * scale,
            nack_seqs_requested: 100 * scale,
            rtx_recovered: 80 * scale,
            rtx_late: 7 * scale,
            ..Default::default()
        };
        let campaign = crate::runner::CampaignResult {
            label: "repair".into(),
            runs: vec![mk(1), mk(2)],
        };
        let h = HeadlineStats::from_campaign(&campaign);
        // Pooling sums across runs; malformed merges wire and payload
        // damage.
        assert_eq!(h.malformed, 12);
        assert_eq!(h.duplicates, 15);
        assert_eq!(h.late, 6);
        assert_eq!(h.nacks_sent, 120);
        assert_eq!(h.rtx_recovered, 240);
        assert_eq!(h.rtx_wasted, 21);
        assert!((h.repair_efficiency - 0.8).abs() < 1e-9);
        // The serialized row carries every repair column and aligns with
        // the header.
        let row = h.row();
        for needle in ["12", "15", "120", "240", "21", "0.80"] {
            assert!(row.contains(needle), "row missing {needle}: {row}");
        }
        for col in [
            "malf", "dup", "late", "nacks", "rec", "waste", "eff", "sw", "dupx", "deadms", "fectx",
            "fecrec", "fecmr", "reord", "leg0",
        ] {
            assert!(
                HeadlineStats::header().contains(col),
                "header missing {col}"
            );
        }
    }

    #[test]
    fn failover_counters_surface_in_row() {
        let mut run = RunMetrics {
            duration: SimDuration::from_secs(60),
            media_sent: 1_000,
            media_received: 990,
            dup_tx_packets: 77,
            ..Default::default()
        };
        run.switches.push(crate::metrics::SwitchRecord {
            at: rpav_sim::SimTime::from_millis(12_000),
            from_leg: 0,
            to_leg: 1,
            cause: crate::failover::SwitchCause::Starvation,
        });
        run.path_health.push(crate::metrics::PathHealthSummary {
            leg: 0,
            time_dead: SimDuration::from_millis(1_500),
            ..Default::default()
        });
        let campaign = crate::runner::CampaignResult {
            label: "failover".into(),
            runs: vec![run],
        };
        let h = HeadlineStats::from_campaign(&campaign);
        assert_eq!(h.switches, 1);
        assert_eq!(h.dup_tx, 77);
        assert!((h.dead_ms - 1_500.0).abs() < 1e-9);
        let row = h.row();
        for needle in ["77", "1500"] {
            assert!(row.contains(needle), "row missing {needle}: {row}");
        }
    }

    #[test]
    fn bonding_counters_pool_and_surface_in_row() {
        let mk = |leg0_tx: u64, leg1_tx: u64| {
            let mut run = RunMetrics {
                duration: SimDuration::from_secs(60),
                media_sent: 1_000,
                media_received: 990,
                fec_tx: 120,
                fec_recovered: 11,
                fec_multi_recovered: 4,
                reorder_buffered: 33,
                ..Default::default()
            };
            for (leg, tx) in [(0u8, leg0_tx), (1u8, leg1_tx)] {
                run.path_health.push(crate::metrics::PathHealthSummary {
                    leg,
                    tx_packets: tx,
                    ..Default::default()
                });
            }
            run
        };
        let campaign = crate::runner::CampaignResult {
            label: "bonded".into(),
            runs: vec![mk(600, 400), mk(400, 600)],
        };
        let h = HeadlineStats::from_campaign(&campaign);
        assert_eq!(h.fec_tx, 240);
        assert_eq!(h.fec_recovered, 22);
        assert_eq!(h.fec_multi_recovered, 8);
        assert_eq!(h.reorder_buffered, 66);
        assert!((h.leg0_share - 0.5).abs() < 1e-9);
        let row = h.row();
        for needle in ["240", "22", "66", "0.50"] {
            assert!(row.contains(needle), "row missing {needle}: {row}");
        }
    }

    #[test]
    fn aggregates_fold_merge_and_stay_flat() {
        let mk = |seed: u64| {
            let mut m = RunMetrics {
                duration: SimDuration::from_secs(60),
                media_sent: 1_000 + seed,
                media_received: 990 + seed,
                media_received_bytes: (990 + seed) * 1_200,
                stalls: seed % 3,
                nacks_sent: 11 * seed,
                rtx_recovered: 7 * seed,
                fec_recovered: 2 * seed,
                ..Default::default()
            };
            m.owd = (0..50)
                .map(|i| {
                    (
                        rpav_sim::SimTime::from_millis(i * 10),
                        30.0 + (seed as f64) + i as f64,
                    )
                })
                .collect();
            m.frames = (0..30)
                .map(|i| crate::metrics::FrameRecord {
                    number: i,
                    display_at: rpav_sim::SimTime::from_millis(i * 33),
                    latency_ms: Some(150.0 + i as f64),
                    ssim: if i % 10 == 0 { 0.4 } else { 0.9 },
                    displayed: true,
                })
                .collect();
            m
        };
        let runs: Vec<RunMetrics> = (1..=6).map(mk).collect();

        // Folding everything into one equals merging two half-folds.
        let mut whole = CampaignAggregates::default();
        runs.iter().for_each(|m| whole.fold(m));
        let (mut a, mut b) = (CampaignAggregates::default(), CampaignAggregates::default());
        runs[..3].iter().for_each(|m| a.fold(m));
        runs[3..].iter().for_each(|m| b.fold(m));
        a.merge(&b);
        assert_eq!(a.to_bytes(), whole.to_bytes());
        assert_eq!(whole.cells, 6);
        assert_eq!(whole.ssim_samples, 180);
        assert_eq!(whole.ssim_below_half, 18);

        // Memory is flat in the number of folded runs.
        let before = whole.retained_bytes();
        runs.iter().for_each(|m| whole.fold(m));
        assert_eq!(whole.retained_bytes(), before);

        // Failures count without disturbing the distributions.
        let bytes = whole.to_bytes();
        whole.fold_failure();
        assert_eq!(whole.failed, 1);
        assert_ne!(whole.to_bytes(), bytes);
        assert!(!whole.summary().is_empty());
    }

    #[test]
    fn repair_efficiency_zero_when_repair_off() {
        let campaign = crate::runner::CampaignResult {
            label: "off".into(),
            runs: vec![RunMetrics {
                duration: SimDuration::from_secs(60),
                media_sent: 1_000,
                media_received: 990,
                ..Default::default()
            }],
        };
        let h = HeadlineStats::from_campaign(&campaign);
        assert_eq!(h.repair_efficiency, 0.0);
        assert_eq!(h.nacks_sent, 0);
    }
}
