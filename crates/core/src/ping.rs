//! The Fig. 13 workload: ICMP-like echo probes with **no cross traffic**,
//! binned by altitude.
//!
//! A probe leaves the UAV every 100 ms, crosses the uplink, is echoed by
//! the server, and returns over the downlink; the RTT sample is tagged with
//! the UAV's altitude at transmission. The paper bins: 0–20, 21–60, 61–100,
//! 101–140 m.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rpav_lte::{NetworkProfile, RadioModel};
use rpav_netem::{FaultConfig, Packet, PacketKind, Path};
use rpav_sim::{RngSet, SimDuration, SimTime};
use rpav_uav::{profiles as uav_profiles, Position};

use crate::scenario::ExperimentConfig;

/// Altitude bins of Fig. 13 (inclusive upper edges, metres).
pub const ALTITUDE_BINS: [(f64, f64); 4] =
    [(0.0, 20.0), (21.0, 60.0), (61.0, 100.0), (101.0, 140.0)];

/// One RTT observation.
#[derive(Clone, Copy, Debug)]
pub struct RttSample {
    /// Probe transmission time.
    pub at: SimTime,
    /// Altitude at transmission (m).
    pub altitude_m: f64,
    /// Round-trip time (ms).
    pub rtt_ms: f64,
}

/// Run the echo workload for `config`'s flight and return RTT samples.
pub fn run_ping(config: &ExperimentConfig) -> Vec<RttSample> {
    let rngs = RngSet::new(config.seed);
    let profile = NetworkProfile::new(config.environment, config.operator);
    let mut radio = RadioModel::new(&profile, &rngs, config.run_index);
    let plan = uav_profiles::paper_flight(Position::ground(0.0, 0.0), config.hold);

    let mut uplink = Path::new(
        FaultConfig::default(),
        rngs.stream_indexed("ping.ul.fault", config.run_index),
        10e6,
        SimDuration::from_millis(5),
        usize::MAX,
        SimDuration::from_millis(12),
        SimDuration::from_micros(600),
        rngs.stream_indexed("ping.ul.wan", config.run_index),
    );
    let mut downlink = Path::new(
        FaultConfig::default(),
        rngs.stream_indexed("ping.dl.fault", config.run_index),
        150e6,
        SimDuration::from_millis(5),
        usize::MAX,
        SimDuration::from_millis(12),
        SimDuration::from_micros(600),
        rngs.stream_indexed("ping.dl.wan", config.run_index),
    );

    let mut samples = Vec::new();
    let mut t = SimTime::ZERO;
    let end = SimTime::ZERO + plan.duration() + SimDuration::from_secs(2);
    let flight_end = SimTime::ZERO + plan.duration();
    let mut next_radio = SimTime::ZERO;
    let mut next_probe = SimTime::ZERO;
    let mut seq = 0u64;
    // Pending probes keyed implicitly by payload: (send µs, altitude mm).
    while t < end {
        if t >= next_radio {
            next_radio = t + radio.tick();
            let pos = plan.position_at(t);
            let s = radio.step(t, &pos);
            uplink.set_rate_bps(t, s.uplink_capacity_bps.max(50e3));
            downlink.set_rate_bps(t, s.downlink_capacity_bps.max(50e3));
            if let Some(ho) = s.handover {
                uplink.pause_until(t, ho.complete_at);
                downlink.pause_until(t, ho.complete_at);
            }
        }
        if t >= next_probe && t < flight_end {
            next_probe = t + SimDuration::from_millis(100);
            let alt = plan.position_at(t).z;
            let mut payload = BytesMut::with_capacity(64);
            payload.put_u64(t.as_micros());
            payload.put_u64((alt * 1_000.0) as u64);
            payload.resize(56, 0); // ICMP-echo-sized
            seq += 1;
            uplink.enqueue(t, Packet::new(seq, payload.freeze(), PacketKind::Probe, t));
        }
        // Server echo.
        while let Some(p) = uplink.poll(t) {
            seq += 1;
            downlink.enqueue(t, Packet::new(seq, p.payload, PacketKind::Probe, t));
        }
        // Echo back at the UAV.
        while let Some(p) = downlink.poll(t) {
            let mut b: Bytes = p.payload;
            if b.len() < 16 {
                continue;
            }
            let sent_us = b.get_u64();
            let alt_mm = b.get_u64();
            let sent = SimTime::from_micros(sent_us);
            samples.push(RttSample {
                at: sent,
                altitude_m: alt_mm as f64 / 1_000.0,
                rtt_ms: t.saturating_since(sent).as_millis_f64(),
            });
        }
        t += SimDuration::from_millis(1);
    }
    samples
}

/// Split samples into the Fig. 13 altitude bins.
pub fn bin_by_altitude(samples: &[RttSample]) -> Vec<(String, Vec<f64>)> {
    ALTITUDE_BINS
        .iter()
        .map(|(lo, hi)| {
            let label = format!("{:.0}-{:.0} m", lo, hi);
            let values = samples
                .iter()
                .filter(|s| s.altitude_m >= *lo && s.altitude_m <= *hi)
                .map(|s| s.rtt_ms)
                .collect();
            (label, values)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::CcMode;
    use rpav_lte::Environment;

    #[test]
    fn ping_produces_binned_rtts() {
        let cfg = ExperimentConfig::builder()
            .environment(Environment::Urban)
            .cc(CcMode::Gcc)
            .seed(3)
            .hold_secs(1)
            .build();
        let samples = run_ping(&cfg);
        assert!(samples.len() > 1_000, "{} samples", samples.len());
        // Minimum RTT near the structural floor (2×17 ms + serialisation).
        let min = samples.iter().map(|s| s.rtt_ms).fold(f64::MAX, f64::min);
        assert!((30.0..60.0).contains(&min), "min RTT {min} ms");
        let bins = bin_by_altitude(&samples);
        assert_eq!(bins.len(), 4);
        // Every bin of the flight profile is populated.
        for (label, values) in &bins {
            assert!(!values.is_empty(), "empty bin {label}");
        }
    }
}
