//! The end-to-end measurement pipeline: one UAV (or motorbike) node
//! streaming adaptive RTP video over the simulated LTE access + WAN to the
//! remote-pilot server, with CC feedback flowing back.
//!
//! ```text
//!       sender (UAV payload)                 receiver (AWS server)
//! source ─► encoder ─► packetizer ─► CC ──► LTE uplink ─► WAN ──► RTCP recorders
//!    ▲                                │                        ─► jitter buffer
//!    └── target bitrate ◄── feedback ◄┴─ WAN ◄─ LTE downlink ◄── feedback timer
//!                                                 jitter buffer ─► depacketizer
//!                                                   ─► SSIM ─► player ─► metrics
//! ```
//!
//! Everything advances on a 1 ms driver tick; radio state updates every
//! 100 ms (the modem cadence). One [`Simulation::run`] is one measurement
//! run of the campaign.

use std::collections::VecDeque;

use rpav_lte::{NetworkProfile, RadioModel};
use rpav_netem::{FaultScript, Packet, PacketKind, Path, ReorderConfig};
use rpav_rtp::jitter::{JitterBuffer, JitterConfig};
use rpav_rtp::nack::{Arrival, Nack, NackConfig, NackGenerator};
use rpav_rtp::packet::RtpPacket;
use rpav_rtp::packetize::{Depacketizer, Packetizer, ReassembledFrame};
use rpav_rtp::pli::Pli;
use rpav_rtp::rfc8888::{Rfc8888Builder, Rfc8888Packet};
use rpav_rtp::rtx::{RtxConfig, RtxSender};
use rpav_rtp::twcc::{TwccFeedback, TwccRecorder};
use rpav_sim::{RngSet, SimDuration, SimRng, SimTime};
use rpav_uav::{profiles as uav_profiles, FlightPlan, Position};
use rpav_video::player::{DecodedFrame, PlayedFrame};
use rpav_video::{quality, Encoder, EncoderConfig, Player, PlayerConfig, SourceVideo};

use crate::cc::{CcEngine, CCFB_INTERVAL, TWCC_INTERVAL};
use crate::metrics::{FrameRecord, HandoverRecord, RadioTraceRow, RunMetrics};
use crate::paths;
use crate::scenario::{CcMode, ExperimentConfig, Mobility};

/// Driver tick.
const TICK: SimDuration = SimDuration::from_millis(1);
/// Extra time after the plan ends for in-flight media to play out.
const DRAIN: SimDuration = SimDuration::from_secs(3);
/// Minimum spacing between receiver PLIs while the reference chain stays
/// broken (RFC 4585 regulates rapid PLI resends).
const PLI_MIN_INTERVAL: SimDuration = SimDuration::from_millis(250);
/// Receiver-observed delivery gap that counts as an outage and inflates
/// the jitter target (graceful degradation under repeated blackouts).
const OUTAGE_GAP: SimDuration = SimDuration::from_secs(1);
/// Jitter-target multiplier per observed outage, and the level cap.
const JITTER_INFLATE_FACTOR: f64 = 1.5;
const JITTER_MAX_LEVEL: u32 = 3;
/// Clean delivery required before one inflation level decays away.
const JITTER_DECAY_AFTER: SimDuration = SimDuration::from_secs(20);
/// SSRCs on the PLI wire: the receiver reports against the media stream.
const RECEIVER_SSRC: u32 = 0x1;
const MEDIA_SSRC: u32 = 0x2;

/// Round an event deadline up to the 1 ms driver grid the reference loop
/// runs on: the fast scheduler may only stop where the reference stops.
fn align_up_to_tick(t: SimTime) -> SimTime {
    SimTime::from_micros((t.as_micros().saturating_add(999) / 1_000).saturating_mul(1_000))
}

/// Disjoint borrows of the sender-side state [`Simulation::send_media`]
/// needs — callers split these from `self` so the CC state can stay
/// mutably borrowed across the send loop.
struct MediaTx<'a> {
    uplink: &'a mut Path,
    netem_seq: &'a mut u64,
    metrics: &'a mut RunMetrics,
    extra_loss_rng: &'a mut SimRng,
    /// RTX history to record into; `None` when repair is disabled.
    rtx: Option<&'a mut RtxSender>,
}

/// One full measurement run.
pub struct Simulation {
    config: ExperimentConfig,
    plan: FlightPlan,
    radio: RadioModel,
    uplink: Path,
    downlink: Path,
    extra_loss_prob: f64,
    extra_loss_rng: SimRng,
    source: SourceVideo,
    encoder: Encoder,
    packetizer: Packetizer,
    cc: CcEngine,
    pending_frames: VecDeque<rpav_video::EncodedFrame>,
    rtx: RtxSender,
    // Receiver state.
    jitter: JitterBuffer,
    depack: Depacketizer,
    nack_gen: NackGenerator,
    player: Player,
    twcc_rec: TwccRecorder,
    ccfb: Rfc8888Builder,
    ref_intact: bool,
    last_frame_to_player: Option<u64>,
    last_pli: Option<SimTime>,
    last_media_arrival: Option<SimTime>,
    jitter_base_target: SimDuration,
    jitter_level: u32,
    last_jitter_event: SimTime,
    // Bookkeeping.
    next_radio: SimTime,
    next_feedback: SimTime,
    netem_seq: u64,
    outage_windows: Vec<(SimTime, SimTime)>,
    /// Reusable scratch for batch-draining path arrivals each tick.
    arrivals: Vec<Packet>,
    /// Reusable scratch for depacketizer drains each tick.
    drained: Vec<ReassembledFrame>,
    /// Reusable scratch for player display/skip events each tick.
    played: Vec<PlayedFrame>,
    /// Reusable scratch for freshly packetized frames.
    pkt_scratch: Vec<RtpPacket>,
    /// Reusable TWCC feedback value for the receiver's build path.
    twcc_fb: TwccFeedback,
    /// Reusable RFC 8888 feedback value for the receiver's build path.
    ccfb_pkt: Rfc8888Packet,
    metrics: RunMetrics,
}

impl Simulation {
    /// Assemble a run from its configuration.
    pub fn new(config: ExperimentConfig) -> Self {
        let rngs = RngSet::new(config.seed);
        let mut profile = NetworkProfile::new(config.environment, config.operator);
        if let Some(h) = config.hysteresis_override_db {
            profile.handover.hysteresis_db = h;
        }
        if let Some(ttt) = config.ttt_override_ms {
            profile.handover.time_to_trigger = SimDuration::from_millis(ttt);
        }
        let radio = RadioModel::new(&profile, &rngs, config.run_index);
        let plan = match config.mobility {
            Mobility::Air => uav_profiles::paper_flight(Position::ground(0.0, 0.0), config.hold),
            Mobility::Ground => uav_profiles::ground_run(
                Position::ground(0.0, 0.0),
                config.ground_sweeps,
                config.hold,
            ),
        };

        // Both directions: fault injector (bursty PER) → bottleneck → WAN.
        // Radio propagation ≈ 5 ms; WAN ≈ 12.5 ms → lowest RTT ≈ 35 ms
        // (§3.1). Parameters live in [`paths`], shared with multipath.
        let uplink = paths::uplink_path(&rngs, "pipe.ul", config.run_index);
        let downlink = paths::downlink_path(&rngs, "pipe.dl", config.run_index);

        let source = SourceVideo::new(config.seed ^ 0x5EED);
        let cc = CcEngine::new(config.cc, config.watchdog);
        let ack_span = match config.cc {
            CcMode::Scream { ack_span } => ack_span,
            _ => 64,
        };
        let encoder = Encoder::new(EncoderConfig::default(), source, cc.start_bitrate_bps());
        let with_twcc = cc.with_twcc();
        let jitter_target = config
            .jitter_target_override_ms
            .map(SimDuration::from_millis)
            .unwrap_or(JitterConfig::default().target);

        Simulation {
            config,
            plan,
            radio,
            uplink,
            downlink,
            extra_loss_prob: 0.0,
            extra_loss_rng: rngs.stream_indexed("pipe.extraloss", config.run_index),
            source,
            encoder,
            packetizer: Packetizer::new(0x2, with_twcc),
            cc,
            pending_frames: VecDeque::new(),
            rtx: RtxSender::new(RtxConfig::default()),
            jitter: JitterBuffer::new(JitterConfig {
                drop_on_latency: config.drop_on_latency,
                target: jitter_target,
            }),
            depack: Depacketizer::new(),
            nack_gen: NackGenerator::new(NackConfig {
                playout_budget: jitter_target,
                ..Default::default()
            }),
            player: Player::new(PlayerConfig::default()),
            twcc_rec: TwccRecorder::new(),
            twcc_fb: TwccFeedback::empty(),
            ccfb: Rfc8888Builder::new(ack_span),
            ccfb_pkt: Rfc8888Packet::empty(),
            ref_intact: true,
            last_frame_to_player: None,
            last_pli: None,
            last_media_arrival: None,
            jitter_base_target: jitter_target,
            jitter_level: 0,
            last_jitter_event: SimTime::ZERO,
            next_radio: SimTime::ZERO,
            next_feedback: SimTime::ZERO,
            netem_seq: 0,
            arrivals: Vec::new(),
            drained: Vec::new(),
            played: Vec::new(),
            pkt_scratch: Vec::new(),
            outage_windows: Vec::new(),
            metrics: RunMetrics::default(),
        }
    }

    /// Attach a scripted fault campaign to the uplink (media) direction.
    /// The script's RNG derives from the run's seed, so a given
    /// configuration + script is bit-reproducible.
    pub fn with_uplink_script(mut self, script: FaultScript) -> Self {
        let rngs = RngSet::new(self.config.seed);
        // Timed media-direction blackouts become per-outage recovery
        // records in the run's metrics.
        self.outage_windows.extend(script.blackout_windows());
        // Reorder windows retune an exit-side stage that must exist first;
        // attach a transparent one only when the script needs it so runs
        // without reorder clauses stay bit-identical.
        if script.has_reorder() {
            self.uplink.set_reorder(
                ReorderConfig::default(),
                rngs.stream_indexed("pipe.ul.reorder", self.config.run_index),
            );
        }
        self.uplink.set_script(
            script,
            rngs.stream_indexed("pipe.ul.script", self.config.run_index),
        );
        self
    }

    /// Attach a scripted fault campaign to the downlink (feedback)
    /// direction. Feedback-direction blackouts starve the CC but do not
    /// stop media, so they produce no per-outage recovery records.
    pub fn with_downlink_script(mut self, script: FaultScript) -> Self {
        let rngs = RngSet::new(self.config.seed);
        if script.has_reorder() {
            self.downlink.set_reorder(
                ReorderConfig::default(),
                rngs.stream_indexed("pipe.dl.reorder", self.config.run_index),
            );
        }
        self.downlink.set_script(
            script,
            rngs.stream_indexed("pipe.dl.script", self.config.run_index),
        );
        self
    }

    /// Attach the same scripted campaign to both directions — the shape of
    /// a true link blackout (coverage loss kills media and feedback alike).
    pub fn with_link_script(self, script: FaultScript) -> Self {
        let cloned = script.clone();
        self.with_uplink_script(script).with_downlink_script(cloned)
    }

    /// Execute the run to completion and return its metrics.
    ///
    /// Uses the adaptive deadline scheduler unless `RPAV_REFERENCE_TICK=1`
    /// is set, which restores the unconditional 1 ms loop as an oracle.
    pub fn run(self) -> RunMetrics {
        let reference = std::env::var_os("RPAV_REFERENCE_TICK").is_some_and(|v| v != "0");
        self.run_mode(reference)
    }

    /// Execute with the unconditional 1 ms reference loop, regardless of
    /// the environment. The adaptive scheduler must be byte-identical to
    /// this path; `tests/perf_equivalence.rs` holds it to that.
    pub fn run_reference(self) -> RunMetrics {
        self.run_mode(true)
    }

    /// Execute with the adaptive deadline scheduler, regardless of the
    /// environment.
    pub fn run_fast(self) -> RunMetrics {
        self.run_mode(false)
    }

    /// Execute with the adaptive scheduler and also report how many driver
    /// steps the run took — the denominator for the perf harness's ns/tick
    /// figure. Metrics are identical to [`Simulation::run_fast`].
    pub fn run_instrumented(mut self) -> (RunMetrics, u64) {
        let mut steps = 0u64;
        let metrics = self.run_loop(false, &mut steps);
        (metrics, steps)
    }

    fn run_mode(mut self, reference: bool) -> RunMetrics {
        let mut steps = 0u64;
        self.run_loop(reference, &mut steps)
    }

    fn run_loop(&mut self, reference: bool, steps: &mut u64) -> RunMetrics {
        let flight_end = SimTime::ZERO + self.plan.duration();
        let end = flight_end + DRAIN;
        // Largest driver-grid instant strictly before `end`: the last tick
        // the reference loop visits. The fast path must always land on it —
        // per-tick state such as the watchdog's feedback-gap stat takes its
        // final sample there.
        let last_tick = SimTime::from_micros((end.as_micros() - 1) / 1_000 * 1_000);
        let mut t = SimTime::ZERO;
        while t < end {
            *steps += 1;
            self.step(t, flight_end);
            t = if reference {
                t + TICK
            } else {
                let next = self.next_deadline(t, flight_end);
                let mut tn = align_up_to_tick(next).max(t + TICK);
                if tn > last_tick && t < last_tick {
                    tn = last_tick;
                }
                tn
            };
        }
        self.metrics.duration = self.plan.duration();
        let pstats = self.player.stats();
        self.metrics.stalls = pstats.stalls;
        self.metrics.stalled_time = pstats.stalled_time;
        self.metrics.frames_late_discarded = pstats.late_discarded;
        self.metrics.distinct_cells = self.radio.distinct_cells();
        if let Some(ss) = self.cc.scream_stats() {
            self.metrics.sender_discarded = ss.queue_discarded;
            self.metrics.span_skipped = ss.span_skipped;
        }
        if let Some(w) = self.cc.watchdog_stats() {
            self.metrics.watchdog_activations = w.activations;
            self.metrics.watchdog_recoveries = w.recoveries;
            self.metrics.watchdog_last_ramp = w.last_ramp;
        }
        self.metrics.forced_keyframes = self.encoder.forced_keyframes();
        let js = self.jitter.stats();
        self.metrics.duplicate_packets += js.duplicates;
        self.metrics.late_packets += js.dropped_late;
        self.metrics.malformed_payloads = self.depack.malformed_payloads();
        let ns = self.nack_gen.stats();
        self.metrics.nacks_sent = ns.nacks_sent;
        self.metrics.nack_seqs_requested = ns.seqs_requested;
        self.metrics.rtx_recovered = ns.recovered;
        self.metrics.rtx_late = ns.late_recovered;
        self.metrics.nack_abandoned = ns.abandoned;
        let rs = self.rtx.stats();
        self.metrics.rtx_sent = rs.retransmitted;
        self.metrics.rtx_bytes = rs.bytes_retransmitted;
        self.metrics.rtx_budget_exhausted = rs.budget_exhausted;
        self.metrics.rtx_not_in_history = rs.not_in_history;
        self.metrics.script_dropped = self.uplink.script_stats().map(|s| s.dropped()).unwrap_or(0)
            + self
                .downlink
                .script_stats()
                .map(|s| s.dropped())
                .unwrap_or(0);
        let windows = std::mem::take(&mut self.outage_windows);
        self.metrics.record_outages(&windows);
        std::mem::take(&mut self.metrics)
    }

    /// Earliest instant at which [`Simulation::step`] can next do anything
    /// the reference loop would not also skip. Deadlines may be *early*
    /// (a premature visit is a no-op and the driver then walks one tick at
    /// a time until the edge resolves) but must never be late: every state
    /// change the 1 ms loop would observe has to come from a listed source.
    ///
    /// Sources, one per step phase:
    /// - radio cadence (`next_radio`);
    /// - encoder capture grid, while the flight lasts, plus the head of the
    ///   encode-latency queue (`ready_at`);
    /// - CC wakes: pacer token-bucket readiness (with a 1 µs float guard),
    ///   watchdog starvation/backoff edges, SCReAM in-flight expiry;
    /// - link deliveries on both directions plus timed-blackout start edges
    ///   (`next_wake_scripted`: pausing a link is a now-dependent action);
    /// - NACK generator request/abandonment edges, when repair is on;
    /// - the receiver feedback timer;
    /// - jitter-buffer head playout and player display slots (a starved
    ///   player reports `now`, deliberately clamping the driver to per-tick
    ///   stepping while skip-patience logic needs every tick);
    /// - jitter-target decay and PLI-nag edges, while armed.
    fn next_deadline(&self, now: SimTime, flight_end: SimTime) -> SimTime {
        let capture = self.encoder.next_capture();
        let deadlines = [
            Some(self.next_radio),
            (capture < flight_end).then_some(capture),
            self.pending_frames.front().map(|f| f.ready_at),
            self.cc.next_wake(now),
            self.uplink.next_wake_scripted(now),
            self.downlink.next_wake_scripted(now),
            if self.config.repair {
                self.nack_gen.next_wake()
            } else {
                None
            },
            (self.next_feedback != SimTime::MAX).then_some(self.next_feedback),
            self.jitter.next_wake(),
            self.player.next_wake(),
            (self.jitter_level > 0).then_some(self.last_jitter_event + JITTER_DECAY_AFTER),
            (!self.ref_intact).then(|| self.last_pli.map_or(now, |t| t + PLI_MIN_INTERVAL)),
        ];
        // `next_radio` is always present, so the min always exists.
        deadlines
            .into_iter()
            .flatten()
            .min()
            .unwrap_or(self.next_radio)
    }

    fn step(&mut self, now: SimTime, flight_end: SimTime) {
        // 1. Radio tick: re-rate links, register handovers.
        if now >= self.next_radio {
            self.next_radio = now + self.radio.tick();
            let pos = self.plan.position_at(now);
            // Positional script clauses (coverage holes) track the UAV.
            self.uplink.set_position(pos.x, pos.y, pos.z);
            self.downlink.set_position(pos.x, pos.y, pos.z);
            let sample = self.radio.step(now, &pos);
            self.uplink
                .set_rate_bps(now, sample.uplink_capacity_bps.max(50e3));
            self.downlink
                .set_rate_bps(now, sample.downlink_capacity_bps.max(50e3));
            self.uplink.set_extra_delay(sample.retx_delay);
            self.downlink.set_extra_delay(sample.retx_delay);
            if let Some(ho) = sample.handover {
                self.uplink.pause_until(now, ho.complete_at);
                self.downlink.pause_until(now, ho.complete_at);
                self.metrics.handovers.push(HandoverRecord {
                    at: ho.at,
                    het: ho.het(),
                    kind: ho.kind,
                    from: ho.from.0,
                    to: ho.to.0,
                });
            }
            self.extra_loss_prob = sample.extra_loss_prob;
            if std::env::var_os("RPAV_DEBUG").is_some() && now.as_millis() % 1_000 == 0 {
                if let Some(sender) = self.cc.scream_sender() {
                    eprintln!(
                        "t={:>6.1}s target={:>5.1}Mbps cwnd={:>7.0} inflight={:>6} q={:>6} qdel={:>5.1}ms netq={:>5.1}ms disc={} span={} loss_ev={}",
                        now.as_secs_f64(),
                        sender.target_bitrate_bps() / 1e6,
                        sender.cwnd_bytes(),
                        sender.bytes_in_flight(),
                        sender.rtp_queue_bytes(),
                        sender.rtp_queue_delay().as_millis_f64(),
                        sender.network_queue_delay().as_millis_f64(),
                        sender.stats().queue_discarded,
                        sender.stats().span_skipped,
                        sender.stats().loss_events,
                    );
                }
            }
            self.metrics.radio.push(RadioTraceRow {
                t: now,
                altitude_m: pos.z,
                capacity_bps: sample.uplink_capacity_bps,
                rsrp_dbm: sample.rsrp_dbm,
                sinr_db: sample.sinr_db,
                in_handover: sample.in_handover,
            });
        }

        // 2. Encoder: produce frames while the flight lasts.
        if now < flight_end {
            while let Some(frame) = self.encoder.poll(now) {
                self.pending_frames.push_back(frame);
            }
        }
        while self
            .pending_frames
            .front()
            .is_some_and(|f| f.ready_at <= now)
        {
            let Some(frame) = self.pending_frames.pop_front() else {
                break;
            };
            let mut packets = std::mem::take(&mut self.pkt_scratch);
            self.packetizer
                .packetize_into(frame.meta, frame.meta.encode_time, &mut packets);
            self.cc.enqueue_drain(now, &mut packets);
            self.pkt_scratch = packets;
        }

        // 3. Feedback-starvation watchdogs, then CC-gated transmission.
        // The watchdogs run on the driver tick: they are what lets the
        // sender react to a feedback blackout at all, so the encoder target
        // must follow their cap, not just the feedback arrivals.
        let target = self.cc.on_tick(now);
        self.encoder.set_target_bitrate(target);
        while let Some(p) = self.cc.poll_transmit(now) {
            Self::send_media(
                MediaTx {
                    uplink: &mut self.uplink,
                    netem_seq: &mut self.netem_seq,
                    metrics: &mut self.metrics,
                    extra_loss_rng: &mut self.extra_loss_rng,
                    rtx: if self.config.repair {
                        Some(&mut self.rtx)
                    } else {
                        None
                    },
                },
                self.extra_loss_prob,
                now,
                p,
            );
        }

        // 3b. Sender-side repair budget: the RTX token bucket refills at a
        // fraction of whatever the CC currently targets, so repair can
        // never starve fresh media.
        if self.config.repair {
            self.rtx.refill(now, self.cc.target_bps());
        }

        // 4. Uplink arrivals at the server. Corrupted packets are not
        // silently dropped: the damaged bytes go to the hardened parsers,
        // which either reject them (counted as malformed) or survive the
        // flip — exactly what a real receiver without UDP checksums sees.
        let mut arrivals = std::mem::take(&mut self.arrivals);
        self.uplink.drain_due(now, &mut arrivals);
        for pkt in arrivals.drain(..) {
            if pkt.corrupted {
                self.metrics.corrupted_arrivals += 1;
            }
            let rtp = match RtpPacket::parse(pkt.payload.clone()) {
                Ok(rtp) => rtp,
                Err(_) => {
                    self.metrics.malformed_packets += 1;
                    continue;
                }
            };
            let owd_ms = now.saturating_since(pkt.sent_at).as_millis_f64();
            // Classify against the gap tracker before any accounting: a
            // duplicate delivery (network dup, or an RTX racing its
            // reordered original) must not count as received media twice.
            match self.nack_gen.on_packet(now, rtp.sequence) {
                Arrival::Stale => {
                    self.metrics.duplicate_packets += 1;
                    continue;
                }
                Arrival::Late => self.metrics.late_packets += 1,
                Arrival::InOrder | Arrival::Reordered | Arrival::Recovered => {}
            }
            self.nack_gen
                .set_rtt_hint(SimDuration::from_micros((owd_ms * 2_000.0) as u64));
            self.metrics.owd.push((now, owd_ms));
            self.metrics.media_received += 1;
            self.metrics.media_received_bytes += rtp.payload.len() as u64;
            // Graceful degradation: delivery resuming after a long gap
            // means an outage happened — inflate the jitter target so
            // subsequent jitter from the recovering link is absorbed
            // instead of causing skips.
            if let Some(prev) = self.last_media_arrival {
                if now.saturating_since(prev) >= OUTAGE_GAP {
                    if self.jitter_level < JITTER_MAX_LEVEL {
                        self.jitter_level += 1;
                        self.metrics.jitter_inflations += 1;
                        self.apply_jitter_target();
                    }
                    self.last_jitter_event = now;
                }
            }
            self.last_media_arrival = Some(now);
            match self.config.cc {
                CcMode::Gcc => {
                    if let Some(ts) = rtp.transport_seq {
                        self.twcc_rec.on_packet(ts, now);
                    }
                }
                CcMode::Scream { .. } => {
                    self.ccfb.on_packet(rtp.sequence, now);
                }
                CcMode::Static { .. } => {}
            }
            self.jitter.push(now, rtp);
        }
        // Sustained clean delivery lets the inflated jitter target decay
        // back toward its base, one level at a time.
        if self.jitter_level > 0
            && now.saturating_since(self.last_jitter_event) >= JITTER_DECAY_AFTER
        {
            self.jitter_level -= 1;
            self.apply_jitter_target();
            self.last_jitter_event = now;
        }
        // 4b. Receiver-side repair: emit the next debounced NACK batch.
        // The generator abandons anything whose playout deadline a
        // round trip can no longer beat; those losses escalate to the
        // reference-break → PLI path below.
        if self.config.repair {
            if let Some(nack) = self.nack_gen.poll(now) {
                self.netem_seq += 1;
                self.downlink.enqueue(
                    now,
                    Packet::new(self.netem_seq, nack.serialize(), PacketKind::Feedback, now),
                );
            }
        }

        // 5. Receiver feedback timers.
        if now >= self.next_feedback {
            match self.config.cc {
                CcMode::Static { .. } => {
                    self.next_feedback = SimTime::MAX; // no feedback stream
                }
                CcMode::Gcc => {
                    self.next_feedback = now + TWCC_INTERVAL;
                    if self.twcc_rec.build_feedback_into(&mut self.twcc_fb) {
                        let wire = self.twcc_fb.serialize();
                        self.netem_seq += 1;
                        self.downlink.enqueue(
                            now,
                            Packet::new(self.netem_seq, wire, PacketKind::Feedback, now),
                        );
                    }
                }
                CcMode::Scream { .. } => {
                    self.next_feedback = now + CCFB_INTERVAL;
                    if self.ccfb.build_into(now, &mut self.ccfb_pkt) {
                        let wire = self.ccfb_pkt.serialize();
                        self.netem_seq += 1;
                        self.downlink.enqueue(
                            now,
                            Packet::new(self.netem_seq, wire, PacketKind::Feedback, now),
                        );
                    }
                }
            }
        }

        // 6. Feedback arrivals at the sender. PLIs ride the same RTCP
        // stream as the transport feedback and are discriminated by their
        // FMT/PT bytes; they work under every CC mode, including Static.
        self.downlink.drain_due(now, &mut arrivals);
        for pkt in arrivals.drain(..) {
            if pkt.corrupted {
                self.metrics.corrupted_arrivals += 1;
            }
            if Pli::parse(pkt.payload.clone()).is_ok() {
                self.encoder.force_keyframe();
                self.metrics.plis_received += 1;
                continue;
            }
            if let Ok(nack) = Nack::parse(pkt.payload.clone()) {
                // Retransmit verbatim from the history ring, within the
                // repair budget. RTX rides the media direction but is not
                // fresh media: it is neither re-counted as sent nor given
                // a transport-wide sequence, so CC feedback ignores it.
                if self.config.repair {
                    for p in self.rtx.on_nack(&nack) {
                        self.netem_seq += 1;
                        let wire = p.serialize();
                        self.uplink.enqueue(
                            now,
                            Packet::new(self.netem_seq, wire, PacketKind::Media, now),
                        );
                    }
                }
                continue;
            }
            if self.cc.on_feedback(pkt.payload.clone(), now) {
                self.encoder.set_target_bitrate(self.cc.target_bps());
            } else {
                self.metrics.malformed_packets += 1;
            }
        }

        // 7. Jitter buffer → depacketizer → SSIM → player.
        while let Some((playout, rtp)) = self.jitter.pop_due(now) {
            self.depack.push(&rtp, playout);
        }
        if let Some(highest) = self.depack.highest_frame() {
            let flush_before = highest.saturating_sub(2);
            let mut drained = std::mem::take(&mut self.drained);
            self.depack.drain_into(flush_before, &mut drained);
            for frame in drained.drain(..) {
                let n = frame.meta.frame_number;
                // A gap in delivered frame numbers means a frame vanished
                // entirely: the decoder's reference chain is broken.
                if let Some(last) = self.last_frame_to_player {
                    if n > last + 1 {
                        self.ref_intact = false;
                    }
                }
                self.last_frame_to_player = Some(n);
                let complete = frame.is_complete();
                let ssim = quality::frame_ssim(
                    &self.source,
                    n,
                    frame.meta.frame_bytes,
                    frame.received_fraction(),
                    self.ref_intact,
                );
                // Reference recovers at the next intact keyframe.
                if complete && frame.meta.keyframe {
                    self.ref_intact = true;
                } else if !complete {
                    self.ref_intact = false;
                }
                self.player.push(DecodedFrame {
                    frame_number: n,
                    encode_time: frame.meta.encode_time,
                    ssim,
                });
            }
            self.drained = drained;
        }
        let mut played = std::mem::take(&mut self.played);
        self.player.poll_into(now, &mut played);
        for ev in played.drain(..) {
            self.metrics.frames.push(FrameRecord {
                number: ev.frame_number,
                display_at: ev.display_time,
                latency_ms: ev.latency.map(|l| l.as_millis_f64()),
                ssim: ev.ssim,
                displayed: ev.displayed,
            });
        }
        self.played = played;

        // 8. Keyframe recovery: while the decoder's reference chain stays
        // broken, nag the sender with rate-limited PLIs until an intact IDR
        // arrives. The PLI travels the feedback direction, so a true link
        // blackout kills it too — recovery then starts when the link does.
        let pli_due = match self.last_pli {
            Some(t) => now.saturating_since(t) >= PLI_MIN_INTERVAL,
            None => true,
        };
        if !self.ref_intact && pli_due {
            let pli = Pli {
                sender_ssrc: RECEIVER_SSRC,
                media_ssrc: MEDIA_SSRC,
            };
            self.netem_seq += 1;
            self.downlink.enqueue(
                now,
                Packet::new(self.netem_seq, pli.serialize(), PacketKind::Feedback, now),
            );
            self.metrics.plis_sent += 1;
            self.last_pli = Some(now);
        }
        // Hand the (now empty) scratch buffer back for the next tick.
        self.arrivals = arrivals;
    }

    /// Re-derive the jitter target from the base and the inflation level.
    /// The NACK generator's playout budget tracks it: an inflated buffer
    /// buys retransmissions more time to make their deadline.
    fn apply_jitter_target(&mut self) {
        let factor = JITTER_INFLATE_FACTOR.powi(self.jitter_level as i32);
        let us = self.jitter_base_target.as_millis_f64() * factor * 1_000.0;
        let target = SimDuration::from_micros(us as u64);
        self.jitter.set_target(target);
        self.nack_gen.set_playout_budget(target);
    }

    /// Offer one media packet to the uplink, applying the altitude loss.
    /// With repair enabled the packet enters the RTX history ring *before*
    /// the loss draw — retransmission exists precisely for packets the
    /// network ate.
    fn send_media(tx: MediaTx<'_>, extra_loss_prob: f64, now: SimTime, rtp: RtpPacket) {
        tx.metrics.media_sent += 1;
        if let Some(rtx) = tx.rtx {
            rtx.record(&rtp);
        }
        if tx.extra_loss_rng.chance(extra_loss_prob) {
            return; // high-altitude loss event (§4.2.1)
        }
        *tx.netem_seq += 1;
        let wire = rtp.serialize();
        tx.uplink.enqueue(
            now,
            Packet::new(*tx.netem_seq, wire, PacketKind::Media, now),
        );
    }

    /// Access the configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpav_lte::Environment;

    fn quick(cc: CcMode, env: Environment, mobility: Mobility) -> RunMetrics {
        // Shorter holds to keep unit-test runtime low.
        let cfg = ExperimentConfig::builder()
            .environment(env)
            .mobility(mobility)
            .cc(cc)
            .seed(0xC0FFEE)
            .hold_secs(1)
            .ground_sweeps(1)
            .build();
        Simulation::new(cfg).run()
    }

    #[test]
    fn static_urban_flight_delivers_high_quality_video() {
        let m = quick(
            CcMode::paper_static(Environment::Urban),
            Environment::Urban,
            Mobility::Air,
        );
        // Goodput close to the 25 Mbps static rate.
        assert!(
            m.goodput_bps() > 15e6,
            "goodput {:.1} Mbps",
            m.goodput_bps() / 1e6
        );
        // Loss is tiny (bufferbloat, not drops).
        assert!(m.per() < 0.02, "PER {}", m.per());
        // Playback happened, mostly at high SSIM.
        assert!(m.frames.len() > 1_000, "{} frames", m.frames.len());
        let ssim = m.ssim_samples();
        let good = ssim.iter().filter(|s| **s > 0.8).count() as f64 / ssim.len() as f64;
        assert!(good > 0.7, "only {good:.2} of frames above 0.8 SSIM");
    }

    #[test]
    fn gcc_adapts_in_rural() {
        let m = quick(CcMode::Gcc, Environment::Rural, Mobility::Air);
        // GCC should find a rate in the rural capacity neighbourhood
        // (≈8–12 Mbps) — well above its 2 Mbps start, well below 25.
        let g = m.goodput_bps();
        assert!((3e6..15e6).contains(&g), "goodput {:.1} Mbps", g / 1e6);
        assert!(m.per() < 0.05);
        // One-way latency mostly double-digit ms.
        let owd = m.owd_ms();
        let median = crate::stats::quantile(&owd, 0.5);
        assert!((15.0..150.0).contains(&median), "median OWD {median} ms");
    }

    #[test]
    fn scream_runs_and_discards_on_congestion() {
        let m = quick(CcMode::paper_scream(), Environment::Rural, Mobility::Air);
        let g = m.goodput_bps();
        assert!((2e6..16e6).contains(&g), "goodput {:.1} Mbps", g / 1e6);
        assert!(m.frames.len() > 1_000);
    }

    #[test]
    fn playback_latency_mostly_within_threshold() {
        let m = quick(
            CcMode::paper_static(Environment::Urban),
            Environment::Urban,
            Mobility::Air,
        );
        let frac = m.playback_within(300.0);
        assert!(
            frac > 0.5,
            "only {frac:.2} of playback below 300 ms (expected well above half)"
        );
        // And latencies are ≥ the structural floor (≈ one-way + jitter
        // buffer ≈ 170 ms at minimum... allow decoder slack).
        let lat = m.playback_latency_ms();
        let p5 = crate::stats::quantile(&lat, 0.05);
        assert!(p5 > 100.0, "p5 playback latency {p5} ms is implausibly low");
    }

    #[test]
    fn determinism_same_seed_same_metrics() {
        let run = || quick(CcMode::Gcc, Environment::Rural, Mobility::Air);
        let a = run();
        let b = run();
        assert_eq!(a.media_sent, b.media_sent);
        assert_eq!(a.media_received, b.media_received);
        assert_eq!(a.handovers.len(), b.handovers.len());
        assert_eq!(a.frames.len(), b.frames.len());
    }

    #[test]
    fn ground_run_executes() {
        let m = quick(
            CcMode::paper_static(Environment::Urban),
            Environment::Urban,
            Mobility::Ground,
        );
        assert!(m.media_sent > 0);
        assert!(m.frames.len() > 100);
    }
}
