//! The end-to-end measurement pipeline: one UAV (or motorbike) node
//! streaming adaptive RTP video over the simulated LTE access + WAN to the
//! remote-pilot server, with CC feedback flowing back.
//!
//! ```text
//!       sender (UAV payload)                 receiver (AWS server)
//! source ─► encoder ─► packetizer ─► CC ──► LTE uplink ─► WAN ──► RTCP recorders
//!    ▲                                │                        ─► jitter buffer
//!    └── target bitrate ◄── feedback ◄┴─ WAN ◄─ LTE downlink ◄── feedback timer
//!                                                 jitter buffer ─► depacketizer
//!                                                   ─► SSIM ─► player ─► metrics
//! ```
//!
//! Everything advances on a 1 ms driver tick; radio state updates every
//! 100 ms (the modem cadence). One [`Simulation::run`] is one measurement
//! run of the campaign.

use std::collections::VecDeque;

use rpav_gcc::{GccConfig, SendSideBwe};
use rpav_lte::{NetworkProfile, RadioModel};
use rpav_netem::{FaultConfig, GilbertElliott, Packet, PacketKind, Path};
use rpav_rtp::jitter::{JitterBuffer, JitterConfig};
use rpav_rtp::packet::RtpPacket;
use rpav_rtp::packetize::{Depacketizer, Packetizer};
use rpav_rtp::rfc8888::{Rfc8888Builder, Rfc8888Packet};
use rpav_rtp::twcc::{TwccFeedback, TwccRecorder};
use rpav_scream::{ScreamConfig, ScreamSender};
use rpav_sim::{RngSet, SimDuration, SimRng, SimTime};
use rpav_uav::{profiles as uav_profiles, FlightPlan, Position};
use rpav_video::player::DecodedFrame;
use rpav_video::{quality, Encoder, EncoderConfig, Player, PlayerConfig, SourceVideo};

use crate::metrics::{FrameRecord, HandoverRecord, RadioTraceRow, RunMetrics};
use crate::scenario::{CcMode, ExperimentConfig, Mobility};

/// Driver tick.
const TICK: SimDuration = SimDuration::from_millis(1);
/// TWCC feedback interval (GCC).
const TWCC_INTERVAL: SimDuration = SimDuration::from_millis(50);
/// RFC 8888 feedback interval (SCReAM library default, §4.2.1: 10 ms).
const CCFB_INTERVAL: SimDuration = SimDuration::from_millis(10);
/// Extra time after the plan ends for in-flight media to play out.
const DRAIN: SimDuration = SimDuration::from_secs(3);
/// eNodeB uplink buffer: deep enough that congestion becomes delay, not
/// loss (bufferbloat, §4.1).
const UPLINK_QUEUE_BYTES: usize = 6_000_000;
/// Baseline bursty loss process tuned to the paper's measured PER of
/// 0.06–0.07 % with consecutive drops (§4.1): rare events (≈0.2 /s at
/// 25 Mbps), ≈8 packets lost per event.
fn baseline_loss() -> GilbertElliott {
    GilbertElliott::new(0.000_08, 0.12, 0.0, 0.8)
}

enum CcState {
    Static,
    Gcc {
        bwe: SendSideBwe,
        queue: VecDeque<RtpPacket>,
        budget_bytes: f64,
        last_refill: SimTime,
    },
    Scream {
        sender: ScreamSender,
    },
}

/// One full measurement run.
pub struct Simulation {
    config: ExperimentConfig,
    plan: FlightPlan,
    radio: RadioModel,
    uplink: Path,
    downlink: Path,
    extra_loss_prob: f64,
    extra_loss_rng: SimRng,
    source: SourceVideo,
    encoder: Encoder,
    packetizer: Packetizer,
    cc: CcState,
    pending_frames: VecDeque<rpav_video::EncodedFrame>,
    // Receiver state.
    jitter: JitterBuffer,
    depack: Depacketizer,
    player: Player,
    twcc_rec: TwccRecorder,
    ccfb: Rfc8888Builder,
    ref_intact: bool,
    last_frame_to_player: Option<u64>,
    // Bookkeeping.
    next_radio: SimTime,
    next_feedback: SimTime,
    netem_seq: u64,
    metrics: RunMetrics,
}

impl Simulation {
    /// Assemble a run from its configuration.
    pub fn new(config: ExperimentConfig) -> Self {
        let rngs = RngSet::new(config.seed);
        let mut profile = NetworkProfile::new(config.environment, config.operator);
        if let Some(h) = config.hysteresis_override_db {
            profile.handover.hysteresis_db = h;
        }
        if let Some(ttt) = config.ttt_override_ms {
            profile.handover.time_to_trigger = SimDuration::from_millis(ttt);
        }
        let radio = RadioModel::new(&profile, &rngs, config.run_index);
        let plan = match config.mobility {
            Mobility::Air => uav_profiles::paper_flight(Position::ground(0.0, 0.0), config.hold),
            Mobility::Ground => uav_profiles::ground_run(
                Position::ground(0.0, 0.0),
                config.ground_sweeps,
                config.hold,
            ),
        };

        // Both directions: fault injector (bursty PER) → bottleneck → WAN.
        // Radio propagation ≈ 5 ms; WAN ≈ 12.5 ms → lowest RTT ≈ 35 ms
        // (§3.1).
        let uplink = Path::new(
            FaultConfig {
                burst: baseline_loss(),
                ..Default::default()
            },
            rngs.stream_indexed("pipe.ul.fault", config.run_index),
            10e6, // re-rated on the first radio tick
            SimDuration::from_millis(5),
            UPLINK_QUEUE_BYTES,
            SimDuration::from_millis(12),
            SimDuration::from_micros(600),
            rngs.stream_indexed("pipe.ul.wan", config.run_index),
        );
        let downlink = Path::new(
            FaultConfig {
                burst: baseline_loss(),
                ..Default::default()
            },
            rngs.stream_indexed("pipe.dl.fault", config.run_index),
            150e6,
            SimDuration::from_millis(5),
            UPLINK_QUEUE_BYTES,
            SimDuration::from_millis(12),
            SimDuration::from_micros(600),
            rngs.stream_indexed("pipe.dl.wan", config.run_index),
        );

        let source = SourceVideo::new(config.seed ^ 0x5EED);
        let (start_bitrate, with_twcc, cc) = match config.cc {
            CcMode::Static { bitrate_bps } => (bitrate_bps, false, CcState::Static),
            CcMode::Gcc => (
                2e6,
                true,
                CcState::Gcc {
                    bwe: SendSideBwe::new(GccConfig::default()),
                    queue: VecDeque::new(),
                    budget_bytes: 0.0,
                    last_refill: SimTime::ZERO,
                },
            ),
            CcMode::Scream { .. } => (
                2e6,
                false,
                CcState::Scream {
                    sender: ScreamSender::new(ScreamConfig::default()),
                },
            ),
        };
        let ack_span = match config.cc {
            CcMode::Scream { ack_span } => ack_span,
            _ => 64,
        };
        let encoder = Encoder::new(EncoderConfig::default(), source, start_bitrate);

        Simulation {
            config,
            plan,
            radio,
            uplink,
            downlink,
            extra_loss_prob: 0.0,
            extra_loss_rng: rngs.stream_indexed("pipe.extraloss", config.run_index),
            source,
            encoder,
            packetizer: Packetizer::new(0x2, with_twcc),
            cc,
            pending_frames: VecDeque::new(),
            jitter: JitterBuffer::new(JitterConfig {
                drop_on_latency: config.drop_on_latency,
                target: config
                    .jitter_target_override_ms
                    .map(SimDuration::from_millis)
                    .unwrap_or(JitterConfig::default().target),
            }),
            depack: Depacketizer::new(),
            player: Player::new(PlayerConfig::default()),
            twcc_rec: TwccRecorder::new(),
            ccfb: Rfc8888Builder::new(ack_span),
            ref_intact: true,
            last_frame_to_player: None,
            next_radio: SimTime::ZERO,
            next_feedback: SimTime::ZERO,
            netem_seq: 0,
            metrics: RunMetrics::default(),
        }
    }

    /// Execute the run to completion and return its metrics.
    pub fn run(mut self) -> RunMetrics {
        let flight_end = SimTime::ZERO + self.plan.duration();
        let end = flight_end + DRAIN;
        let mut t = SimTime::ZERO;
        while t < end {
            self.step(t, flight_end);
            t += TICK;
        }
        self.metrics.duration = self.plan.duration();
        let pstats = self.player.stats();
        self.metrics.stalls = pstats.stalls;
        self.metrics.distinct_cells = self.radio.distinct_cells();
        if let CcState::Scream { sender } = &self.cc {
            self.metrics.sender_discarded = sender.stats().queue_discarded;
            self.metrics.span_skipped = sender.stats().span_skipped;
        }
        self.metrics
    }

    fn step(&mut self, now: SimTime, flight_end: SimTime) {
        // 1. Radio tick: re-rate links, register handovers.
        if now >= self.next_radio {
            self.next_radio = now + self.radio.tick();
            let pos = self.plan.position_at(now);
            let sample = self.radio.step(now, &pos);
            self.uplink
                .set_rate_bps(now, sample.uplink_capacity_bps.max(50e3));
            self.downlink
                .set_rate_bps(now, sample.downlink_capacity_bps.max(50e3));
            self.uplink.set_extra_delay(sample.retx_delay);
            self.downlink.set_extra_delay(sample.retx_delay);
            if let Some(ho) = sample.handover {
                self.uplink.pause_until(now, ho.complete_at);
                self.downlink.pause_until(now, ho.complete_at);
                self.metrics.handovers.push(HandoverRecord {
                    at: ho.at,
                    het: ho.het(),
                    kind: ho.kind,
                    from: ho.from.0,
                    to: ho.to.0,
                });
            }
            self.extra_loss_prob = sample.extra_loss_prob;
            if std::env::var_os("RPAV_DEBUG").is_some() && now.as_millis() % 1_000 == 0 {
                if let CcState::Scream { sender } = &self.cc {
                    eprintln!(
                        "t={:>6.1}s target={:>5.1}Mbps cwnd={:>7.0} inflight={:>6} q={:>6} qdel={:>5.1}ms netq={:>5.1}ms disc={} span={} loss_ev={}",
                        now.as_secs_f64(),
                        sender.target_bitrate_bps() / 1e6,
                        sender.cwnd_bytes(),
                        sender.bytes_in_flight(),
                        sender.rtp_queue_bytes(),
                        sender.rtp_queue_delay().as_millis_f64(),
                        sender.network_queue_delay().as_millis_f64(),
                        sender.stats().queue_discarded,
                        sender.stats().span_skipped,
                        sender.stats().loss_events,
                    );
                }
            }
            self.metrics.radio.push(RadioTraceRow {
                t: now,
                altitude_m: pos.z,
                capacity_bps: sample.uplink_capacity_bps,
                rsrp_dbm: sample.rsrp_dbm,
                sinr_db: sample.sinr_db,
                in_handover: sample.in_handover,
            });
        }

        // 2. Encoder: produce frames while the flight lasts.
        if now < flight_end {
            while let Some(frame) = self.encoder.poll(now) {
                self.pending_frames.push_back(frame);
            }
        }
        while let Some(front) = self.pending_frames.front() {
            if front.ready_at > now {
                break;
            }
            let frame = self.pending_frames.pop_front().unwrap();
            let packets = self
                .packetizer
                .packetize(frame.meta, frame.meta.encode_time);
            match &mut self.cc {
                CcState::Static => {
                    for p in packets {
                        Self::send_media(
                            &mut self.uplink,
                            &mut self.netem_seq,
                            &mut self.metrics,
                            &mut self.extra_loss_rng,
                            self.extra_loss_prob,
                            None,
                            now,
                            p,
                        );
                    }
                }
                CcState::Gcc { queue, .. } => queue.extend(packets),
                CcState::Scream { sender } => sender.enqueue(now, packets),
            }
        }

        // 3. CC-gated transmission.
        match &mut self.cc {
            CcState::Static => {}
            CcState::Gcc {
                bwe,
                queue,
                budget_bytes,
                last_refill,
            } => {
                // Token-bucket pacer at 1.5× the target rate.
                let dt = now.saturating_since(*last_refill).as_secs_f64();
                *last_refill = now;
                let rate = bwe.target_bitrate_bps() * 1.5;
                *budget_bytes = (*budget_bytes + rate * dt / 8.0).min(60_000.0);
                while let Some(front) = queue.front() {
                    let size = front.wire_size();
                    if *budget_bytes < size as f64 {
                        break;
                    }
                    *budget_bytes -= size as f64;
                    let p = queue.pop_front().unwrap();
                    if let Some(ts) = p.transport_seq {
                        bwe.on_packet_sent(ts, now, p.wire_size());
                    }
                    Self::send_media(
                        &mut self.uplink,
                        &mut self.netem_seq,
                        &mut self.metrics,
                        &mut self.extra_loss_rng,
                        self.extra_loss_prob,
                        None,
                        now,
                        p,
                    );
                }
            }
            CcState::Scream { sender } => {
                while let Some(p) = sender.poll_transmit(now) {
                    Self::send_media(
                        &mut self.uplink,
                        &mut self.netem_seq,
                        &mut self.metrics,
                        &mut self.extra_loss_rng,
                        self.extra_loss_prob,
                        None,
                        now,
                        p,
                    );
                }
            }
        }

        // 4. Uplink arrivals at the server.
        while let Some(pkt) = self.uplink.poll(now) {
            if pkt.corrupted {
                continue; // checksum failure == loss
            }
            let Some(rtp) = RtpPacket::parse(pkt.payload.clone()) else {
                continue;
            };
            let owd_ms = now.saturating_since(pkt.sent_at).as_millis_f64();
            self.metrics.owd.push((now, owd_ms));
            self.metrics.media_received += 1;
            self.metrics.media_received_bytes += rtp.payload.len() as u64;
            match &self.cc {
                CcState::Gcc { .. } => {
                    if let Some(ts) = rtp.transport_seq {
                        self.twcc_rec.on_packet(ts, now);
                    }
                }
                CcState::Scream { .. } => {
                    self.ccfb.on_packet(rtp.sequence, now);
                }
                CcState::Static => {}
            }
            self.jitter.push(now, rtp);
        }

        // 5. Receiver feedback timers.
        if now >= self.next_feedback {
            match &self.cc {
                CcState::Static => {
                    self.next_feedback = SimTime::MAX; // no feedback stream
                }
                CcState::Gcc { .. } => {
                    self.next_feedback = now + TWCC_INTERVAL;
                    if let Some(fb) = self.twcc_rec.build_feedback() {
                        let wire = fb.serialize();
                        self.netem_seq += 1;
                        self.downlink.enqueue(
                            now,
                            Packet::new(self.netem_seq, wire, PacketKind::Feedback, now),
                        );
                    }
                }
                CcState::Scream { .. } => {
                    self.next_feedback = now + CCFB_INTERVAL;
                    if let Some(fb) = self.ccfb.build(now) {
                        let wire = fb.serialize();
                        self.netem_seq += 1;
                        self.downlink.enqueue(
                            now,
                            Packet::new(self.netem_seq, wire, PacketKind::Feedback, now),
                        );
                    }
                }
            }
        }

        // 6. Feedback arrivals at the sender.
        while let Some(pkt) = self.downlink.poll(now) {
            if pkt.corrupted {
                continue;
            }
            match &mut self.cc {
                CcState::Static => {}
                CcState::Gcc { bwe, .. } => {
                    if let Some(fb) = TwccFeedback::parse(pkt.payload.clone()) {
                        bwe.on_feedback(&fb, now);
                        self.encoder.set_target_bitrate(bwe.target_bitrate_bps());
                    }
                }
                CcState::Scream { sender } => {
                    if let Some(fb) = Rfc8888Packet::parse(pkt.payload.clone()) {
                        sender.on_feedback(&fb, now);
                        self.encoder.set_target_bitrate(sender.target_bitrate_bps());
                    }
                }
            }
        }

        // 7. Jitter buffer → depacketizer → SSIM → player.
        while let Some((playout, rtp)) = self.jitter.pop_due(now) {
            self.depack.push(&rtp, playout);
        }
        if let Some(highest) = self.depack.highest_frame() {
            let flush_before = highest.saturating_sub(2);
            for frame in self.depack.drain(flush_before) {
                let n = frame.meta.frame_number;
                // A gap in delivered frame numbers means a frame vanished
                // entirely: the decoder's reference chain is broken.
                if let Some(last) = self.last_frame_to_player {
                    if n > last + 1 {
                        self.ref_intact = false;
                    }
                }
                self.last_frame_to_player = Some(n);
                let complete = frame.is_complete();
                let ssim = quality::frame_ssim(
                    &self.source,
                    n,
                    frame.meta.frame_bytes,
                    frame.received_fraction(),
                    self.ref_intact,
                );
                // Reference recovers at the next intact keyframe.
                if complete && frame.meta.keyframe {
                    self.ref_intact = true;
                } else if !complete {
                    self.ref_intact = false;
                }
                self.player.push(DecodedFrame {
                    frame_number: n,
                    encode_time: frame.meta.encode_time,
                    ssim,
                });
            }
        }
        for ev in self.player.poll(now) {
            self.metrics.frames.push(FrameRecord {
                number: ev.frame_number,
                display_at: ev.display_time,
                latency_ms: ev.latency.map(|l| l.as_millis_f64()),
                ssim: ev.ssim,
                displayed: ev.displayed,
            });
        }
    }

    /// Offer one media packet to the uplink, applying the altitude loss.
    #[allow(clippy::too_many_arguments)]
    fn send_media(
        uplink: &mut Path,
        netem_seq: &mut u64,
        metrics: &mut RunMetrics,
        extra_loss_rng: &mut SimRng,
        extra_loss_prob: f64,
        _unused: Option<()>,
        now: SimTime,
        rtp: RtpPacket,
    ) {
        metrics.media_sent += 1;
        if extra_loss_rng.chance(extra_loss_prob) {
            return; // high-altitude loss event (§4.2.1)
        }
        *netem_seq += 1;
        let wire = rtp.serialize();
        uplink.enqueue(now, Packet::new(*netem_seq, wire, PacketKind::Media, now));
    }

    /// Access the configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpav_lte::{Environment, Operator};

    fn quick(cc: CcMode, env: Environment, mobility: Mobility) -> RunMetrics {
        let mut cfg = ExperimentConfig::paper(env, Operator::P1, mobility, cc, 0xC0FFEE, 0);
        // Shorter holds to keep unit-test runtime low.
        cfg.hold = SimDuration::from_secs(1);
        cfg.ground_sweeps = 1;
        Simulation::new(cfg).run()
    }

    #[test]
    fn static_urban_flight_delivers_high_quality_video() {
        let m = quick(
            CcMode::paper_static(Environment::Urban),
            Environment::Urban,
            Mobility::Air,
        );
        // Goodput close to the 25 Mbps static rate.
        assert!(
            m.goodput_bps() > 15e6,
            "goodput {:.1} Mbps",
            m.goodput_bps() / 1e6
        );
        // Loss is tiny (bufferbloat, not drops).
        assert!(m.per() < 0.02, "PER {}", m.per());
        // Playback happened, mostly at high SSIM.
        assert!(m.frames.len() > 1_000, "{} frames", m.frames.len());
        let ssim = m.ssim_samples();
        let good = ssim.iter().filter(|s| **s > 0.8).count() as f64 / ssim.len() as f64;
        assert!(good > 0.7, "only {good:.2} of frames above 0.8 SSIM");
    }

    #[test]
    fn gcc_adapts_in_rural() {
        let m = quick(CcMode::Gcc, Environment::Rural, Mobility::Air);
        // GCC should find a rate in the rural capacity neighbourhood
        // (≈8–12 Mbps) — well above its 2 Mbps start, well below 25.
        let g = m.goodput_bps();
        assert!((3e6..15e6).contains(&g), "goodput {:.1} Mbps", g / 1e6);
        assert!(m.per() < 0.05);
        // One-way latency mostly double-digit ms.
        let owd = m.owd_ms();
        let median = crate::stats::quantile(&owd, 0.5);
        assert!((15.0..150.0).contains(&median), "median OWD {median} ms");
    }

    #[test]
    fn scream_runs_and_discards_on_congestion() {
        let m = quick(CcMode::paper_scream(), Environment::Rural, Mobility::Air);
        let g = m.goodput_bps();
        assert!((2e6..16e6).contains(&g), "goodput {:.1} Mbps", g / 1e6);
        assert!(m.frames.len() > 1_000);
    }

    #[test]
    fn playback_latency_mostly_within_threshold() {
        let m = quick(
            CcMode::paper_static(Environment::Urban),
            Environment::Urban,
            Mobility::Air,
        );
        let frac = m.playback_within(300.0);
        assert!(
            frac > 0.5,
            "only {frac:.2} of playback below 300 ms (expected well above half)"
        );
        // And latencies are ≥ the structural floor (≈ one-way + jitter
        // buffer ≈ 170 ms at minimum... allow decoder slack).
        let lat = m.playback_latency_ms();
        let p5 = crate::stats::quantile(&lat, 0.05);
        assert!(p5 > 100.0, "p5 playback latency {p5} ms is implausibly low");
    }

    #[test]
    fn determinism_same_seed_same_metrics() {
        let run = || quick(CcMode::Gcc, Environment::Rural, Mobility::Air);
        let a = run();
        let b = run();
        assert_eq!(a.media_sent, b.media_sent);
        assert_eq!(a.media_received, b.media_received);
        assert_eq!(a.handovers.len(), b.handovers.len());
        assert_eq!(a.frames.len(), b.frames.len());
    }

    #[test]
    fn ground_run_executes() {
        let m = quick(
            CcMode::paper_static(Environment::Urban),
            Environment::Urban,
            Mobility::Ground,
        );
        assert!(m.media_sent > 0);
        assert!(m.frames.len() > 100);
    }
}
