//! Dataset export — the analog of the paper's released measurement dataset
//! (\[11\], doi 10.14459/2022mp1687221).
//!
//! The campaign's artifact is a set of per-run CSV tables; this module
//! writes the same shape from simulated runs so the paper's published
//! parsing/visualisation scripts (or any notebook) can consume them:
//!
//! ```text
//! <dir>/
//!   runs.csv        one row per run: config axes + headline metrics
//!   handovers.csv   one row per handover: run, time, HET, kind
//!   frames.csv      one row per played/skipped frame
//!   owd.csv         one row per delivered media packet (decimated)
//!   radio.csv       one row per radio tick: altitude, capacity, RSRP, SINR
//!   switches.csv    one row per failover switch: run, time, legs, cause
//! ```
//!
//! For campaigns executed in the engine's streaming mode (no per-run
//! metrics retained), [`aggregates_csv`] renders the one-row summary of
//! the campaign's [`CampaignAggregates`](crate::summary::CampaignAggregates).

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::metrics::RunMetrics;
use crate::scenario::ExperimentConfig;

/// Decimation factor for the per-packet OWD table (the raw table for a
/// full campaign is tens of millions of rows; the paper's analysis bins
/// them anyway).
pub const OWD_DECIMATION: usize = 10;

/// One run plus its configuration, ready for export.
pub struct DatasetRun<'a> {
    /// The configuration the run was executed with.
    pub config: &'a ExperimentConfig,
    /// Its metrics.
    pub metrics: &'a RunMetrics,
}

/// Render the `runs.csv` table.
pub fn runs_csv(runs: &[DatasetRun<'_>]) -> String {
    let mut out = String::from(
        "run,label,environment,operator,mobility,cc,seed,duration_s,\
         goodput_mbps,per,ho_count,stalls,distinct_cells,repair,\
         malformed,duplicates,late,nacks_sent,rtx_sent,rtx_recovered,\
         rtx_late,repair_efficiency,switches,probes,dup_tx,dead_ms,\
         fec_tx,fec_recovered,fec_multi_recovered,reorder_buffered,leg0_share\n",
    );
    for (i, r) in runs.iter().enumerate() {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{:.1},{:.3},{:.6},{},{},{},{},{},{},{},{},{},{},{},{:.4},{},{},{},{:.0},{},{},{},{},{:.4}",
            i,
            r.config.label(),
            r.config.environment.name(),
            r.config.operator.name(),
            r.config.mobility.name(),
            r.config.cc.name(),
            r.config.seed,
            r.metrics.duration.as_secs_f64(),
            r.metrics.goodput_bps() / 1e6,
            r.metrics.per(),
            r.metrics.handovers.len(),
            r.metrics.stalls,
            r.metrics.distinct_cells,
            r.config.repair as u8,
            r.metrics.malformed_packets + r.metrics.malformed_payloads,
            r.metrics.duplicate_packets,
            r.metrics.late_packets,
            r.metrics.nacks_sent,
            r.metrics.rtx_sent,
            r.metrics.rtx_recovered,
            r.metrics.rtx_late,
            r.metrics.repair_efficiency(),
            r.metrics.switches.len(),
            r.metrics.probes_sent,
            r.metrics.dup_tx_packets,
            r.metrics.path_dead_ms(),
            r.metrics.fec_tx,
            r.metrics.fec_recovered,
            r.metrics.fec_multi_recovered,
            r.metrics.reorder_buffered,
            r.metrics.leg_tx_share(0),
        );
    }
    out
}

/// Render the `handovers.csv` table.
pub fn handovers_csv(runs: &[DatasetRun<'_>]) -> String {
    let mut out = String::from("run,t_s,het_ms,kind\n");
    for (i, r) in runs.iter().enumerate() {
        for h in &r.metrics.handovers {
            let _ = writeln!(
                out,
                "{},{:.3},{:.1},{:?}",
                i,
                h.at.as_secs_f64(),
                h.het.as_millis_f64(),
                h.kind
            );
        }
    }
    out
}

/// Render the `frames.csv` table.
pub fn frames_csv(runs: &[DatasetRun<'_>]) -> String {
    let mut out = String::from("run,frame,display_t_s,latency_ms,ssim,displayed\n");
    for (i, r) in runs.iter().enumerate() {
        for f in &r.metrics.frames {
            let _ = writeln!(
                out,
                "{},{},{:.3},{},{:.4},{}",
                i,
                f.number,
                f.display_at.as_secs_f64(),
                f.latency_ms.map(|l| format!("{l:.1}")).unwrap_or_default(),
                f.ssim,
                f.displayed as u8
            );
        }
    }
    out
}

/// Render the (decimated) `owd.csv` table.
pub fn owd_csv(runs: &[DatasetRun<'_>]) -> String {
    let mut out = String::from("run,arrival_t_s,owd_ms\n");
    for (i, r) in runs.iter().enumerate() {
        for (t, ms) in r.metrics.owd.iter().step_by(OWD_DECIMATION) {
            let _ = writeln!(out, "{},{:.4},{:.2}", i, t.as_secs_f64(), ms);
        }
    }
    out
}

/// Render the `radio.csv` table.
pub fn radio_csv(runs: &[DatasetRun<'_>]) -> String {
    let mut out = String::from("run,t_s,altitude_m,capacity_mbps,rsrp_dbm,sinr_db,in_handover\n");
    for (i, r) in runs.iter().enumerate() {
        for row in &r.metrics.radio {
            let _ = writeln!(
                out,
                "{},{:.1},{:.1},{:.2},{:.1},{:.1},{}",
                i,
                row.t.as_secs_f64(),
                row.altitude_m,
                row.capacity_bps / 1e6,
                row.rsrp_dbm,
                row.sinr_db,
                row.in_handover as u8
            );
        }
    }
    out
}

/// Render the `switches.csv` table (failover switch events).
pub fn switches_csv(runs: &[DatasetRun<'_>]) -> String {
    let mut out = String::from("run,t_s,from_leg,to_leg,cause\n");
    for (i, r) in runs.iter().enumerate() {
        for s in &r.metrics.switches {
            let _ = writeln!(
                out,
                "{},{:.3},{},{},{}",
                i,
                s.at.as_secs_f64(),
                s.from_leg,
                s.to_leg,
                s.cause.label()
            );
        }
    }
    out
}

/// Write the full dataset into `dir` (created if missing).
pub fn export(dir: &Path, runs: &[DatasetRun<'_>]) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join("runs.csv"), runs_csv(runs))?;
    fs::write(dir.join("handovers.csv"), handovers_csv(runs))?;
    fs::write(dir.join("frames.csv"), frames_csv(runs))?;
    fs::write(dir.join("owd.csv"), owd_csv(runs))?;
    fs::write(dir.join("radio.csv"), radio_csv(runs))?;
    fs::write(dir.join("switches.csv"), switches_csv(runs))?;
    Ok(())
}

/// Render a one-row `aggregates.csv` from the engine's streaming
/// [`CampaignAggregates`] — the dataset artifact of a campaign too large
/// to hold per-run metrics for (the engine's streaming mode retains
/// nothing else).
pub fn aggregates_csv(a: &crate::summary::CampaignAggregates) -> String {
    let q = |h: &crate::stats::LogHistogram, p: f64| h.quantile(p).unwrap_or(f64::NAN);
    let mut out = String::from(
        "cells,failed,media_sent,media_received,media_received_bytes,\
         stalls,stalled_time_s,nacks_sent,rtx_recovered,fec_recovered,\
         ssim_samples,ssim_below_half,\
         goodput_mbps_p50,goodput_mbps_p99,goodput_mbps_mean,\
         owd_ms_p50,owd_ms_p99,playback_ms_p50,playback_ms_p99\n",
    );
    let _ = writeln!(
        out,
        "{},{},{},{},{},{},{:.3},{},{},{},{},{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3}",
        a.cells,
        a.failed,
        a.media_sent,
        a.media_received,
        a.media_received_bytes,
        a.stalls,
        a.stalled_time_us as f64 / 1e6,
        a.nacks_sent,
        a.rtx_recovered,
        a.fec_recovered,
        a.ssim_samples,
        a.ssim_below_half,
        q(&a.goodput_mbps, 0.5),
        q(&a.goodput_mbps, 0.99),
        a.goodput_mbps.mean().unwrap_or(f64::NAN),
        q(&a.owd_ms, 0.5),
        q(&a.owd_ms, 0.99),
        q(&a.playback_ms, 0.5),
        q(&a.playback_ms, 0.99),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{FrameRecord, HandoverRecord};
    use crate::scenario::CcMode;
    use rpav_lte::{Environment, HandoverKind};
    use rpav_sim::{SimDuration, SimTime};

    fn sample() -> (ExperimentConfig, RunMetrics) {
        let cfg = ExperimentConfig::builder()
            .environment(Environment::Urban)
            .cc(CcMode::Gcc)
            .seed(9)
            .build();
        let m = RunMetrics {
            duration: SimDuration::from_secs(10),
            media_sent: 100,
            media_received: 99,
            media_received_bytes: 99 * 1_200,
            owd: (0..99)
                .map(|i| (SimTime::from_millis(i * 100), 40.0 + i as f64))
                .collect(),
            handovers: vec![HandoverRecord {
                at: SimTime::from_secs(5),
                het: SimDuration::from_millis(28),
                kind: HandoverKind::A3,
                from: 4,
                to: 5,
            }],
            frames: vec![
                FrameRecord {
                    number: 0,
                    display_at: SimTime::from_millis(200),
                    latency_ms: Some(180.0),
                    ssim: 0.93,
                    displayed: true,
                },
                FrameRecord {
                    number: 1,
                    display_at: SimTime::from_millis(500),
                    latency_ms: None,
                    ssim: 0.0,
                    displayed: false,
                },
            ],
            stalls: 1,
            distinct_cells: 3,
            malformed_packets: 4,
            malformed_payloads: 1,
            duplicate_packets: 2,
            late_packets: 3,
            nacks_sent: 10,
            nack_seqs_requested: 20,
            rtx_sent: 18,
            rtx_recovered: 15,
            rtx_late: 2,
            switches: vec![crate::metrics::SwitchRecord {
                at: SimTime::from_secs(7),
                from_leg: 0,
                to_leg: 1,
                cause: crate::failover::SwitchCause::Starvation,
            }],
            path_health: vec![
                crate::metrics::PathHealthSummary {
                    leg: 0,
                    time_dead: SimDuration::from_millis(1_250),
                    tx_packets: 75,
                    ..Default::default()
                },
                crate::metrics::PathHealthSummary {
                    leg: 1,
                    tx_packets: 25,
                    ..Default::default()
                },
            ],
            probes_sent: 40,
            dup_tx_packets: 9,
            fec_tx: 6,
            fec_recovered: 2,
            fec_multi_recovered: 1,
            reorder_buffered: 4,
            ..Default::default()
        };
        (cfg, m)
    }

    #[test]
    fn tables_have_headers_and_rows() {
        let (cfg, m) = sample();
        let runs = [DatasetRun {
            config: &cfg,
            metrics: &m,
        }];
        let r = runs_csv(&runs);
        assert!(r.starts_with("run,label"));
        assert_eq!(r.lines().count(), 2);
        assert!(r.contains("GCC-Urban-P1-Air"));
        // Repair columns serialize: header names plus the sample's
        // counter values — malformed merges wire (4) and payload (1)
        // damage, and efficiency is recovered/requested = 15/20.
        assert!(r.contains("repair,malformed,duplicates,late,nacks_sent"));
        assert!(r.contains(
            ",rtx_late,repair_efficiency,switches,probes,dup_tx,dead_ms,\
             fec_tx,fec_recovered,fec_multi_recovered,reorder_buffered,leg0_share"
        ));
        assert!(
            r.lines()
                .nth(1)
                .unwrap()
                .ends_with(",0,5,2,3,10,18,15,2,0.7500,1,40,9,1250,6,2,1,4,0.7500"),
            "repair/failover/bonding columns wrong: {}",
            r.lines().nth(1).unwrap()
        );

        let h = handovers_csv(&runs);
        assert_eq!(h.lines().count(), 2);
        assert!(h.contains("5.000,28.0,A3"));

        let f = frames_csv(&runs);
        assert_eq!(f.lines().count(), 3);
        // The skipped frame has an empty latency field and displayed=0.
        assert!(f.lines().last().unwrap().ends_with(",0.0000,0"));

        let o = owd_csv(&runs);
        assert_eq!(o.lines().count(), 1 + 99usize.div_ceil(OWD_DECIMATION));

        let s = switches_csv(&runs);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("0,7.000,0,1,starvation"));
    }

    #[test]
    fn export_writes_all_files() {
        let (cfg, m) = sample();
        let runs = [DatasetRun {
            config: &cfg,
            metrics: &m,
        }];
        let dir = std::env::temp_dir().join(format!("rpav-dataset-{}", std::process::id()));
        export(&dir, &runs).unwrap();
        for name in [
            "runs.csv",
            "handovers.csv",
            "frames.csv",
            "owd.csv",
            "radio.csv",
            "switches.csv",
        ] {
            let p = dir.join(name);
            assert!(p.exists(), "{name} missing");
            assert!(std::fs::metadata(&p).unwrap().len() > 10);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn aggregates_csv_has_header_and_one_row() {
        let (_, m) = sample();
        let mut a = crate::summary::CampaignAggregates::default();
        a.fold(&m);
        a.fold_failure();
        let s = aggregates_csv(&a);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("cells,failed,"));
        assert!(lines[1].starts_with("1,1,"));
    }
}
