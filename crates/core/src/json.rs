//! Minimal, total-function JSON parser and canonical serializer.
//!
//! The workspace is offline/vendored — no `serde`, no `serde_json` — so the
//! daemon's wire format is hand-rolled here with the same discipline as the
//! PR 2 wire parsers: parsing is a *total function* (`&str -> Result`) with
//! typed errors, no panics, no recursion past a fixed depth bound, and the
//! serializer emits **canonical bytes**:
//!
//! * object keys sorted bytewise, duplicates rejected at parse time,
//! * zero insignificant whitespace,
//! * non-negative integers print as plain decimals ([`Json::UInt`]),
//! * all other numbers print via Rust's shortest-round-trip `f64` formatting
//!   ([`Json::Float`]), which always contains a `.` or an `e` — so the two
//!   number forms can never collide on re-parse,
//! * strings escape only what JSON requires (`"` `\` and control bytes).
//!
//! Canonicality is what makes `fnv1a(canonical bytes)` a usable identity:
//! `parse(s).canonical()` is a fixed point, so any whitespace/key-order
//! presentation of the same document hashes the same. The spec layer
//! ([`crate::spec`]) builds on this to make `CampaignSpec → hash` the
//! cache/journal identity.

use std::fmt;

/// Maximum nesting depth the parser will follow before returning
/// [`JsonError::DepthExceeded`]. Campaign specs nest ~5 deep; 64 leaves
/// generous headroom while keeping the recursive parser stack-safe on
/// adversarial input.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
///
/// Numbers are split into [`Json::UInt`] (non-negative integer tokens, kept
/// exact up to `u64::MAX` — seeds and microsecond times need all 64 bits)
/// and [`Json::Float`] (everything else). Object fields keep insertion
/// order; [`Json::canonical`] sorts at serialization time.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// A non-negative integer token (`[0-9]+`), exact to 64 bits.
    UInt(u64),
    /// Any other number (negative, fractional, exponent, or > `u64::MAX`).
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    /// Fields in insertion order; duplicate keys are a parse error.
    Object(Vec<(String, Json)>),
}

/// Typed parse failures. Every variant carries the byte offset where the
/// problem was detected, so spec-layer errors can point at the culprit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JsonError {
    /// Input ended inside a value, string, or token.
    Truncated,
    /// A character that cannot start or continue the expected token.
    BadToken { pos: usize },
    /// A malformed number literal (e.g. `01`, `1.`, `-`, `1e`).
    BadNumber { pos: usize },
    /// A malformed string escape (`\q`, bad `\u`, lone surrogate).
    BadEscape { pos: usize },
    /// An unescaped control byte inside a string.
    BadString { pos: usize },
    /// The same key twice in one object.
    DuplicateKey { pos: usize, key: String },
    /// Nesting deeper than [`MAX_DEPTH`].
    DepthExceeded { pos: usize },
    /// Valid value followed by non-whitespace garbage.
    Trailing { pos: usize },
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Truncated => write!(f, "unexpected end of input"),
            JsonError::BadToken { pos } => write!(f, "unexpected character at byte {pos}"),
            JsonError::BadNumber { pos } => write!(f, "malformed number at byte {pos}"),
            JsonError::BadEscape { pos } => write!(f, "malformed string escape at byte {pos}"),
            JsonError::BadString { pos } => {
                write!(f, "unescaped control character in string at byte {pos}")
            }
            JsonError::DuplicateKey { pos, key } => {
                write!(f, "duplicate object key {key:?} at byte {pos}")
            }
            JsonError::DepthExceeded { pos } => {
                write!(f, "nesting deeper than {MAX_DEPTH} at byte {pos}")
            }
            JsonError::Trailing { pos } => write!(f, "trailing bytes after value at byte {pos}"),
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse one complete JSON document. Total: any `&str` yields either a
    /// value or a typed error; nothing panics, and trailing non-whitespace
    /// is rejected.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(JsonError::Trailing { pos: p.pos });
        }
        Ok(value)
    }

    /// Serialize to canonical bytes: sorted keys, no whitespace, stable
    /// number formatting. `Json::parse(&v.canonical())` re-parses to an
    /// equal value (modulo object key order), and canonicalization is
    /// idempotent: `parse(c).canonical() == c`.
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        self.write_canonical(&mut out);
        out
    }

    fn write_canonical(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(n) => {
                out.push_str(&n.to_string());
            }
            Json::Float(x) => write_float(*x, out),
            Json::Str(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_canonical(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                let mut order: Vec<usize> = (0..fields.len()).collect();
                order.sort_by(|&a, &b| fields[a].0.cmp(&fields[b].0));
                out.push('{');
                for (i, &idx) in order.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(&fields[idx].0, out);
                    out.push(':');
                    fields[idx].1.write_canonical(out);
                }
                out.push('}');
            }
        }
    }

    // ---- typed accessors (used by the spec layer) -------------------------

    /// The object's fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Field lookup by key (objects reject duplicates at parse time, so the
    /// first match is the only match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// The array's items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Exact unsigned integer (only [`Json::UInt`]; `5.0` is *not* an
    /// acceptable count — the spec layer wants that strictness).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as `f64` (either number form).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Canonical float formatting: Rust's `{:?}` for `f64` is the shortest
/// representation that round-trips, and for finite values always contains a
/// `.` or an `e` — so it can never be confused with a `UInt` token.
/// Non-finite values have no JSON representation; they serialize as `null`
/// (valid specs never contain them — every spec field is a finite
/// probability, rate, or time).
fn write_float(x: f64, out: &mut String) {
    if x.is_finite() {
        out.push_str(&format!("{x:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        match self.peek() {
            Some(x) if x == b => {
                self.pos += 1;
                Ok(())
            }
            Some(_) => Err(JsonError::BadToken { pos: self.pos }),
            None => Err(JsonError::Truncated),
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::DepthExceeded { pos: self.pos });
        }
        match self.peek() {
            None => Err(JsonError::Truncated),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword(b"true", Json::Bool(true)),
            Some(b'f') => self.keyword(b"false", Json::Bool(false)),
            Some(b'n') => self.keyword(b"null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(JsonError::BadToken { pos: self.pos }),
        }
    }

    fn keyword(&mut self, word: &[u8], value: Json) -> Result<Json, JsonError> {
        if self.bytes.len() < self.pos + word.len() {
            return Err(JsonError::Truncated);
        }
        if &self.bytes[self.pos..self.pos + word.len()] == word {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::BadToken { pos: self.pos })
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key_pos = self.pos;
            if self.peek() != Some(b'"') {
                return match self.peek() {
                    None => Err(JsonError::Truncated),
                    Some(_) => Err(JsonError::BadToken { pos: self.pos }),
                };
            }
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(JsonError::DuplicateKey { pos: key_pos, key });
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                Some(_) => return Err(JsonError::BadToken { pos: self.pos }),
                None => return Err(JsonError::Truncated),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                Some(_) => return Err(JsonError::BadToken { pos: self.pos }),
                None => return Err(JsonError::Truncated),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Safety of from_utf8: input was a &str and we only stopped
                // on ASCII delimiters, so the run is valid UTF-8.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or(""));
            }
            match self.peek() {
                None => return Err(JsonError::Truncated),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(JsonError::BadString { pos: self.pos }),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let pos = self.pos;
        let b = self.peek().ok_or(JsonError::Truncated)?;
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let c = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: require a \uXXXX low surrogate.
                    if self.bytes.get(self.pos) == Some(&b'\\')
                        && self.bytes.get(self.pos + 1) == Some(&b'u')
                    {
                        self.pos += 2;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(JsonError::BadEscape { pos });
                        }
                        let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        char::from_u32(cp).ok_or(JsonError::BadEscape { pos })?
                    } else if self.pos >= self.bytes.len() {
                        return Err(JsonError::Truncated);
                    } else {
                        return Err(JsonError::BadEscape { pos });
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(JsonError::BadEscape { pos }); // lone low surrogate
                } else {
                    char::from_u32(hi).ok_or(JsonError::BadEscape { pos })?
                };
                out.push(c);
            }
            _ => return Err(JsonError::BadEscape { pos }),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.bytes.len() < self.pos + 4 {
            return Err(JsonError::Truncated);
        }
        let mut v = 0u32;
        for i in 0..4 {
            let b = self.bytes[self.pos + i];
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => return Err(JsonError::BadEscape { pos: self.pos - 2 }),
            };
            v = (v << 4) | d;
        }
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let mut integral = true;
        if self.peek() == Some(b'-') {
            integral = false;
            self.pos += 1;
        }
        // Integer part: "0" or [1-9][0-9]*.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(JsonError::BadNumber { pos: start });
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            Some(_) => return Err(JsonError::BadNumber { pos: start }),
            None => return Err(JsonError::Truncated),
        }
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return match self.peek() {
                    None => Err(JsonError::Truncated),
                    Some(_) => Err(JsonError::BadNumber { pos: start }),
                };
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return match self.peek() {
                    None => Err(JsonError::Truncated),
                    Some(_) => Err(JsonError::BadNumber { pos: start }),
                };
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::BadNumber { pos: start })?;
        if integral {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
            // Integer wider than u64: fall through to f64 (lossy but total).
        }
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::Float(x)),
            _ => Err(JsonError::BadNumber { pos: start }),
        }
    }
}

/// Convenience: build an object from `(key, value)` pairs.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("0").unwrap(), Json::UInt(0));
        assert_eq!(Json::parse("-3").unwrap(), Json::Float(-3.0));
        assert_eq!(Json::parse("2.5e3").unwrap(), Json::Float(2500.0));
        assert_eq!(Json::parse("\"hi\\n\"").unwrap(), Json::Str("hi\n".into()));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
    }

    #[test]
    fn rejects_garbage_with_typed_errors() {
        assert_eq!(Json::parse(""), Err(JsonError::Truncated));
        assert_eq!(Json::parse("tru"), Err(JsonError::Truncated));
        assert_eq!(Json::parse("[1,"), Err(JsonError::Truncated));
        assert!(matches!(
            Json::parse("01"),
            Err(JsonError::BadNumber { .. })
        ));
        assert!(matches!(
            Json::parse("1 2"),
            Err(JsonError::Trailing { .. })
        ));
        assert!(matches!(
            Json::parse("{\"a\":1,\"a\":2}"),
            Err(JsonError::DuplicateKey { .. })
        ));
        assert!(matches!(
            Json::parse("\"\\q\""),
            Err(JsonError::BadEscape { .. })
        ));
        assert!(matches!(
            Json::parse("\"\u{1}\""),
            Err(JsonError::BadString { .. })
        ));
        let deep = "[".repeat(MAX_DEPTH + 2);
        assert!(matches!(
            Json::parse(&deep),
            Err(JsonError::DepthExceeded { .. })
        ));
    }

    #[test]
    fn surrogate_pairs_round_trip() {
        let v = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Json::Str("\u{1F600}".into()));
        assert!(matches!(
            Json::parse("\"\\ud83d\""),
            Err(JsonError::BadEscape { .. })
        ));
        assert!(matches!(
            Json::parse("\"\\ude00\""),
            Err(JsonError::BadEscape { .. })
        ));
    }

    #[test]
    fn canonical_sorts_keys_and_is_idempotent() {
        let v = Json::parse("{ \"b\" : 1 , \"a\" : [ true , null ] }").unwrap();
        let c = v.canonical();
        assert_eq!(c, "{\"a\":[true,null],\"b\":1}");
        assert_eq!(Json::parse(&c).unwrap().canonical(), c);
    }

    #[test]
    fn uint_and_float_never_collide() {
        // A float that happens to be integral still prints with a '.'.
        assert_eq!(Json::Float(5.0).canonical(), "5.0");
        assert_eq!(Json::UInt(5).canonical(), "5");
        assert_eq!(Json::parse("5.0").unwrap(), Json::Float(5.0));
        assert_eq!(Json::parse("5").unwrap(), Json::UInt(5));
        // Shortest-round-trip formatting survives a parse cycle bit-exactly.
        for x in [0.1, 25e6, 1e300, -0.0, 5e-324, std::f64::consts::PI] {
            let c = Json::Float(x).canonical();
            match Json::parse(&c).unwrap() {
                Json::Float(y) => assert_eq!(y.to_bits(), x.to_bits(), "{c}"),
                other => panic!("{c} parsed as {other:?}"),
            }
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "quote\" back\\ slash/ nl\n tab\t ctl\u{1} uni\u{1F600}";
        let c = Json::Str(s.into()).canonical();
        assert_eq!(Json::parse(&c).unwrap(), Json::Str(s.into()));
    }
}
