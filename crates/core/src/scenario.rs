//! Experiment configuration: the campaign's independent variables.

use rpav_lte::{Environment, Operator};
use rpav_sim::{SimDuration, WatchdogConfig};

/// Whether the node flies the paper trajectory or rides the motorbike.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mobility {
    /// The Fig. 11 flight: 40/80/120 m steps with 200 m leaps.
    Air,
    /// The ground baseline: sweeps along the leap track with long holds.
    Ground,
}

impl Mobility {
    /// Display name matching the paper's figures ("Air" / "Grd").
    pub fn name(&self) -> &'static str {
        match self {
            Mobility::Air => "Air",
            Mobility::Ground => "Grd",
        }
    }
}

/// The three §3.2 video workloads.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CcMode {
    /// Constant bitrate at the per-environment "support-able" maximum.
    Static {
        /// Fixed encoder bitrate.
        bitrate_bps: f64,
    },
    /// Google Congestion Control with transport-wide feedback.
    Gcc,
    /// SCReAM with RFC 8888 feedback.
    Scream {
        /// Ack-span per feedback packet: 64 stock, 256 = the paper's
        /// mitigation (§4.2.1).
        ack_span: usize,
    },
}

impl CcMode {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            CcMode::Static { .. } => "Static",
            CcMode::Gcc => "GCC",
            CcMode::Scream { .. } => "SCReAM",
        }
    }

    /// Label discriminant: the display name, plus the parameter whenever it
    /// deviates from the paper default for `environment`. Two distinct
    /// workloads (e.g. SCReAM at span 64 vs 256, or Static at a non-paper
    /// bitrate) must never collapse onto the same label.
    pub fn label(&self, environment: Environment) -> String {
        match self {
            CcMode::Static { bitrate_bps } => {
                let paper = match CcMode::paper_static(environment) {
                    CcMode::Static { bitrate_bps } => bitrate_bps,
                    _ => unreachable!(),
                };
                if *bitrate_bps == paper {
                    "Static".to_string()
                } else {
                    format!("Static[{:.1}M]", bitrate_bps / 1e6)
                }
            }
            CcMode::Gcc => "GCC".to_string(),
            CcMode::Scream { ack_span } => {
                if *ack_span == 256 {
                    "SCReAM".to_string()
                } else {
                    format!("SCReAM[s{ack_span}]")
                }
            }
        }
    }

    /// The paper's static bitrate choice per environment (§3.2): 25 Mbps
    /// urban, 8 Mbps rural, from trial runs.
    pub fn paper_static(environment: Environment) -> CcMode {
        CcMode::Static {
            bitrate_bps: match environment {
                Environment::Urban => 25e6,
                Environment::Rural => 8e6,
            },
        }
    }

    /// SCReAM as the paper ran it (span already raised to 256, §4.2.1).
    pub fn paper_scream() -> CcMode {
        CcMode::Scream { ack_span: 256 }
    }
}

/// One measurement run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExperimentConfig {
    /// Urban or rural flight area.
    pub environment: Environment,
    /// Operator (P1 default, P2 in App. A.3).
    pub operator: Operator,
    /// Air or ground.
    pub mobility: Mobility,
    /// Video workload.
    pub cc: CcMode,
    /// Master seed (campaign identity).
    pub seed: u64,
    /// Run index within the campaign (decorrelates channel randomness).
    pub run_index: u64,
    /// Hover time between flight legs.
    pub hold: SimDuration,
    /// Ground-run sweep count.
    pub ground_sweeps: usize,
    /// Jitter-buffer `drop-on-latency` mode (App. A.4 ablation).
    pub drop_on_latency: bool,
    /// Override the A3 hysteresis (dB) — the §5 mobility-parameter sweep.
    pub hysteresis_override_db: Option<f64>,
    /// Override the A3 time-to-trigger (ms) — same sweep.
    pub ttt_override_ms: Option<u64>,
    /// Override the receiver jitter-buffer target (ms) — §4.2 "the RTP
    /// jitter buffer size can be adjusted to reduce playback latency".
    pub jitter_target_override_ms: Option<u64>,
    /// Feedback-starvation watchdog shared by the adaptive CCs. Enabled by
    /// default; set `watchdog.enabled = false` to reproduce the stock
    /// frozen-rate outage behaviour.
    pub watchdog: WatchdogConfig,
    /// NACK/RTX loss repair (RFC 4585 generic NACK + RFC 4588-style
    /// retransmission). Off by default — the paper's stack had no repair,
    /// so the baseline stays bit-identical; the repair benches flip it on.
    pub repair: bool,
    /// Per-leg uplink capacity caps in bps (primary, secondary), applied
    /// on top of the channel model — the bonded scheme's asymmetric-leg
    /// ablation knob. `None` leaves the radio capacity untouched.
    pub leg_cap_bps: Option<(f64, f64)>,
    /// Ceiling on the bonded scheme's adaptive FEC overhead ratio
    /// (parity packets / media packets). `0.0` disables FEC entirely;
    /// only the `Bonded` multipath scheme reads it.
    pub fec_cap: f64,
    /// How many cellular legs the multipath drivers carry (2–4; default
    /// 2). Legs alternate operators (even = `operator`, odd =
    /// `secondary_operator()`); legs ≥ 2 ride statistically independent
    /// channel instances of the same operators.
    pub n_legs: usize,
    /// Couple the bonded scheme's congestion control across legs: one
    /// shadow CC per leg fed by that leg's own feedback stream, with the
    /// encoder driven by the aggregate of the per-leg targets — the
    /// MPTCP-style answer to the DESIGN §11.5 delay-variance collapse.
    /// Default off, which preserves the PR 6 single-CC behaviour
    /// bit-for-bit.
    pub coupled_cc: bool,
}

/// Hard ceiling on `n_legs` — the leg arrays in the multipath drivers
/// and the RS parity spread are sized for it.
pub const MAX_LEGS: usize = 4;

impl ExperimentConfig {
    /// Start a typed builder pre-loaded with the paper defaults (rural P1
    /// aerial GCC, seed 0). Every knob has a named setter; `build()` fills
    /// anything left untouched with the paper value for the chosen axes
    /// (e.g. the hover hold follows the mobility).
    pub fn builder() -> ExperimentConfigBuilder {
        ExperimentConfigBuilder::default()
    }

    /// The paper-default hover/sweep hold for a mobility.
    pub fn paper_hold(mobility: Mobility) -> SimDuration {
        match mobility {
            Mobility::Air => SimDuration::from_secs(5),
            Mobility::Ground => SimDuration::from_secs(45),
        }
    }

    /// Paper-default configuration for the given axes.
    ///
    /// Superseded by [`ExperimentConfig::builder`]; the shim survives only
    /// for the equivalence test below, gated out of shipping builds.
    #[cfg(test)]
    #[deprecated(note = "use `ExperimentConfig::builder()` instead")]
    pub fn paper(
        environment: Environment,
        operator: Operator,
        mobility: Mobility,
        cc: CcMode,
        seed: u64,
        run_index: u64,
    ) -> Self {
        ExperimentConfig::builder()
            .environment(environment)
            .operator(operator)
            .mobility(mobility)
            .cc(cc)
            .seed(seed)
            .run_index(run_index)
            .build()
    }

    /// The *other* cellular operator — the standby carrier a multi-SIM
    /// failover setup would ride (App. A.3 measures both).
    pub fn secondary_operator(&self) -> Operator {
        match self.operator {
            Operator::P1 => Operator::P2,
            Operator::P2 => Operator::P1,
        }
    }

    /// A short label for result tables.
    ///
    /// The base reads like the paper's figure keys
    /// (`GCC-Rural-P1-Air`); any configuration bit that changes what the
    /// run *measures* — a non-paper CC parameter, loss repair, the
    /// drop-on-latency player, a jitter/mobility override, a disabled
    /// watchdog — is appended as a discriminant so two different
    /// experiment cells can never share a label (see
    /// [`Cell::label`](crate::exec::Cell::label) for the scheme/script/run
    /// dimensions the matrix engine adds on top).
    pub fn label(&self) -> String {
        let mut label = format!(
            "{}-{}-{}-{}",
            self.cc.label(self.environment),
            self.environment.name(),
            self.operator.name(),
            self.mobility.name()
        );
        if self.repair {
            label.push_str("+rtx");
        }
        if self.drop_on_latency {
            label.push_str("+dol");
        }
        if let Some(ms) = self.jitter_target_override_ms {
            label.push_str(&format!("+jt{ms}"));
        }
        if let Some(db) = self.hysteresis_override_db {
            label.push_str(&format!("+hys{db}"));
        }
        if let Some(ms) = self.ttt_override_ms {
            label.push_str(&format!("+ttt{ms}"));
        }
        if !self.watchdog.enabled {
            label.push_str("+wd0");
        }
        if let Some((a, b)) = self.leg_cap_bps {
            label.push_str(&format!("+cap{:.1}/{:.1}", a / 1e6, b / 1e6));
        }
        if self.fec_cap > 0.0 {
            label.push_str(&format!("+fec{:.2}", self.fec_cap));
        }
        if self.n_legs != 2 {
            label.push_str(&format!("+legs{}", self.n_legs));
        }
        if self.coupled_cc {
            label.push_str("+ccc");
        }
        label
    }
}

/// Typed builder for [`ExperimentConfig`], pre-loaded with paper defaults.
///
/// ```
/// use rpav_core::prelude::*;
///
/// let cfg = ExperimentConfig::builder()
///     .environment(Environment::Urban)
///     .cc(CcMode::Gcc)
///     .seed(42)
///     .build();
/// assert_eq!(cfg.label(), "GCC-Urban-P1-Air");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ExperimentConfigBuilder {
    environment: Environment,
    operator: Operator,
    mobility: Mobility,
    cc: CcMode,
    seed: u64,
    run_index: u64,
    hold: Option<SimDuration>,
    ground_sweeps: usize,
    drop_on_latency: bool,
    hysteresis_override_db: Option<f64>,
    ttt_override_ms: Option<u64>,
    jitter_target_override_ms: Option<u64>,
    watchdog: WatchdogConfig,
    repair: bool,
    leg_cap_bps: Option<(f64, f64)>,
    fec_cap: f64,
    n_legs: usize,
    coupled_cc: bool,
}

impl Default for ExperimentConfigBuilder {
    fn default() -> Self {
        ExperimentConfigBuilder {
            environment: Environment::Rural,
            operator: Operator::P1,
            mobility: Mobility::Air,
            cc: CcMode::Gcc,
            seed: 0,
            run_index: 0,
            hold: None,
            ground_sweeps: 3,
            drop_on_latency: false,
            hysteresis_override_db: None,
            ttt_override_ms: None,
            jitter_target_override_ms: None,
            watchdog: WatchdogConfig::default(),
            repair: false,
            leg_cap_bps: None,
            fec_cap: 0.0,
            n_legs: 2,
            coupled_cc: false,
        }
    }
}

impl ExperimentConfigBuilder {
    /// Flight area (default rural).
    pub fn environment(mut self, environment: Environment) -> Self {
        self.environment = environment;
        self
    }

    /// Cellular operator (default P1).
    pub fn operator(mut self, operator: Operator) -> Self {
        self.operator = operator;
        self
    }

    /// Air or ground (default air). The hover hold follows the mobility's
    /// paper default unless [`hold`](Self::hold) overrides it.
    pub fn mobility(mut self, mobility: Mobility) -> Self {
        self.mobility = mobility;
        self
    }

    /// Video workload (default GCC).
    pub fn cc(mut self, cc: CcMode) -> Self {
        self.cc = cc;
        self
    }

    /// Master seed — the campaign identity (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Run index within the campaign (default 0).
    pub fn run_index(mut self, run_index: u64) -> Self {
        self.run_index = run_index;
        self
    }

    /// Override the hover/sweep hold between flight legs.
    pub fn hold(mut self, hold: SimDuration) -> Self {
        self.hold = Some(hold);
        self
    }

    /// [`hold`](Self::hold) in whole seconds — the common test shorthand.
    pub fn hold_secs(self, secs: u64) -> Self {
        self.hold(SimDuration::from_secs(secs))
    }

    /// Ground-run sweep count (default 3).
    pub fn ground_sweeps(mut self, sweeps: usize) -> Self {
        self.ground_sweeps = sweeps;
        self
    }

    /// Jitter-buffer drop-on-latency mode (App. A.4 ablation).
    pub fn drop_on_latency(mut self, on: bool) -> Self {
        self.drop_on_latency = on;
        self
    }

    /// Override the A3 hysteresis (dB) — the §5 mobility-parameter sweep.
    pub fn hysteresis_db(mut self, db: f64) -> Self {
        self.hysteresis_override_db = Some(db);
        self
    }

    /// Override the A3 time-to-trigger (ms) — same sweep.
    pub fn ttt_ms(mut self, ms: u64) -> Self {
        self.ttt_override_ms = Some(ms);
        self
    }

    /// Override the receiver jitter-buffer target (ms).
    pub fn jitter_target_ms(mut self, ms: u64) -> Self {
        self.jitter_target_override_ms = Some(ms);
        self
    }

    /// Replace the feedback-starvation watchdog configuration.
    pub fn watchdog(mut self, watchdog: WatchdogConfig) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Flip only the watchdog master switch (`false` reproduces the stock
    /// frozen-rate outage behaviour).
    pub fn watchdog_enabled(mut self, enabled: bool) -> Self {
        self.watchdog.enabled = enabled;
        self
    }

    /// NACK/RTX loss repair (default off, like the paper's stack).
    pub fn repair(mut self, on: bool) -> Self {
        self.repair = on;
        self
    }

    /// Cap the per-leg uplink capacities (primary, secondary) in bps —
    /// the bonded scheme's asymmetric-leg ablation.
    pub fn leg_caps(mut self, primary_bps: f64, secondary_bps: f64) -> Self {
        self.leg_cap_bps = Some((primary_bps, secondary_bps));
        self
    }

    /// Ceiling on the bonded scheme's adaptive FEC overhead ratio
    /// (default 0.0 = FEC off).
    pub fn fec_cap(mut self, cap: f64) -> Self {
        self.fec_cap = cap;
        self
    }

    /// Number of cellular legs for the multipath drivers, clamped to
    /// 1..=[`MAX_LEGS`] (default 2).
    pub fn n_legs(mut self, n: usize) -> Self {
        self.n_legs = n.clamp(1, MAX_LEGS);
        self
    }

    /// Per-leg shadow congestion control with an aggregate allocator
    /// (default off; Bonded scheme only).
    pub fn coupled_cc(mut self, on: bool) -> Self {
        self.coupled_cc = on;
        self
    }

    /// Assemble the configuration, filling paper defaults for anything not
    /// explicitly set.
    pub fn build(self) -> ExperimentConfig {
        ExperimentConfig {
            environment: self.environment,
            operator: self.operator,
            mobility: self.mobility,
            cc: self.cc,
            seed: self.seed,
            run_index: self.run_index,
            hold: self
                .hold
                .unwrap_or_else(|| ExperimentConfig::paper_hold(self.mobility)),
            ground_sweeps: self.ground_sweeps,
            drop_on_latency: self.drop_on_latency,
            hysteresis_override_db: self.hysteresis_override_db,
            ttt_override_ms: self.ttt_override_ms,
            jitter_target_override_ms: self.jitter_target_override_ms,
            watchdog: self.watchdog,
            repair: self.repair,
            leg_cap_bps: self.leg_cap_bps,
            fec_cap: self.fec_cap,
            n_legs: self.n_legs,
            coupled_cc: self.coupled_cc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_static_bitrates() {
        match CcMode::paper_static(Environment::Urban) {
            CcMode::Static { bitrate_bps } => assert_eq!(bitrate_bps, 25e6),
            _ => panic!(),
        }
        match CcMode::paper_static(Environment::Rural) {
            CcMode::Static { bitrate_bps } => assert_eq!(bitrate_bps, 8e6),
            _ => panic!(),
        }
    }

    #[test]
    fn labels_read_like_the_figures() {
        let c = ExperimentConfig::builder().seed(1).build();
        assert_eq!(c.label(), "GCC-Rural-P1-Air");
        assert_eq!(c.hold, SimDuration::from_secs(5));
        let g = ExperimentConfig::builder()
            .environment(Environment::Urban)
            .operator(Operator::P2)
            .mobility(Mobility::Ground)
            .cc(CcMode::paper_scream())
            .seed(1)
            .build();
        assert_eq!(g.label(), "SCReAM-Urban-P2-Grd");
        assert_eq!(g.hold, SimDuration::from_secs(45));
    }

    #[test]
    fn deprecated_paper_shim_matches_builder() {
        #[allow(deprecated)]
        let shim = ExperimentConfig::paper(
            Environment::Urban,
            Operator::P2,
            Mobility::Ground,
            CcMode::Gcc,
            9,
            3,
        );
        let built = ExperimentConfig::builder()
            .environment(Environment::Urban)
            .operator(Operator::P2)
            .mobility(Mobility::Ground)
            .cc(CcMode::Gcc)
            .seed(9)
            .run_index(3)
            .build();
        assert_eq!(shim.label(), built.label());
        assert_eq!(shim.hold, built.hold);
        assert_eq!(shim.ground_sweeps, built.ground_sweeps);
    }

    #[test]
    fn label_discriminates_non_default_workloads() {
        let base = ExperimentConfig::builder();
        // Formerly colliding: SCReAM at stock vs widened ack span.
        let stock = base.cc(CcMode::Scream { ack_span: 64 }).build();
        let wide = base.cc(CcMode::paper_scream()).build();
        assert_ne!(stock.label(), wide.label());
        assert_eq!(stock.label(), "SCReAM[s64]-Rural-P1-Air");
        // Formerly colliding: paper-rate vs custom-rate Static.
        let paper = base.cc(CcMode::paper_static(Environment::Rural)).build();
        let custom = base.cc(CcMode::Static { bitrate_bps: 12e6 }).build();
        assert_ne!(paper.label(), custom.label());
        // Formerly colliding: repair off vs on.
        let plain = base.build();
        let repaired = base.repair(true).build();
        assert_ne!(plain.label(), repaired.label());
        // Ablation knobs discriminate too.
        assert_ne!(base.drop_on_latency(true).build().label(), plain.label());
        assert_ne!(base.jitter_target_ms(50).build().label(), plain.label());
        assert_ne!(base.hysteresis_db(2.0).build().label(), plain.label());
        assert_ne!(base.ttt_ms(128).build().label(), plain.label());
        assert_ne!(base.watchdog_enabled(false).build().label(), plain.label());
        // Bonding knobs discriminate: asymmetric caps and the FEC ceiling.
        let capped = base.leg_caps(3e6, 2e6).build();
        assert_ne!(capped.label(), plain.label());
        assert_eq!(capped.label(), "GCC-Rural-P1-Air+cap3.0/2.0");
        let fec = base.fec_cap(0.25).build();
        assert_ne!(fec.label(), plain.label());
        assert_eq!(fec.label(), "GCC-Rural-P1-Air+fec0.25");
        // N-leg knobs discriminate; the historical 2-leg default stays bare.
        let three = base.n_legs(3).build();
        assert_ne!(three.label(), plain.label());
        assert_eq!(three.label(), "GCC-Rural-P1-Air+legs3");
        assert_eq!(base.n_legs(2).build().label(), plain.label());
        let coupled = base.coupled_cc(true).build();
        assert_ne!(coupled.label(), plain.label());
        assert_eq!(coupled.label(), "GCC-Rural-P1-Air+ccc");
    }

    #[test]
    fn n_legs_clamps_to_supported_range() {
        assert_eq!(ExperimentConfig::builder().n_legs(0).build().n_legs, 1);
        assert_eq!(
            ExperimentConfig::builder().n_legs(9).build().n_legs,
            MAX_LEGS
        );
    }
}
