//! Experiment configuration: the campaign's independent variables.

use rpav_lte::{Environment, Operator};
use rpav_sim::{SimDuration, WatchdogConfig};

/// Whether the node flies the paper trajectory or rides the motorbike.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mobility {
    /// The Fig. 11 flight: 40/80/120 m steps with 200 m leaps.
    Air,
    /// The ground baseline: sweeps along the leap track with long holds.
    Ground,
}

impl Mobility {
    /// Display name matching the paper's figures ("Air" / "Grd").
    pub fn name(&self) -> &'static str {
        match self {
            Mobility::Air => "Air",
            Mobility::Ground => "Grd",
        }
    }
}

/// The three §3.2 video workloads.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CcMode {
    /// Constant bitrate at the per-environment "support-able" maximum.
    Static {
        /// Fixed encoder bitrate.
        bitrate_bps: f64,
    },
    /// Google Congestion Control with transport-wide feedback.
    Gcc,
    /// SCReAM with RFC 8888 feedback.
    Scream {
        /// Ack-span per feedback packet: 64 stock, 256 = the paper's
        /// mitigation (§4.2.1).
        ack_span: usize,
    },
}

impl CcMode {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            CcMode::Static { .. } => "Static",
            CcMode::Gcc => "GCC",
            CcMode::Scream { .. } => "SCReAM",
        }
    }

    /// The paper's static bitrate choice per environment (§3.2): 25 Mbps
    /// urban, 8 Mbps rural, from trial runs.
    pub fn paper_static(environment: Environment) -> CcMode {
        CcMode::Static {
            bitrate_bps: match environment {
                Environment::Urban => 25e6,
                Environment::Rural => 8e6,
            },
        }
    }

    /// SCReAM as the paper ran it (span already raised to 256, §4.2.1).
    pub fn paper_scream() -> CcMode {
        CcMode::Scream { ack_span: 256 }
    }
}

/// One measurement run.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentConfig {
    /// Urban or rural flight area.
    pub environment: Environment,
    /// Operator (P1 default, P2 in App. A.3).
    pub operator: Operator,
    /// Air or ground.
    pub mobility: Mobility,
    /// Video workload.
    pub cc: CcMode,
    /// Master seed (campaign identity).
    pub seed: u64,
    /// Run index within the campaign (decorrelates channel randomness).
    pub run_index: u64,
    /// Hover time between flight legs.
    pub hold: SimDuration,
    /// Ground-run sweep count.
    pub ground_sweeps: usize,
    /// Jitter-buffer `drop-on-latency` mode (App. A.4 ablation).
    pub drop_on_latency: bool,
    /// Override the A3 hysteresis (dB) — the §5 mobility-parameter sweep.
    pub hysteresis_override_db: Option<f64>,
    /// Override the A3 time-to-trigger (ms) — same sweep.
    pub ttt_override_ms: Option<u64>,
    /// Override the receiver jitter-buffer target (ms) — §4.2 "the RTP
    /// jitter buffer size can be adjusted to reduce playback latency".
    pub jitter_target_override_ms: Option<u64>,
    /// Feedback-starvation watchdog shared by the adaptive CCs. Enabled by
    /// default; set `watchdog.enabled = false` to reproduce the stock
    /// frozen-rate outage behaviour.
    pub watchdog: WatchdogConfig,
    /// NACK/RTX loss repair (RFC 4585 generic NACK + RFC 4588-style
    /// retransmission). Off by default — the paper's stack had no repair,
    /// so the baseline stays bit-identical; the repair benches flip it on.
    pub repair: bool,
}

impl ExperimentConfig {
    /// Paper-default configuration for the given axes.
    pub fn paper(
        environment: Environment,
        operator: Operator,
        mobility: Mobility,
        cc: CcMode,
        seed: u64,
        run_index: u64,
    ) -> Self {
        ExperimentConfig {
            environment,
            operator,
            mobility,
            cc,
            seed,
            run_index,
            hold: match mobility {
                Mobility::Air => SimDuration::from_secs(5),
                Mobility::Ground => SimDuration::from_secs(45),
            },
            ground_sweeps: 3,
            drop_on_latency: false,
            hysteresis_override_db: None,
            ttt_override_ms: None,
            jitter_target_override_ms: None,
            watchdog: WatchdogConfig::default(),
            repair: false,
        }
    }

    /// The *other* cellular operator — the standby carrier a multi-SIM
    /// failover setup would ride (App. A.3 measures both).
    pub fn secondary_operator(&self) -> Operator {
        match self.operator {
            Operator::P1 => Operator::P2,
            Operator::P2 => Operator::P1,
        }
    }

    /// A short label for result tables.
    pub fn label(&self) -> String {
        format!(
            "{}-{}-{}-{}",
            self.cc.name(),
            self.environment.name(),
            self.operator.name(),
            self.mobility.name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_static_bitrates() {
        match CcMode::paper_static(Environment::Urban) {
            CcMode::Static { bitrate_bps } => assert_eq!(bitrate_bps, 25e6),
            _ => panic!(),
        }
        match CcMode::paper_static(Environment::Rural) {
            CcMode::Static { bitrate_bps } => assert_eq!(bitrate_bps, 8e6),
            _ => panic!(),
        }
    }

    #[test]
    fn labels_read_like_the_figures() {
        let c = ExperimentConfig::paper(
            Environment::Rural,
            Operator::P1,
            Mobility::Air,
            CcMode::Gcc,
            1,
            0,
        );
        assert_eq!(c.label(), "GCC-Rural-P1-Air");
        assert_eq!(c.hold, SimDuration::from_secs(5));
        let g = ExperimentConfig::paper(
            Environment::Urban,
            Operator::P2,
            Mobility::Ground,
            CcMode::paper_scream(),
            1,
            0,
        );
        assert_eq!(g.label(), "SCReAM-Urban-P2-Grd");
        assert_eq!(g.hold, SimDuration::from_secs(45));
    }
}
