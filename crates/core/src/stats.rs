//! Statistics used by every figure: quantiles, CDFs, boxplot summaries.

/// Five-number boxplot summary plus the mean (the paper's boxplots mark the
/// mean with a purple triangle).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoxSummary {
    /// Smallest observation.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample count.
    pub n: usize,
}

/// Linear-interpolation quantile of `sorted` (must be ascending), `q` in
/// [0, 1].
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Quantile of an unsorted slice (copies and sorts).
pub fn quantile(values: &[f64], q: f64) -> f64 {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    assert!(!v.is_empty(), "quantile of empty slice");
    v.sort_by(|a, b| a.total_cmp(b));
    quantile_sorted(&v, q)
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Fraction of samples `<= threshold` — the "X % of the time below Y"
/// statements throughout the paper.
pub fn fraction_at_or_below(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().filter(|v| **v <= threshold).count() as f64 / values.len() as f64
}

/// Fraction of samples strictly `< threshold` (the SSIM "< 0.5" criterion).
pub fn fraction_below_strict(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().filter(|v| **v < threshold).count() as f64 / values.len() as f64
}

/// Build a boxplot summary.
pub fn box_summary(values: &[f64]) -> Option<BoxSummary> {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.total_cmp(b));
    Some(BoxSummary {
        min: v[0],
        q1: quantile_sorted(&v, 0.25),
        median: quantile_sorted(&v, 0.5),
        q3: quantile_sorted(&v, 0.75),
        max: v[v.len() - 1],
        mean: mean(&v),
        n: v.len(),
    })
}

/// Empirical CDF evaluated at the given grid points: returns
/// `(x, P[X <= x])` pairs — what the paper's CDF figures plot.
pub fn cdf_at(values: &[f64], grid: &[f64]) -> Vec<(f64, f64)> {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    v.sort_by(|a, b| a.total_cmp(b));
    grid.iter()
        .map(|x| {
            let count = v.partition_point(|s| *s <= *x);
            (*x, count as f64 / v.len().max(1) as f64)
        })
        .collect()
}

/// A log-spaced grid from `lo` to `hi` with `n` points (for latency CDFs
/// plotted on log axes, Figs. 5/13).
pub fn log_grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo && n >= 2);
    (0..n)
        .map(|i| lo * (hi / lo).powf(i as f64 / (n - 1) as f64))
        .collect()
}

/// A linear grid from `lo` to `hi` with `n` points.
pub fn lin_grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2);
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

/// Decades spanned by a [`LogHistogram`]: `[1e-6, 1e12)`.
const HIST_MIN_EXP: i32 = -6;
const HIST_MAX_EXP: i32 = 12;
/// Buckets per decade — 32 gives ≤ ~7.5 % relative quantile error.
const HIST_BUCKETS_PER_DECADE: usize = 32;
const HIST_BUCKETS: usize = (HIST_MAX_EXP - HIST_MIN_EXP) as usize * HIST_BUCKETS_PER_DECADE;

/// A mergeable HDR-style log-bucketed histogram for streaming campaign
/// aggregation: fixed memory (576 buckets) regardless of sample count,
/// deterministic merge (bucket counts add), and quantiles with bounded
/// *relative* error over `[1e-6, 1e12)` — wide enough for milliseconds,
/// Mbit/s, and per-frame latencies alike.
///
/// Values below the range land in `below`, non-finite samples in
/// `non_finite`; both are counted, never dropped silently. Exact
/// `min`/`max`/`sum` ride alongside so means are exact and quantile
/// endpoints clamp to observed extremes.
#[derive(Clone, Debug, PartialEq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    /// Samples `< 1e-6` (incl. zero and negatives).
    pub below: u64,
    /// NaN / infinite samples.
    pub non_finite: u64,
    /// In-range sample count (excludes `below` and `non_finite`).
    pub count: u64,
    /// Sum of in-range samples (exact, folded in submission order).
    pub sum: f64,
    /// Smallest in-range sample.
    pub min: f64,
    /// Largest in-range sample.
    pub max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; HIST_BUCKETS],
            below: 0,
            non_finite: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_of(v: f64) -> Option<usize> {
        if v <= 0.0 {
            return None; // log10 of non-positive is NaN, not "below range"
        }
        let idx = ((v.log10() - HIST_MIN_EXP as f64) * HIST_BUCKETS_PER_DECADE as f64).floor();
        if idx < 0.0 {
            None
        } else {
            Some((idx as usize).min(HIST_BUCKETS - 1))
        }
    }

    /// Geometric midpoint of bucket `i` — the value a quantile inside the
    /// bucket reports.
    fn bucket_mid(i: usize) -> f64 {
        let exp = HIST_MIN_EXP as f64 + (i as f64 + 0.5) / HIST_BUCKETS_PER_DECADE as f64;
        10f64.powf(exp)
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            self.non_finite += 1;
            return;
        }
        match Self::bucket_of(v) {
            None => self.below += 1,
            Some(i) => {
                self.counts[i] += 1;
                self.count += 1;
                self.sum += v;
                self.min = self.min.min(v);
                self.max = self.max.max(v);
            }
        }
    }

    /// Fold `other` into `self`. Merging is exact for counts and
    /// associative for bucket contents: `merge(a, b)` then quantile equals
    /// quantile over the concatenated streams up to bucket resolution.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.below += other.below;
        self.non_finite += other.non_finite;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total recorded samples including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.count + self.below + self.non_finite
    }

    /// Approximate quantile (`q` in [0, 1]) over in-range samples, clamped
    /// to the exact observed `[min, max]`. `None` when no in-range sample
    /// was recorded.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if c > 0 && seen > rank {
                return Some(Self::bucket_mid(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Exact mean of in-range samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Fraction of in-range samples `<= x` — the streaming analogue of
    /// [`fraction_at_or_below`]. Bucket-resolution approximate.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let cutoff = match Self::bucket_of(x.max(1e-300)) {
            None => return 0.0,
            Some(i) => i,
        };
        let at_or_below: u64 = self.counts[..=cutoff].iter().sum();
        at_or_below as f64 / self.count as f64
    }

    /// Bytes retained by this sketch — constant, independent of how many
    /// samples were recorded (the flat-memory guarantee the engine's
    /// streaming mode is built on).
    pub fn retained_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.counts.len() * std::mem::size_of::<u64>()
    }

    /// Iterate non-empty buckets as `(bucket_index, count)` — used by the
    /// canonical encoder.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (i, *c))
    }
}

impl BoxSummary {
    /// Render as the textual row the figure binaries print.
    pub fn row(&self, label: &str) -> String {
        format!(
            "{label:<28} min={:>9.3} q1={:>9.3} med={:>9.3} q3={:>9.3} max={:>9.3} mean={:>9.3} (n={})",
            self.min, self.q1, self.median, self.q3, self.max, self.mean, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantiles_of_known_sequence() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 100.0);
        assert!((quantile(&v, 0.5) - 50.5).abs() < 1e-9);
        assert!((quantile(&v, 0.25) - 25.75).abs() < 1e-9);
    }

    #[test]
    fn box_summary_basics() {
        let s = box_summary(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.n, 5);
        assert!(box_summary(&[]).is_none());
        assert!(box_summary(&[f64::NAN]).is_none());
    }

    #[test]
    fn cdf_reaches_one() {
        let v = vec![1.0, 2.0, 3.0];
        let cdf = cdf_at(&v, &[0.5, 1.0, 2.5, 3.0, 10.0]);
        assert_eq!(cdf[0].1, 0.0);
        assert!((cdf[1].1 - 1.0 / 3.0).abs() < 1e-12);
        assert!((cdf[2].1 - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cdf[3].1, 1.0);
        assert_eq!(cdf[4].1, 1.0);
    }

    #[test]
    fn fraction_below() {
        let v = vec![100.0, 200.0, 300.0, 400.0];
        assert_eq!(fraction_at_or_below(&v, 300.0), 0.75);
        assert_eq!(fraction_at_or_below(&v, 50.0), 0.0);
        assert!(fraction_at_or_below(&[], 1.0).is_nan());
    }

    #[test]
    fn grids() {
        let g = log_grid(10.0, 1000.0, 3);
        assert!((g[0] - 10.0).abs() < 1e-9);
        assert!((g[1] - 100.0).abs() < 1e-6);
        assert!((g[2] - 1000.0).abs() < 1e-6);
        let l = lin_grid(0.0, 10.0, 6);
        assert_eq!(l, vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn log_histogram_quantiles_track_exact() {
        let mut h = LogHistogram::new();
        let v: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        for &x in &v {
            h.record(x);
        }
        assert_eq!(h.count, 1000);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 1000.0);
        assert!((h.mean().unwrap() - mean(&v)).abs() < 1e-9);
        for q in [0.1, 0.5, 0.9, 0.99] {
            let exact = quantile(&v, q);
            let approx = h.quantile(q).unwrap();
            assert!(
                (approx - exact).abs() / exact < 0.08,
                "q={q}: approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn log_histogram_out_of_range_and_empty() {
        let mut h = LogHistogram::new();
        assert!(h.quantile(0.5).is_none());
        assert!(h.mean().is_none());
        h.record(0.0);
        h.record(-3.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.below, 2);
        assert_eq!(h.non_finite, 2);
        assert_eq!(h.count, 0);
        assert_eq!(h.total(), 4);
        // Beyond-range values clamp into the last bucket, never panic.
        h.record(1e50);
        assert_eq!(h.count, 1);
        assert_eq!(h.quantile(0.5), Some(1e50)); // clamped to observed max
    }

    #[test]
    fn log_histogram_merge_equals_concatenation() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for i in 1..500 {
            let x = (i as f64) * 0.37;
            a.record(x);
            both.record(x);
        }
        for i in 1..300 {
            let x = (i as f64) * 11.1;
            b.record(x);
            both.record(x);
        }
        a.merge(&b);
        assert_eq!(a, both);
        let before = a.retained_bytes();
        for i in 0..10_000 {
            a.record(i as f64 + 0.5);
        }
        assert_eq!(a.retained_bytes(), before, "sketch memory must be flat");
    }

    #[test]
    fn log_histogram_fraction_at_or_below() {
        let mut h = LogHistogram::new();
        for i in 1..=100 {
            h.record(i as f64);
        }
        let f = h.fraction_at_or_below(50.0);
        assert!((f - 0.5).abs() < 0.08, "got {f}");
        assert_eq!(h.fraction_at_or_below(1e-9), 0.0);
        assert!((h.fraction_at_or_below(1e11) - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_quantile_monotone(mut v in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            v.sort_by(|a, b| a.total_cmp(b));
            let mut last = f64::NEG_INFINITY;
            for i in 0..=10 {
                let q = quantile_sorted(&v, i as f64 / 10.0);
                prop_assert!(q >= last);
                last = q;
            }
        }

        #[test]
        fn prop_cdf_monotone(v in proptest::collection::vec(0f64..1e3, 1..100)) {
            let grid = lin_grid(0.0, 1e3, 50);
            let cdf = cdf_at(&v, &grid);
            let mut last = 0.0;
            for (_, p) in cdf {
                prop_assert!(p >= last);
                prop_assert!((0.0..=1.0).contains(&p));
                last = p;
            }
        }
    }
}
