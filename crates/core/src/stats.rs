//! Statistics used by every figure: quantiles, CDFs, boxplot summaries.

/// Five-number boxplot summary plus the mean (the paper's boxplots mark the
/// mean with a purple triangle).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoxSummary {
    /// Smallest observation.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample count.
    pub n: usize,
}

/// Linear-interpolation quantile of `sorted` (must be ascending), `q` in
/// [0, 1].
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Quantile of an unsorted slice (copies and sorts).
pub fn quantile(values: &[f64], q: f64) -> f64 {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    assert!(!v.is_empty(), "quantile of empty slice");
    v.sort_by(|a, b| a.total_cmp(b));
    quantile_sorted(&v, q)
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Fraction of samples `<= threshold` — the "X % of the time below Y"
/// statements throughout the paper.
pub fn fraction_at_or_below(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().filter(|v| **v <= threshold).count() as f64 / values.len() as f64
}

/// Fraction of samples strictly `< threshold` (the SSIM "< 0.5" criterion).
pub fn fraction_below_strict(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().filter(|v| **v < threshold).count() as f64 / values.len() as f64
}

/// Build a boxplot summary.
pub fn box_summary(values: &[f64]) -> Option<BoxSummary> {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.total_cmp(b));
    Some(BoxSummary {
        min: v[0],
        q1: quantile_sorted(&v, 0.25),
        median: quantile_sorted(&v, 0.5),
        q3: quantile_sorted(&v, 0.75),
        max: v[v.len() - 1],
        mean: mean(&v),
        n: v.len(),
    })
}

/// Empirical CDF evaluated at the given grid points: returns
/// `(x, P[X <= x])` pairs — what the paper's CDF figures plot.
pub fn cdf_at(values: &[f64], grid: &[f64]) -> Vec<(f64, f64)> {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    v.sort_by(|a, b| a.total_cmp(b));
    grid.iter()
        .map(|x| {
            let count = v.partition_point(|s| *s <= *x);
            (*x, count as f64 / v.len().max(1) as f64)
        })
        .collect()
}

/// A log-spaced grid from `lo` to `hi` with `n` points (for latency CDFs
/// plotted on log axes, Figs. 5/13).
pub fn log_grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo && n >= 2);
    (0..n)
        .map(|i| lo * (hi / lo).powf(i as f64 / (n - 1) as f64))
        .collect()
}

/// A linear grid from `lo` to `hi` with `n` points.
pub fn lin_grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2);
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

impl BoxSummary {
    /// Render as the textual row the figure binaries print.
    pub fn row(&self, label: &str) -> String {
        format!(
            "{label:<28} min={:>9.3} q1={:>9.3} med={:>9.3} q3={:>9.3} max={:>9.3} mean={:>9.3} (n={})",
            self.min, self.q1, self.median, self.q3, self.max, self.mean, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantiles_of_known_sequence() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 100.0);
        assert!((quantile(&v, 0.5) - 50.5).abs() < 1e-9);
        assert!((quantile(&v, 0.25) - 25.75).abs() < 1e-9);
    }

    #[test]
    fn box_summary_basics() {
        let s = box_summary(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.n, 5);
        assert!(box_summary(&[]).is_none());
        assert!(box_summary(&[f64::NAN]).is_none());
    }

    #[test]
    fn cdf_reaches_one() {
        let v = vec![1.0, 2.0, 3.0];
        let cdf = cdf_at(&v, &[0.5, 1.0, 2.5, 3.0, 10.0]);
        assert_eq!(cdf[0].1, 0.0);
        assert!((cdf[1].1 - 1.0 / 3.0).abs() < 1e-12);
        assert!((cdf[2].1 - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cdf[3].1, 1.0);
        assert_eq!(cdf[4].1, 1.0);
    }

    #[test]
    fn fraction_below() {
        let v = vec![100.0, 200.0, 300.0, 400.0];
        assert_eq!(fraction_at_or_below(&v, 300.0), 0.75);
        assert_eq!(fraction_at_or_below(&v, 50.0), 0.0);
        assert!(fraction_at_or_below(&[], 1.0).is_nan());
    }

    #[test]
    fn grids() {
        let g = log_grid(10.0, 1000.0, 3);
        assert!((g[0] - 10.0).abs() < 1e-9);
        assert!((g[1] - 100.0).abs() < 1e-6);
        assert!((g[2] - 1000.0).abs() < 1e-6);
        let l = lin_grid(0.0, 10.0, 6);
        assert_eq!(l, vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
    }

    proptest! {
        #[test]
        fn prop_quantile_monotone(mut v in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            v.sort_by(|a, b| a.total_cmp(b));
            let mut last = f64::NEG_INFINITY;
            for i in 0..=10 {
                let q = quantile_sorted(&v, i as f64 / 10.0);
                prop_assert!(q >= last);
                last = q;
            }
        }

        #[test]
        fn prop_cdf_monotone(v in proptest::collection::vec(0f64..1e3, 1..100)) {
            let grid = lin_grid(0.0, 1e3, 50);
            let cdf = cdf_at(&v, &grid);
            let mut last = 0.0;
            for (_, p) in cdf {
                prop_assert!(p >= last);
                prop_assert!((0.0..=1.0).contains(&p));
                last = p;
            }
        }
    }
}
