//! Crash-safe campaign completion journal.
//!
//! When the matrix engine runs with a cache directory, it keeps a
//! per-campaign append-only journal of which cells have completed
//! *durably* (their `RunMetrics` sealed and renamed into the cache). After
//! a `kill -9`, re-running the identical `MatrixSpec` replays the journal,
//! serves the recorded cells from the checksummed cache, and recomputes
//! only the remainder — bit-identical to an uninterrupted run, which the
//! `resilience_matrix` harness proves.
//!
//! # File format
//!
//! One journal per campaign at `<cache>/journal-<spec_hash>.rpavj`:
//!
//! ```text
//! header:  "RPVJ" ‖ version: u32 ‖ spec_hash: u64 ‖ n_cells: u64   (24 bytes)
//! records: index: u32 ‖ crc32(spec_hash ‖ index): u32              (8 bytes each)
//! ```
//!
//! Every record is appended with `fsync`, so the journal never claims a
//! completion that could not have reached disk. A torn tail (the process
//! died mid-append) fails the per-record CRC and is truncated away on
//! open; a header that disagrees with the current campaign (different
//! spec, different cell count, stale version) starts the journal fresh.
//! Records are idempotent — re-recording a completed cell is a no-op — and
//! order-independent, so any interleaving of parallel workers replays to
//! the same completion set.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::codec::crc32;

/// Bump on any change to the journal layout.
pub const JOURNAL_VERSION: u32 = 1;

/// Magic prefix of every journal file.
const JOURNAL_MAGIC: &[u8; 4] = b"RPVJ";

const HEADER_LEN: u64 = 4 + 4 + 8 + 8;
const RECORD_LEN: u64 = 8;

/// Append-only, fsync'd record of which cells of one campaign have
/// completed durably.
pub struct CampaignJournal {
    file: File,
    spec_hash: u64,
    completed: Vec<bool>,
    completed_count: usize,
}

/// Journal path for a campaign inside `dir`.
pub fn journal_path(dir: &Path, spec_hash: u64) -> PathBuf {
    dir.join(format!("journal-{spec_hash:016x}.rpavj"))
}

fn record_crc(spec_hash: u64, index: u32) -> u32 {
    let mut buf = [0u8; 12];
    buf[..8].copy_from_slice(&spec_hash.to_le_bytes());
    buf[8..].copy_from_slice(&index.to_le_bytes());
    crc32(&buf)
}

impl CampaignJournal {
    /// Open (or create) the journal for a campaign of `n_cells` cells
    /// identified by `spec_hash`, replaying any completions a previous
    /// process recorded.
    ///
    /// A mismatched header or an unreadable file starts fresh — resume is
    /// an optimisation, never a correctness risk. A torn tail is truncated
    /// so the next append lands on a record boundary.
    pub fn open(dir: &Path, spec_hash: u64, n_cells: usize) -> std::io::Result<CampaignJournal> {
        std::fs::create_dir_all(dir)?;
        let path = journal_path(dir, spec_hash);
        let mut completed = vec![false; n_cells];
        let mut completed_count = 0usize;

        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false) // existing records are the whole point: replay them
            .open(&path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;

        let header_ok = buf.len() >= HEADER_LEN as usize
            && &buf[..4] == JOURNAL_MAGIC
            && u32::from_le_bytes(buf[4..8].try_into().unwrap()) == JOURNAL_VERSION
            && u64::from_le_bytes(buf[8..16].try_into().unwrap()) == spec_hash
            && u64::from_le_bytes(buf[16..24].try_into().unwrap()) == n_cells as u64;

        if header_ok {
            let mut valid_len = HEADER_LEN as usize;
            for rec in buf[HEADER_LEN as usize..].chunks(RECORD_LEN as usize) {
                if rec.len() < RECORD_LEN as usize {
                    break; // torn tail: partial record
                }
                let index = u32::from_le_bytes(rec[..4].try_into().unwrap());
                let crc = u32::from_le_bytes(rec[4..8].try_into().unwrap());
                if crc != record_crc(spec_hash, index) || index as usize >= n_cells {
                    break; // torn or foreign bytes: stop replay here
                }
                if !completed[index as usize] {
                    completed[index as usize] = true;
                    completed_count += 1;
                }
                valid_len += RECORD_LEN as usize;
            }
            if valid_len < buf.len() {
                file.set_len(valid_len as u64)?;
                file.sync_all()?;
            }
            file.seek(SeekFrom::End(0))?;
        } else {
            // Fresh campaign (or stale/corrupt header): rewrite from scratch.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            let mut header = Vec::with_capacity(HEADER_LEN as usize);
            header.extend_from_slice(JOURNAL_MAGIC);
            header.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
            header.extend_from_slice(&spec_hash.to_le_bytes());
            header.extend_from_slice(&(n_cells as u64).to_le_bytes());
            file.write_all(&header)?;
            file.sync_all()?;
        }

        Ok(CampaignJournal {
            file,
            spec_hash,
            completed,
            completed_count,
        })
    }

    /// Record that `index` completed durably. Idempotent; each new record
    /// is fsync'd before returning so a later resume can trust it.
    pub fn record(&mut self, index: usize) -> std::io::Result<()> {
        if self.completed[index] {
            return Ok(());
        }
        let mut rec = [0u8; RECORD_LEN as usize];
        rec[..4].copy_from_slice(&(index as u32).to_le_bytes());
        rec[4..].copy_from_slice(&record_crc(self.spec_hash, index as u32).to_le_bytes());
        self.file.write_all(&rec)?;
        self.file.sync_data()?;
        self.completed[index] = true;
        self.completed_count += 1;
        Ok(())
    }

    /// Whether cell `index` was already recorded as complete.
    pub fn is_complete(&self, index: usize) -> bool {
        self.completed[index]
    }

    /// Number of cells recorded as complete.
    pub fn completed_count(&self) -> usize {
        self.completed_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rpav-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn records_replay_across_reopen() {
        let dir = tmp_dir("replay");
        {
            let mut j = CampaignJournal::open(&dir, 0xABCD, 10).unwrap();
            assert_eq!(j.completed_count(), 0);
            j.record(3).unwrap();
            j.record(7).unwrap();
            j.record(3).unwrap(); // idempotent
            assert_eq!(j.completed_count(), 2);
        }
        let j = CampaignJournal::open(&dir, 0xABCD, 10).unwrap();
        assert_eq!(j.completed_count(), 2);
        assert!(j.is_complete(3) && j.is_complete(7) && !j.is_complete(0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_spec_starts_fresh() {
        let dir = tmp_dir("fresh");
        {
            let mut j = CampaignJournal::open(&dir, 1, 4).unwrap();
            j.record(0).unwrap();
        }
        // Different spec hash → same path would differ, but force the case
        // by reusing the file under a changed cell count.
        let j = CampaignJournal::open(&dir, 1, 5).unwrap();
        assert_eq!(j.completed_count(), 0, "changed n_cells must not resume");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_trusted() {
        let dir = tmp_dir("torn");
        let path = journal_path(&dir, 42);
        {
            let mut j = CampaignJournal::open(&dir, 42, 8).unwrap();
            j.record(1).unwrap();
            j.record(5).unwrap();
        }
        // Simulate a kill mid-append: 3 stray bytes after the last record.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
        drop(f);
        {
            let j = CampaignJournal::open(&dir, 42, 8).unwrap();
            assert_eq!(j.completed_count(), 2, "torn tail must not add records");
        }
        // And a full-length but CRC-broken record is also rejected.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[9, 0, 0, 0, 1, 2, 3, 4]).unwrap();
        drop(f);
        let mut j = CampaignJournal::open(&dir, 42, 8).unwrap();
        assert_eq!(j.completed_count(), 2);
        // The truncated journal is immediately appendable again.
        j.record(6).unwrap();
        let j = CampaignJournal::open(&dir, 42, 8).unwrap();
        assert_eq!(j.completed_count(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
