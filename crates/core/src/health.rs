//! Per-path health estimation for the multi-operator failover subsystem.
//!
//! Each network leg gets one [`PathHealth`] on the sender side, fed from
//! three signal sources:
//!
//! 1. **Per-leg receiver reports** (`rpav-rtp`'s `PathReport`, 50 ms
//!    cadence): differentiated into RTT / loss / goodput samples and
//!    folded into EWMAs.
//! 2. **Report starvation**: a leg whose report stream goes silent is a
//!    leg whose downlink *or* uplink is gone — the shared
//!    feedback-starvation watchdog (`rpav-sim`) supplies the break
//!    detection fast path, reusing its startup-grace and recovery
//!    semantics.
//! 3. **Direct radio signals** (`rpav-lte`'s [`LinkHealthSignal`]): the
//!    modem knows a handover or radio-link failure is in progress before
//!    any end-to-end estimator can see it, so handover execution marks
//!    the leg degraded and RLF marks it dead until re-establishment.
//!
//! The classification is deliberately coarse — `Healthy`, `Degraded`,
//! `Dead` — because the failover controller only needs an ordering, plus
//! a scalar [`PathHealth::score`] to compare two non-dead legs with
//! hysteresis (see DESIGN.md §8).

use rpav_lte::LinkHealthSignal;
use rpav_sim::{FeedbackWatchdog, SimDuration, SimTime, WatchdogConfig, WatchdogState};

/// Coarse health classification of one leg.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthClass {
    /// Fresh reports, low loss, no radio events in progress.
    Healthy,
    /// Usable but impaired: lossy, mid-handover, or ramping back after a
    /// starvation episode.
    Degraded,
    /// No reports within the starvation timeout, or radio-link failure in
    /// progress — traffic on this leg is going nowhere.
    Dead,
}

/// Tunables for the estimator.
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// EWMA weight of a new sample (per report, 50 ms cadence).
    pub ewma_alpha: f64,
    /// Loss EWMA above this classifies the leg as degraded.
    pub loss_degraded: f64,
    /// Report-starvation detection (timeout marks the leg dead).
    pub watchdog: WatchdogConfig,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            ewma_alpha: 0.3,
            loss_degraded: 0.05,
            watchdog: WatchdogConfig::default(),
        }
    }
}

/// The watchdog tracks a bitrate target we do not use; any positive
/// constant keeps its state machine honest.
const DUMMY_TARGET_BPS: f64 = 1e6;

/// The shared watchdog never starves before its *first* feedback (a CC
/// ramp must survive its own startup), which leaves a hole: a leg whose
/// link never comes up at all — blacked out from t=0 — delivers no
/// report, so the grace never ends and the leg reads healthy forever
/// while the scheduler stripes into the void. A leg that has been up
/// this long without one report (not even an empty keepalive) never
/// came up: classify it dead until evidence arrives. Normal startups
/// see their first 50 ms-cadence report one to two orders of magnitude
/// sooner.
const FIRST_REPORT_DEADLINE: SimDuration = SimDuration::from_millis(1_000);

/// Sender-side health state of one network leg.
pub struct PathHealth {
    cfg: HealthConfig,
    starvation: FeedbackWatchdog,
    ewma_rtt_ms: Option<f64>,
    ewma_loss: Option<f64>,
    ewma_goodput_bps: Option<f64>,
    last_loss_sample: Option<f64>,
    ewma_loss_swing: Option<f64>,
    degraded_until: SimTime,
    dead_until: SimTime,
    born: Option<SimTime>,
    heard: bool,
    reports: u64,
    // Time-in-class accounting (driver-tick integration).
    last_acct: Option<SimTime>,
    time_healthy: SimDuration,
    time_degraded: SimDuration,
    time_dead: SimDuration,
}

impl PathHealth {
    /// Fresh estimator; unknown health reads as `Healthy` with a neutral
    /// score until evidence arrives (the watchdog's startup grace means a
    /// leg is never declared dead before its first report).
    pub fn new(cfg: HealthConfig) -> Self {
        PathHealth {
            starvation: FeedbackWatchdog::new(cfg.watchdog),
            cfg,
            ewma_rtt_ms: None,
            ewma_loss: None,
            ewma_goodput_bps: None,
            last_loss_sample: None,
            ewma_loss_swing: None,
            degraded_until: SimTime::ZERO,
            dead_until: SimTime::ZERO,
            born: None,
            heard: false,
            reports: 0,
            last_acct: None,
            time_healthy: SimDuration::ZERO,
            time_degraded: SimDuration::ZERO,
            time_dead: SimDuration::ZERO,
        }
    }

    /// Fold one differentiated report into the estimate. `loss` is the
    /// fraction lost over the report interval, `rtt_ms`/`goodput_bps` the
    /// interval's newest samples.
    pub fn on_report(&mut self, now: SimTime, rtt_ms: f64, loss: f64, goodput_bps: f64) {
        let a = self.cfg.ewma_alpha;
        let fold = |prev: Option<f64>, sample: f64| {
            Some(match prev {
                Some(p) => p + a * (sample - p),
                None => sample,
            })
        };
        let loss = loss.clamp(0.0, 1.0);
        self.ewma_rtt_ms = fold(self.ewma_rtt_ms, rtt_ms);
        self.ewma_loss = fold(self.ewma_loss, loss);
        self.ewma_goodput_bps = fold(self.ewma_goodput_bps, goodput_bps);
        if let Some(prev) = self.last_loss_sample {
            self.ewma_loss_swing = fold(self.ewma_loss_swing, (loss - prev).abs());
        }
        self.last_loss_sample = Some(loss);
        self.heard = true;
        self.reports += 1;
        self.starvation.on_feedback(now, DUMMY_TARGET_BPS);
    }

    /// A report arrived but carried no usable delta (nothing was offered
    /// to the leg in the interval): keep the starvation watchdog fed
    /// without inventing a quality sample.
    pub fn keepalive(&mut self, now: SimTime) {
        self.heard = true;
        self.starvation.on_feedback(now, DUMMY_TARGET_BPS);
    }

    /// Feed a direct radio-layer signal for this leg.
    pub fn on_signal(&mut self, sig: LinkHealthSignal) {
        match sig {
            LinkHealthSignal::HandoverExecuting { until } => {
                self.degraded_until = self.degraded_until.max(until);
            }
            LinkHealthSignal::RadioLinkFailure { until } => {
                self.dead_until = self.dead_until.max(until);
            }
        }
    }

    /// Advance the starvation watchdog and integrate time-in-class.
    /// Call once per driver tick.
    pub fn on_tick(&mut self, now: SimTime) {
        if self.born.is_none() {
            self.born = Some(now);
        }
        self.starvation.on_tick(now, DUMMY_TARGET_BPS);
        if let Some(prev) = self.last_acct {
            let dt = now.saturating_since(prev);
            match self.class(now) {
                HealthClass::Healthy => self.time_healthy += dt,
                HealthClass::Degraded => self.time_degraded += dt,
                HealthClass::Dead => self.time_dead += dt,
            }
        }
        self.last_acct = Some(now);
    }

    /// Classify the leg right now.
    pub fn class(&self, now: SimTime) -> HealthClass {
        if self.starvation.state() == WatchdogState::Starved || now < self.dead_until {
            return HealthClass::Dead;
        }
        // Stillborn link: up past the first-report deadline with no
        // report ever heard (see FIRST_REPORT_DEADLINE).
        if !self.heard
            && self
                .born
                .is_some_and(|b| now.saturating_since(b) >= FIRST_REPORT_DEADLINE)
        {
            return HealthClass::Dead;
        }
        if now < self.degraded_until
            || self.starvation.state() == WatchdogState::Recovering
            || self.ewma_loss.is_some_and(|l| l > self.cfg.loss_degraded)
        {
            return HealthClass::Degraded;
        }
        HealthClass::Healthy
    }

    /// Scalar quality score (higher is better) for hysteresis comparison
    /// between two non-dead legs. Units: negated milliseconds-equivalent
    /// (1 % loss EWMA costs the same as 10 ms of RTT). A leg with no
    /// samples yet scores a neutral 0 — worse than any good leg, better
    /// than a bad one.
    pub fn score(&self, now: SimTime) -> f64 {
        if self.class(now) == HealthClass::Dead {
            return f64::NEG_INFINITY;
        }
        match (self.ewma_rtt_ms, self.ewma_loss) {
            (Some(rtt), Some(loss)) => -(loss * 1_000.0 + rtt),
            _ => 0.0,
        }
    }

    /// Whether the current dead classification comes from a radio-layer
    /// RLF signal (as opposed to report starvation).
    pub fn dead_from_rlf(&self, now: SimTime) -> bool {
        now < self.dead_until
    }

    /// Whether the current degradation comes from a radio-layer handover
    /// signal.
    pub fn degraded_from_handover(&self, now: SimTime) -> bool {
        now < self.degraded_until
    }

    /// Smoothed RTT estimate, if any report arrived yet.
    pub fn rtt_ms(&self) -> Option<f64> {
        self.ewma_rtt_ms
    }

    /// Smoothed loss-fraction estimate.
    pub fn loss(&self) -> Option<f64> {
        self.ewma_loss
    }

    /// Smoothed goodput estimate (payload bits per second).
    pub fn goodput_bps(&self) -> Option<f64> {
        self.ewma_goodput_bps
    }

    /// Burst-loss indicator: EWMA of the absolute swing between
    /// consecutive report-interval loss samples, in loss-fraction units.
    ///
    /// A Gilbert–Elliott chain spends most of its time in the good state
    /// and erases heavily during short bad-state excursions, so its
    /// 50 ms report samples *alternate* between ≈0 and ≈`loss_bad` —
    /// a large swing. Independent (Bernoulli-like) loss at the same mean
    /// produces nearly constant samples — a small swing. The bonded
    /// scheduler uses this to size the Reed–Solomon parity count: bursty
    /// legs need multi-shard groups, uniform loss is cheaper to cover
    /// with one. Reads 0 until two loss samples have arrived.
    pub fn loss_burstiness(&self) -> f64 {
        self.ewma_loss_swing.unwrap_or(0.0)
    }

    /// Reports folded so far.
    pub fn reports(&self) -> u64 {
        self.reports
    }

    /// Integrated time spent in each class: `(healthy, degraded, dead)`.
    pub fn time_in_class(&self) -> (SimDuration, SimDuration, SimDuration) {
        (self.time_healthy, self.time_degraded, self.time_dead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(n)
    }

    fn drive_reports(h: &mut PathHealth, from_ms: u64, to_ms: u64, loss: f64) {
        let mut t = from_ms;
        while t < to_ms {
            h.on_tick(ms(t));
            if t % 50 == 0 {
                h.on_report(ms(t), 40.0, loss, 8e6);
            }
            t += 1;
        }
    }

    #[test]
    fn fresh_leg_is_healthy_through_startup_grace() {
        let mut h = PathHealth::new(HealthConfig::default());
        for t in 0..900 {
            h.on_tick(ms(t));
        }
        assert_eq!(h.class(ms(900)), HealthClass::Healthy);
        assert_eq!(h.score(ms(900)), 0.0);
    }

    #[test]
    fn stillborn_leg_reads_dead_after_first_report_deadline() {
        // A link blacked out from t=0 never produces a report: the
        // startup grace must end, or the scheduler stripes into the
        // void forever.
        let mut h = PathHealth::new(HealthConfig::default());
        for t in 0..2_000 {
            h.on_tick(ms(t));
        }
        assert_eq!(h.class(ms(2_000)), HealthClass::Dead);
        assert_eq!(h.score(ms(2_000)), f64::NEG_INFINITY);
        // The first report (even an empty keepalive) revives it.
        h.keepalive(ms(2_000));
        assert_ne!(h.class(ms(2_001)), HealthClass::Dead);
    }

    #[test]
    fn report_starvation_marks_dead_then_recovery_degraded() {
        let mut h = PathHealth::new(HealthConfig::default());
        drive_reports(&mut h, 0, 1_000, 0.0);
        assert_eq!(h.class(ms(1_000)), HealthClass::Healthy);
        // Silence: the default watchdog timeout (500 ms) marks it dead.
        for t in 1_000..1_700 {
            h.on_tick(ms(t));
        }
        assert_eq!(h.class(ms(1_700)), HealthClass::Dead);
        assert!(!h.dead_from_rlf(ms(1_700)), "starved, not RLF");
        assert_eq!(h.score(ms(1_700)), f64::NEG_INFINITY);
        // First report back: recovering → degraded, not instantly healthy.
        h.on_report(ms(1_700), 40.0, 0.0, 8e6);
        assert_eq!(h.class(ms(1_701)), HealthClass::Degraded);
    }

    #[test]
    fn loss_ewma_degrades_and_heals() {
        let mut h = PathHealth::new(HealthConfig::default());
        drive_reports(&mut h, 0, 500, 0.0);
        assert_eq!(h.class(ms(500)), HealthClass::Healthy);
        drive_reports(&mut h, 500, 1_000, 0.30);
        assert_eq!(h.class(ms(1_000)), HealthClass::Degraded);
        assert!(h.score(ms(1_000)) < -100.0);
        drive_reports(&mut h, 1_000, 3_000, 0.0);
        assert_eq!(h.class(ms(3_000)), HealthClass::Healthy);
    }

    #[test]
    fn radio_signals_override_estimates() {
        let mut h = PathHealth::new(HealthConfig::default());
        drive_reports(&mut h, 0, 200, 0.0);
        h.on_signal(LinkHealthSignal::HandoverExecuting { until: ms(300) });
        assert_eq!(h.class(ms(250)), HealthClass::Degraded);
        assert!(h.degraded_from_handover(ms(250)));
        h.on_signal(LinkHealthSignal::RadioLinkFailure { until: ms(600) });
        assert_eq!(h.class(ms(400)), HealthClass::Dead);
        assert!(h.dead_from_rlf(ms(400)));
        // Expired signals release their classification.
        drive_reports(&mut h, 600, 1_000, 0.0);
        assert_eq!(h.class(ms(1_000)), HealthClass::Healthy);
    }

    #[test]
    fn burstiness_separates_alternating_from_steady_loss() {
        // Gilbert–Elliott-style loss: report samples alternate between the
        // bad-state excursion and clean air. Same mean as the steady leg.
        let mut bursty = PathHealth::new(HealthConfig::default());
        let mut steady = PathHealth::new(HealthConfig::default());
        for i in 0..40u64 {
            let t = ms(i * 50);
            bursty.on_report(t, 40.0, if i % 2 == 0 { 0.5 } else { 0.0 }, 8e6);
            steady.on_report(t, 40.0, 0.25, 8e6);
        }
        assert!(
            bursty.loss_burstiness() > 0.4,
            "alternating loss should read bursty: {}",
            bursty.loss_burstiness()
        );
        assert!(
            steady.loss_burstiness() < 0.01,
            "uniform loss should read smooth: {}",
            steady.loss_burstiness()
        );
        // No samples yet → neutral zero, not NaN.
        let fresh = PathHealth::new(HealthConfig::default());
        assert_eq!(fresh.loss_burstiness(), 0.0);
    }

    #[test]
    fn time_in_class_integrates() {
        let mut h = PathHealth::new(HealthConfig::default());
        drive_reports(&mut h, 0, 1_000, 0.0);
        let (healthy, _, dead) = h.time_in_class();
        assert!(healthy >= SimDuration::from_millis(900), "{healthy:?}");
        assert_eq!(dead, SimDuration::ZERO);
    }
}
