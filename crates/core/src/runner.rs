//! Campaign execution: repeated runs per configuration, pooled series.
//!
//! The paper aggregates ≈130 runs over ≈90 flights; a campaign here is a
//! set of runs of one configuration with decorrelated channel randomness
//! (same deployment, different fading/shadowing/HET draws — the same areas
//! were flown repeatedly on different days).
//!
//! [`run_campaign`] is a thin wrapper over the matrix engine
//! ([`crate::exec`]): the runs execute on the engine's thread pool
//! (`RPAV_JOBS` workers) and land in run-index order, bit-identical to
//! the old sequential loop.

use crate::exec::{CampaignEngine, MatrixSpec};
use crate::metrics::RunMetrics;
use crate::scenario::ExperimentConfig;

/// All runs of one configuration.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    /// The configuration label (e.g. `GCC-Rural-P1-Air`).
    pub label: String,
    /// Per-run metrics.
    pub runs: Vec<RunMetrics>,
}

/// Run `n_runs` repetitions of `base`, varying the run index.
///
/// Superseded by [`CampaignSpec`](crate::spec::CampaignSpec): build
/// `CampaignSpec::new(base).runs(n)` and execute it through a
/// [`CampaignEngine`] — the spec is the one construction path shared with
/// the daemon's wire API, and `MatrixResult::campaigns()` recovers the
/// same pooled shape.
#[deprecated(note = "build a `CampaignSpec` and run it through `CampaignEngine`")]
pub fn run_campaign(base: ExperimentConfig, n_runs: u64) -> CampaignResult {
    let result = CampaignEngine::new().run(&MatrixSpec::new(base).runs(n_runs));
    CampaignResult {
        label: base.label(),
        runs: result.metrics().cloned().collect(),
    }
}

impl CampaignResult {
    /// All one-way-delay samples pooled (ms).
    pub fn owd_ms(&self) -> Vec<f64> {
        self.runs.iter().flat_map(|r| r.owd_ms()).collect()
    }

    /// All playback-latency samples pooled (ms).
    pub fn playback_latency_ms(&self) -> Vec<f64> {
        self.runs
            .iter()
            .flat_map(|r| r.playback_latency_ms())
            .collect()
    }

    /// All SSIM samples pooled (skips included as 0).
    pub fn ssim(&self) -> Vec<f64> {
        self.runs.iter().flat_map(|r| r.ssim_samples()).collect()
    }

    /// All HET samples pooled (ms).
    pub fn het_ms(&self) -> Vec<f64> {
        self.runs.iter().flat_map(|r| r.het_ms()).collect()
    }

    /// Per-run handover frequencies (HO/s) — the Fig. 4(a) boxplot points.
    pub fn ho_frequencies(&self) -> Vec<f64> {
        self.runs.iter().map(|r| r.ho_frequency()).collect()
    }

    /// Windowed goodput samples pooled (bps) — the Fig. 6 boxplot points.
    pub fn goodput_samples(&self) -> Vec<f64> {
        self.runs
            .iter()
            .flat_map(|r| {
                r.goodput_timeline(rpav_sim::SimDuration::from_secs(1))
                    .into_iter()
                    .map(|(_, bps)| bps)
            })
            .collect()
    }

    /// FPS samples pooled — the Fig. 7(a) CDF points.
    pub fn fps_samples(&self) -> Vec<f64> {
        self.runs
            .iter()
            .flat_map(|r| r.fps_timeline().into_iter().map(|(_, f)| f))
            .collect()
    }

    /// Mean stall rate per minute across runs.
    pub fn stalls_per_minute(&self) -> f64 {
        crate::stats::mean(
            &self
                .runs
                .iter()
                .map(|r| r.stalls_per_minute())
                .collect::<Vec<f64>>(),
        )
    }

    /// Pooled PER across runs.
    pub fn per(&self) -> f64 {
        let sent: u64 = self.runs.iter().map(|r| r.media_sent).sum();
        let recv: u64 = self.runs.iter().map(|r| r.media_received).sum();
        if sent == 0 {
            0.0
        } else {
            1.0 - recv as f64 / sent as f64
        }
    }

    /// Pooled before/after HO latency ratios (Fig. 9).
    pub fn ho_latency_ratios(&self) -> (Vec<f64>, Vec<f64>) {
        let mut before = Vec::new();
        let mut after = Vec::new();
        for r in &self.runs {
            let (b, a) = r.ho_latency_ratios();
            before.extend(b);
            after.extend(a);
        }
        (before, after)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::CcMode;
    use rpav_lte::Environment;

    #[test]
    #[allow(deprecated)]
    fn campaign_runs_and_pools() {
        let base = ExperimentConfig::builder()
            .cc(CcMode::paper_static(Environment::Rural))
            .seed(7)
            .hold_secs(1)
            .build();
        let c = run_campaign(base, 2);
        assert_eq!(c.runs.len(), 2);
        assert_eq!(c.label, "Static-Rural-P1-Air");
        assert!(!c.owd_ms().is_empty());
        assert!(!c.playback_latency_ms().is_empty());
        assert!(!c.ssim().is_empty());
        assert_eq!(c.ho_frequencies().len(), 2);
        assert!(c.per() < 0.05);
        // Runs differ (decorrelated channel randomness).
        assert_ne!(c.runs[0].media_received, c.runs[1].media_received);
    }
}
