//! Active/standby switching over N health-monitored legs.
//!
//! The controller is deliberately small: all the estimation intelligence
//! lives in [`PathHealth`](crate::health::PathHealth); this module only
//! decides *when the evidence justifies moving the media flow*. Two rules
//! (DESIGN.md §8):
//!
//! * **Break fast path** — the active leg is `Dead` (report starvation or
//!   radio-link failure) and the standby is not: switch after a short
//!   confirmation dwell (default 200 ms). Restoring video fast after a
//!   coverage hole is the whole point of carrying a second operator.
//! * **Quality path** — the active leg is merely `Degraded` while some
//!   standby is `Healthy`: switch only if that standby's score beats the
//!   active's by a hysteresis margin AND a minimum dwell has elapsed
//!   since the last switch. Hysteresis + dwell are the anti-flap
//!   guarantees: two comparable legs never ping-pong, and any single
//!   fault window produces at most one switch.
//!
//! With more than two legs, both rules pick the *best-scoring* eligible
//! standby (ties break toward the lowest index, which also makes the
//! two-leg case behave exactly as it always did). The controller is
//! *sticky*: there is no preferred/primary leg, so once traffic moves to
//! a standby it stays there until that leg in turn degrades. This is
//! what bounds switches at one per fault window.

use rpav_sim::{SimDuration, SimTime};

use crate::health::{HealthClass, PathHealth};

/// Why the controller moved the flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwitchCause {
    /// Active leg's report stream went silent (end-to-end break).
    Starvation,
    /// Active leg's modem reported a radio-link failure.
    RadioLinkFailure,
    /// Active leg's modem is executing a handover and the standby
    /// measured better.
    HandoverSignal,
    /// Active leg's measured quality (loss/RTT EWMA) fell behind a
    /// standby by more than the hysteresis margin.
    Degraded,
}

impl SwitchCause {
    /// Stable lowercase label for CSV export.
    pub fn label(&self) -> &'static str {
        match self {
            SwitchCause::Starvation => "starvation",
            SwitchCause::RadioLinkFailure => "rlf",
            SwitchCause::HandoverSignal => "handover",
            SwitchCause::Degraded => "degraded",
        }
    }
}

/// Anti-flap tunables.
#[derive(Clone, Copy, Debug)]
pub struct FailoverConfig {
    /// Minimum time between quality-motivated switches.
    pub min_dwell: SimDuration,
    /// Confirmation dwell before acting on a dead active leg.
    pub dead_dwell: SimDuration,
    /// How long the active leg must stay *continuously* degraded before
    /// the quality path may act. This is what keeps routine sub-second
    /// handovers and transient loss bursts from triggering switches — an
    /// idle standby always measures better than a loaded active leg, so
    /// a score comparison alone would flap on every radio event.
    pub degraded_dwell: SimDuration,
    /// Score margin (see [`PathHealth::score`] units) a standby must
    /// win by on the quality path.
    pub hysteresis: f64,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            min_dwell: SimDuration::from_secs(2),
            dead_dwell: SimDuration::from_millis(200),
            degraded_dwell: SimDuration::from_secs(1),
            hysteresis: 15.0,
        }
    }
}

/// A decision to move the media flow from `from` to `to`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwitchDecision {
    /// Index of the leg the flow leaves.
    pub from: usize,
    /// Index of the leg the flow moves to.
    pub to: usize,
    /// What justified the move.
    pub cause: SwitchCause,
}

/// The active/standby switching state machine over N legs.
pub struct FailoverController {
    cfg: FailoverConfig,
    active: usize,
    last_switch: SimTime,
    /// When the active leg was first observed dead (for `dead_dwell`);
    /// cleared when it comes back.
    dead_since: Option<SimTime>,
    /// When the active leg's current continuous degradation began (for
    /// `degraded_dwell`); cleared whenever it reads healthy.
    degraded_since: Option<SimTime>,
}

impl FailoverController {
    /// Start with leg 0 active.
    pub fn new(cfg: FailoverConfig) -> Self {
        FailoverController {
            cfg,
            active: 0,
            last_switch: SimTime::ZERO,
            dead_since: None,
            degraded_since: None,
        }
    }

    /// Index of the currently active leg.
    pub fn active(&self) -> usize {
        self.active
    }

    /// Evaluate the legs' health; returns a decision when the flow
    /// should move (the controller has already committed to it).
    pub fn on_tick(&mut self, now: SimTime, health: &[&PathHealth]) -> Option<SwitchDecision> {
        if health.len() < 2 || self.active >= health.len() {
            return None;
        }
        let a = health[self.active];
        let a_class = a.class(now);

        // Break fast path: any non-dead standby beats a dead active leg.
        if a_class == HealthClass::Dead {
            let since = *self.dead_since.get_or_insert(now);
            if now.saturating_since(since) >= self.cfg.dead_dwell {
                if let Some(to) = self.best_standby(now, health, HealthClass::Degraded, None) {
                    let cause = if a.dead_from_rlf(now) {
                        SwitchCause::RadioLinkFailure
                    } else {
                        SwitchCause::Starvation
                    };
                    return Some(self.commit(now, to, cause));
                }
            }
            return None;
        }
        self.dead_since = None;

        // Quality path: only sustained degradation justifies a move.
        if a_class == HealthClass::Degraded {
            let since = *self.degraded_since.get_or_insert(now);
            if now.saturating_since(since) >= self.cfg.degraded_dwell
                && now.saturating_since(self.last_switch) >= self.cfg.min_dwell
            {
                let bar = a.score(now) + self.cfg.hysteresis;
                if let Some(to) = self.best_standby(now, health, HealthClass::Healthy, Some(bar)) {
                    let cause = if a.degraded_from_handover(now) {
                        SwitchCause::HandoverSignal
                    } else {
                        SwitchCause::Degraded
                    };
                    return Some(self.commit(now, to, cause));
                }
            }
        } else {
            self.degraded_since = None;
        }
        None
    }

    /// Best-scoring standby whose class is at least `floor` (Degraded
    /// admits Degraded + Healthy; Healthy admits only Healthy) and, if
    /// `min_score` is set, whose score strictly exceeds it. Ties break
    /// toward the lowest index, so two legs reproduce the historical
    /// `standby = 1 - active` behaviour exactly.
    fn best_standby(
        &self,
        now: SimTime,
        health: &[&PathHealth],
        floor: HealthClass,
        min_score: Option<f64>,
    ) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, h) in health.iter().enumerate() {
            if i == self.active {
                continue;
            }
            let eligible = match h.class(now) {
                HealthClass::Healthy => true,
                HealthClass::Degraded => floor == HealthClass::Degraded,
                HealthClass::Dead => false,
            };
            if !eligible {
                continue;
            }
            let sc = h.score(now);
            if let Some(bar) = min_score {
                if sc <= bar {
                    continue;
                }
            }
            let better = match best {
                Some((_, b)) => sc > b,
                None => true,
            };
            if better {
                best = Some((i, sc));
            }
        }
        best.map(|(i, _)| i)
    }

    fn commit(&mut self, now: SimTime, to: usize, cause: SwitchCause) -> SwitchDecision {
        let from = self.active;
        self.active = to;
        self.last_switch = now;
        self.dead_since = None;
        self.degraded_since = None;
        SwitchDecision { from, to, cause }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::HealthConfig;
    use rpav_lte::LinkHealthSignal;

    fn ms(n: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(n)
    }

    /// Two legs with report streams we control per-tick.
    struct Rig {
        health: [PathHealth; 2],
        ctl: FailoverController,
    }

    impl Rig {
        fn new() -> Self {
            Rig {
                health: [
                    PathHealth::new(HealthConfig::default()),
                    PathHealth::new(HealthConfig::default()),
                ],
                ctl: FailoverController::new(FailoverConfig::default()),
            }
        }

        /// Advance one ms; `feed[i]` = leg i receives reports (50 ms
        /// cadence) with the given loss.
        fn tick(&mut self, t: u64, feed: [Option<f64>; 2]) -> Option<SwitchDecision> {
            for (i, h) in self.health.iter_mut().enumerate() {
                h.on_tick(ms(t));
                if t % 50 == 0 {
                    if let Some(loss) = feed[i] {
                        h.on_report(ms(t), 40.0, loss, 8e6);
                    }
                }
            }
            self.ctl.on_tick(ms(t), &[&self.health[0], &self.health[1]])
        }
    }

    #[test]
    fn starved_active_fails_over_once() {
        let mut rig = Rig::new();
        let mut switches = Vec::new();
        for t in 0..5_000 {
            // Leg 0 goes silent at t = 2 s; leg 1 keeps reporting.
            let feed0 = (t < 2_000).then_some(0.0);
            if let Some(d) = rig.tick(t, [feed0, Some(0.0)]) {
                switches.push((t, d));
            }
        }
        assert_eq!(switches.len(), 1, "{switches:?}");
        let (t, d) = switches[0];
        assert_eq!(d.from, 0);
        assert_eq!(d.to, 1);
        assert_eq!(d.cause, SwitchCause::Starvation);
        // Dead detection (watchdog timeout ≈ 500 ms) + 200 ms dwell.
        assert!((2_500..3_200).contains(&t), "switched at {t} ms");
        assert_eq!(rig.ctl.active(), 1);
    }

    #[test]
    fn degraded_active_waits_for_dwell_and_hysteresis() {
        let mut rig = Rig::new();
        let mut switches = Vec::new();
        for t in 0..8_000 {
            // Leg 0 runs 30 % loss from t = 1 s; leg 1 stays clean.
            let loss0 = if t >= 1_000 { 0.30 } else { 0.0 };
            if let Some(d) = rig.tick(t, [Some(loss0), Some(0.0)]) {
                switches.push((t, d));
            }
        }
        assert_eq!(switches.len(), 1, "{switches:?}");
        let (t, d) = switches[0];
        assert_eq!(d.cause, SwitchCause::Degraded);
        // min_dwell since t = 0 is 2 s: no switch can precede that.
        assert!(t >= 2_000, "switched at {t} ms before the minimum dwell");
    }

    #[test]
    fn comparable_legs_never_flap() {
        let mut rig = Rig::new();
        for t in 0..20_000 {
            // Both legs mildly and equally lossy: degraded, but neither
            // beats the other by the hysteresis margin.
            let d = rig.tick(t, [Some(0.06), Some(0.06)]);
            assert!(d.is_none(), "flapped at {t} ms: {d:?}");
        }
        assert_eq!(rig.ctl.active(), 0);
    }

    #[test]
    fn rlf_signal_beats_starvation_label() {
        let mut rig = Rig::new();
        let mut decision = None;
        for t in 0..4_000 {
            if t == 1_000 {
                rig.health[0].on_signal(LinkHealthSignal::RadioLinkFailure { until: ms(3_000) });
            }
            // Both report streams stay alive — only the RLF kills leg 0.
            if let Some(d) = rig.tick(t, [Some(0.0), Some(0.0)]) {
                decision = Some((t, d));
                break;
            }
        }
        let (t, d) = decision.expect("no switch on RLF");
        assert_eq!(d.cause, SwitchCause::RadioLinkFailure);
        assert!((1_200..1_500).contains(&t), "switched at {t} ms");
    }

    #[test]
    fn controller_tolerates_non_monotonic_clock() {
        let mut rig = Rig::new();
        for t in 0..3_000 {
            rig.tick(t, [Some(0.0), Some(0.0)]);
        }
        // A clock reading from the past (hostile replay, cross-leg skew
        // in a caller): saturating deltas must neither panic nor switch.
        let d = rig.ctl.on_tick(ms(100), &[&rig.health[0], &rig.health[1]]);
        assert!(d.is_none(), "switched on a backwards clock: {d:?}");
        assert_eq!(rig.ctl.active(), 0);
    }

    #[test]
    fn three_legs_pick_the_best_standby_then_cascade() {
        let mut h = [
            PathHealth::new(HealthConfig::default()),
            PathHealth::new(HealthConfig::default()),
            PathHealth::new(HealthConfig::default()),
        ];
        let mut ctl = FailoverController::new(FailoverConfig::default());
        let mut switches = Vec::new();
        for t in 0..12_000u64 {
            for (i, leg) in h.iter_mut().enumerate() {
                leg.on_tick(ms(t));
                if t % 50 == 0 {
                    // Leg 0 goes silent at 2 s; leg 2 at 6 s. Leg 1 runs
                    // mild loss so leg 2 out-scores it while both live.
                    let feed = match i {
                        0 => (t < 2_000).then_some(0.0),
                        1 => Some(0.02),
                        _ => (t < 6_000).then_some(0.0),
                    };
                    if let Some(loss) = feed {
                        leg.on_report(ms(t), 40.0, loss, 8e6);
                    }
                }
            }
            if let Some(d) = ctl.on_tick(ms(t), &[&h[0], &h[1], &h[2]]) {
                switches.push((t, d));
            }
        }
        assert_eq!(switches.len(), 2, "{switches:?}");
        // First break: leg 2 is the cleanest surviving standby.
        assert_eq!(switches[0].1.from, 0);
        assert_eq!(switches[0].1.to, 2);
        // When leg 2 dies in turn, the flow cascades onto leg 1.
        assert_eq!(switches[1].1.from, 2);
        assert_eq!(switches[1].1.to, 1);
        assert_eq!(ctl.active(), 1);
    }

    #[test]
    fn no_switch_when_both_legs_dead() {
        let mut rig = Rig::new();
        for t in 0..6_000 {
            // Both silent after 1 s.
            let feed = (t < 1_000).then_some(0.0);
            let d = rig.tick(t, [feed, feed]);
            assert!(d.is_none(), "switched to an equally dead leg: {d:?}");
        }
    }
}
