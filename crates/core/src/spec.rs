//! `CampaignSpec` — the versioned, canonical external representation of a
//! campaign.
//!
//! A campaign used to exist only as Rust constructor calls inside each
//! bench binary: a [`MatrixSpec`] built in code, an [`ExperimentConfig`]
//! base, and engine knobs smeared across ad-hoc `RPAV_*` env vars. The
//! daemon needs all of that *on the wire*, so this module defines the one
//! cross-process shape:
//!
//! * a `spec_version` field (documents reject unknown versions),
//! * **unknown-field rejection** at every object level (a typo'd knob is a
//!   typed [`SpecError`], never a silently-ignored default),
//! * **byte-stable canonical serialization** — [`CampaignSpec::to_json`]
//!   emits every field (defaults included) through the canonical
//!   [`Json`] serializer, so `from_json(to_json(s)).to_json() ==
//!   to_json(s)` bytewise and [`CampaignSpec::identity`] (FNV-1a over the
//!   canonical bytes) is a stable campaign identity.
//!
//! The identity chain: canonical bytes are stable → [`to_matrix`]
//! expansion is a pure function of the spec → every [`Cell::key`] and the
//! engine's journal `spec_hash` are pure functions of the expansion — so
//! one `CampaignSpec` JSON document, wherever it is parsed, lands on the
//! same cache entries and the same resume journal.
//!
//! [`to_matrix`]: CampaignSpec::to_matrix
//! [`Cell::key`]: crate::exec::Cell::key

use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

use rpav_lte::{Environment, Operator};
use rpav_netem::{FaultClause, FaultScript, PacketKind};
use rpav_sim::{SimDuration, SimTime, WatchdogConfig};

use crate::codec::fnv1a;
use crate::exec::{CcAxis, CellFault, EngineOptions, MatrixSpec, RunScheme};
use crate::json::{Json, JsonError};
use crate::multipath::MultipathScheme;
use crate::scenario::{CcMode, ExperimentConfig, Mobility};

/// The wire-format version this build emits and accepts.
pub const SPEC_VERSION: u64 = 1;

/// The largest cross-product a wire-submitted campaign may expand to.
/// [`CampaignSpec::from_json`] rejects anything larger *before* the spec
/// can be persisted or expanded, so a hostile `{"runs": u64::MAX}` is a
/// typed 400, not an allocation abort inside the daemon.
pub const MAX_CELLS: u64 = 1 << 20;

/// Typed failures of [`CampaignSpec::from_json`]. Every variant names the
/// JSON path of the offending field, so a daemon 400 response can point at
/// the culprit.
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// The document is not valid JSON.
    Json(JsonError),
    /// `spec_version` is present but not one this build understands.
    UnsupportedVersion {
        /// The version the document claimed.
        found: u64,
    },
    /// A required field is absent (`spec_version` is the only one).
    MissingField {
        /// JSON path of the absent field.
        path: String,
    },
    /// A field this schema does not define — typos must not silently
    /// become defaults.
    UnknownField {
        /// JSON path of the rejected field.
        path: String,
    },
    /// A field holds the wrong JSON type or an out-of-domain value.
    BadValue {
        /// JSON path of the field.
        path: String,
        /// What the schema wanted there.
        want: &'static str,
    },
    /// The axis cross-product (× `runs`) expands past [`MAX_CELLS`] — or
    /// overflows `u64` entirely. Caught at parse time so the document can
    /// never reach expansion or the spec archive.
    TooManyCells {
        /// The expanded count, when it fits in a `u64`.
        cells: Option<u64>,
        /// The cap it exceeded ([`MAX_CELLS`]).
        max: u64,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "invalid JSON: {e}"),
            SpecError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported spec_version {found} (this build speaks {SPEC_VERSION})"
                )
            }
            SpecError::MissingField { path } => write!(f, "missing required field `{path}`"),
            SpecError::UnknownField { path } => write!(f, "unknown field `{path}`"),
            SpecError::BadValue { path, want } => {
                write!(f, "bad value at `{path}`: expected {want}")
            }
            SpecError::TooManyCells { cells, max } => match cells {
                Some(n) => write!(f, "campaign expands to {n} cells (max {max})"),
                None => write!(f, "campaign cell count overflows u64 (max {max})"),
            },
        }
    }
}

impl std::error::Error for SpecError {}

impl From<JsonError> for SpecError {
    fn from(e: JsonError) -> Self {
        SpecError::Json(e)
    }
}

/// A complete, self-contained campaign: the [`MatrixSpec`] axes, the base
/// [`ExperimentConfig`], and the [`EngineOptions`] to execute under.
///
/// In-process, build one with the fluent methods (mirroring
/// [`MatrixSpec`]'s). Across processes, [`to_json`](Self::to_json) /
/// [`from_json`](Self::from_json) are the *only* construction path — the
/// JSON document is the API.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSpec {
    base: ExperimentConfig,
    environments: Vec<Environment>,
    operators: Vec<Operator>,
    mobilities: Vec<Mobility>,
    ccs: CcAxis,
    schemes: Vec<RunScheme>,
    faults: Vec<CellFault>,
    repairs: Vec<bool>,
    runs: u64,
    options: EngineOptions,
}

impl CampaignSpec {
    /// A single-cell campaign of `base` under default engine options.
    pub fn new(base: ExperimentConfig) -> Self {
        CampaignSpec {
            base,
            environments: Vec::new(),
            operators: Vec::new(),
            mobilities: Vec::new(),
            ccs: CcAxis::Base,
            schemes: Vec::new(),
            faults: Vec::new(),
            repairs: Vec::new(),
            runs: 1,
            options: EngineOptions::default(),
        }
    }

    /// Sweep flight environments.
    pub fn environments(mut self, envs: impl IntoIterator<Item = Environment>) -> Self {
        self.environments = envs.into_iter().collect();
        self
    }

    /// Sweep cellular operators.
    pub fn operators(mut self, ops: impl IntoIterator<Item = Operator>) -> Self {
        self.operators = ops.into_iter().collect();
        self
    }

    /// Sweep mobilities.
    pub fn mobilities(mut self, mobilities: impl IntoIterator<Item = Mobility>) -> Self {
        self.mobilities = mobilities.into_iter().collect();
        self
    }

    /// Sweep an explicit CC list.
    pub fn ccs(mut self, ccs: impl IntoIterator<Item = CcMode>) -> Self {
        self.ccs = CcAxis::List(ccs.into_iter().collect());
        self
    }

    /// Sweep the paper's three §3.2 workloads.
    pub fn paper_workloads(mut self) -> Self {
        self.ccs = CcAxis::PaperWorkloads;
        self
    }

    /// Sweep run schemes (mix pipeline and multipath cells).
    pub fn schemes(mut self, schemes: impl IntoIterator<Item = RunScheme>) -> Self {
        self.schemes = schemes.into_iter().collect();
        self
    }

    /// Sweep multipath schemes.
    pub fn multipath_schemes(mut self, schemes: impl IntoIterator<Item = MultipathScheme>) -> Self {
        self.schemes = schemes.into_iter().map(RunScheme::Multipath).collect();
        self
    }

    /// Sweep named fault campaigns.
    pub fn faults(mut self, faults: impl IntoIterator<Item = CellFault>) -> Self {
        self.faults = faults.into_iter().collect();
        self
    }

    /// Sweep the NACK/RTX repair switch.
    pub fn repairs(mut self, repairs: impl IntoIterator<Item = bool>) -> Self {
        self.repairs = repairs.into_iter().collect();
        self
    }

    /// Seed-decorrelated runs per cell.
    pub fn runs(mut self, runs: u64) -> Self {
        self.runs = runs;
        self
    }

    /// Replace the engine options.
    pub fn with_options(mut self, options: EngineOptions) -> Self {
        self.options = options;
        self
    }

    /// The base configuration.
    pub fn base(&self) -> &ExperimentConfig {
        &self.base
    }

    /// The engine options the campaign asks for.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// Expand into the [`MatrixSpec`] the engine executes. Pure: two
    /// parses of the same canonical bytes expand to identical cells (and
    /// hence identical cache keys and journal identity).
    pub fn to_matrix(&self) -> MatrixSpec {
        let mut m = MatrixSpec::new(self.base)
            .environments(self.environments.iter().copied())
            .operators(self.operators.iter().copied())
            .mobilities(self.mobilities.iter().copied())
            .schemes(self.schemes.iter().copied())
            .faults(self.faults.iter().cloned())
            .repairs(self.repairs.iter().copied())
            .runs(self.runs);
        match &self.ccs {
            CcAxis::Base => {}
            CcAxis::List(list) => m = m.ccs(list.iter().copied()),
            CcAxis::PaperWorkloads => m = m.paper_workloads(),
        }
        m
    }

    /// The campaign identity: FNV-1a over the canonical JSON bytes. The
    /// daemon keys campaigns (and their persisted spec documents) by it.
    pub fn identity(&self) -> u64 {
        fnv1a(self.to_json().as_bytes())
    }

    // ---- wire format ------------------------------------------------------

    /// Serialize to the canonical JSON document: every field present
    /// (defaults included), keys sorted, no whitespace. Byte-stable:
    /// re-parsing and re-serializing reproduces the identical bytes.
    pub fn to_json(&self) -> String {
        let ccs = match &self.ccs {
            CcAxis::Base => Json::Str("base".into()),
            CcAxis::PaperWorkloads => Json::Str("paper_workloads".into()),
            CcAxis::List(list) => Json::Array(list.iter().map(cc_to_json).collect()),
        };
        let doc = Json::Object(vec![
            ("spec_version".into(), Json::UInt(SPEC_VERSION)),
            ("base".into(), config_to_json(&self.base)),
            (
                "environments".into(),
                Json::Array(
                    self.environments
                        .iter()
                        .map(|e| Json::Str(env_name(*e).into()))
                        .collect(),
                ),
            ),
            (
                "operators".into(),
                Json::Array(
                    self.operators
                        .iter()
                        .map(|o| Json::Str(op_name(*o).into()))
                        .collect(),
                ),
            ),
            (
                "mobilities".into(),
                Json::Array(
                    self.mobilities
                        .iter()
                        .map(|m| Json::Str(mob_name(*m).into()))
                        .collect(),
                ),
            ),
            ("ccs".into(), ccs),
            (
                "schemes".into(),
                Json::Array(
                    self.schemes
                        .iter()
                        .map(|s| Json::Str(s.name().into()))
                        .collect(),
                ),
            ),
            (
                "faults".into(),
                Json::Array(self.faults.iter().map(fault_to_json).collect()),
            ),
            (
                "repairs".into(),
                Json::Array(self.repairs.iter().map(|&r| Json::Bool(r)).collect()),
            ),
            ("runs".into(), Json::UInt(self.runs)),
            ("options".into(), options_to_json(&self.options)),
        ]);
        doc.canonical()
    }

    /// Parse a `CampaignSpec` document. `spec_version` is required and
    /// must equal [`SPEC_VERSION`]; every other field defaults when
    /// absent; fields outside the schema are rejected.
    pub fn from_json(input: &str) -> Result<CampaignSpec, SpecError> {
        let doc = Json::parse(input)?;
        let fields = expect_obj(&doc, "")?;
        check_fields(
            fields,
            "",
            &[
                "spec_version",
                "base",
                "environments",
                "operators",
                "mobilities",
                "ccs",
                "schemes",
                "faults",
                "repairs",
                "runs",
                "options",
            ],
        )?;
        let version = match doc.get("spec_version") {
            None => {
                return Err(SpecError::MissingField {
                    path: "spec_version".into(),
                })
            }
            Some(v) => v.as_u64().ok_or(SpecError::BadValue {
                path: "spec_version".into(),
                want: "an unsigned integer",
            })?,
        };
        if version != SPEC_VERSION {
            return Err(SpecError::UnsupportedVersion { found: version });
        }

        let base = match doc.get("base") {
            Some(v) => config_from_json(v, "base")?,
            None => ExperimentConfig::builder().build(),
        };
        let environments = list_of(&doc, "environments", |v, p| {
            str_of(v, p).and_then(|s| env_from_name(s, p))
        })?;
        let operators = list_of(&doc, "operators", |v, p| {
            str_of(v, p).and_then(|s| op_from_name(s, p))
        })?;
        let mobilities = list_of(&doc, "mobilities", |v, p| {
            str_of(v, p).and_then(|s| mob_from_name(s, p))
        })?;
        let ccs = match doc.get("ccs") {
            None => CcAxis::Base,
            Some(Json::Str(s)) if s == "base" => CcAxis::Base,
            Some(Json::Str(s)) if s == "paper_workloads" => CcAxis::PaperWorkloads,
            Some(Json::Array(items)) => CcAxis::List(
                items
                    .iter()
                    .enumerate()
                    .map(|(i, v)| cc_from_json(v, &format!("ccs[{i}]")))
                    .collect::<Result<_, _>>()?,
            ),
            Some(_) => {
                return Err(SpecError::BadValue {
                    path: "ccs".into(),
                    want: "\"base\", \"paper_workloads\", or a CC list",
                })
            }
        };
        let schemes = list_of(&doc, "schemes", |v, p| {
            str_of(v, p).and_then(|s| scheme_from_name(s, p))
        })?;
        let faults = list_of(&doc, "faults", fault_from_json)?;
        let repairs = list_of(&doc, "repairs", bool_of)?;
        let runs = opt_u64(&doc, "runs")?.unwrap_or(1);
        let options = match doc.get("options") {
            Some(v) => options_from_json(v, "options")?,
            None => EngineOptions::default(),
        };

        let spec = CampaignSpec {
            base,
            environments,
            operators,
            mobilities,
            ccs,
            schemes,
            faults,
            repairs,
            runs,
            options,
        };
        match spec.to_matrix().cell_count() {
            Some(cells) if cells <= MAX_CELLS => Ok(spec),
            cells => Err(SpecError::TooManyCells {
                cells,
                max: MAX_CELLS,
            }),
        }
    }
}

// ---- leaf name tables -----------------------------------------------------

fn env_name(e: Environment) -> &'static str {
    match e {
        Environment::Urban => "urban",
        Environment::Rural => "rural",
    }
}

fn env_from_name(s: &str, path: &str) -> Result<Environment, SpecError> {
    match s {
        "urban" => Ok(Environment::Urban),
        "rural" => Ok(Environment::Rural),
        _ => Err(SpecError::BadValue {
            path: path.into(),
            want: "\"urban\" or \"rural\"",
        }),
    }
}

fn op_name(o: Operator) -> &'static str {
    match o {
        Operator::P1 => "p1",
        Operator::P2 => "p2",
    }
}

fn op_from_name(s: &str, path: &str) -> Result<Operator, SpecError> {
    match s {
        "p1" => Ok(Operator::P1),
        "p2" => Ok(Operator::P2),
        _ => Err(SpecError::BadValue {
            path: path.into(),
            want: "\"p1\" or \"p2\"",
        }),
    }
}

fn mob_name(m: Mobility) -> &'static str {
    match m {
        Mobility::Air => "air",
        Mobility::Ground => "ground",
    }
}

fn mob_from_name(s: &str, path: &str) -> Result<Mobility, SpecError> {
    match s {
        "air" => Ok(Mobility::Air),
        "ground" => Ok(Mobility::Ground),
        _ => Err(SpecError::BadValue {
            path: path.into(),
            want: "\"air\" or \"ground\"",
        }),
    }
}

fn scheme_from_name(s: &str, path: &str) -> Result<RunScheme, SpecError> {
    // Names match `RunScheme::name` exactly, so spec ↔ label vocabulary
    // never diverges.
    Ok(match s {
        "pipeline" => RunScheme::Pipeline,
        "single-path" => RunScheme::Multipath(MultipathScheme::SinglePath),
        "duplicate" => RunScheme::Multipath(MultipathScheme::Duplicate),
        "failover" => RunScheme::Multipath(MultipathScheme::Failover),
        "sel-duplicate" => RunScheme::Multipath(MultipathScheme::SelectiveDuplicate),
        "bonded" => RunScheme::Multipath(MultipathScheme::Bonded),
        _ => {
            return Err(SpecError::BadValue {
                path: path.into(),
                want: "a run-scheme name (\"pipeline\", \"single-path\", \"duplicate\", \"failover\", \"sel-duplicate\", \"bonded\")",
            })
        }
    })
}

fn kind_name(k: PacketKind) -> &'static str {
    match k {
        PacketKind::Media => "media",
        PacketKind::Feedback => "feedback",
        PacketKind::Probe => "probe",
    }
}

fn kind_from_name(s: &str, path: &str) -> Result<PacketKind, SpecError> {
    match s {
        "media" => Ok(PacketKind::Media),
        "feedback" => Ok(PacketKind::Feedback),
        "probe" => Ok(PacketKind::Probe),
        _ => Err(SpecError::BadValue {
            path: path.into(),
            want: "\"media\", \"feedback\", or \"probe\"",
        }),
    }
}

// ---- ExperimentConfig -----------------------------------------------------

fn cc_to_json(cc: &CcMode) -> Json {
    match cc {
        CcMode::Static { bitrate_bps } => Json::Object(vec![
            ("mode".into(), Json::Str("static".into())),
            ("bitrate_bps".into(), Json::Float(*bitrate_bps)),
        ]),
        CcMode::Gcc => Json::Object(vec![("mode".into(), Json::Str("gcc".into()))]),
        CcMode::Scream { ack_span } => Json::Object(vec![
            ("mode".into(), Json::Str("scream".into())),
            ("ack_span".into(), Json::UInt(*ack_span as u64)),
        ]),
    }
}

fn cc_from_json(v: &Json, path: &str) -> Result<CcMode, SpecError> {
    let fields = expect_obj(v, path)?;
    let mode = req_str(v, path, "mode")?;
    match mode {
        "static" => {
            check_fields(fields, path, &["mode", "bitrate_bps"])?;
            Ok(CcMode::Static {
                bitrate_bps: req_f64(v, path, "bitrate_bps")?,
            })
        }
        "gcc" => {
            check_fields(fields, path, &["mode"])?;
            Ok(CcMode::Gcc)
        }
        "scream" => {
            check_fields(fields, path, &["mode", "ack_span"])?;
            Ok(CcMode::Scream {
                ack_span: req_u64(v, path, "ack_span")? as usize,
            })
        }
        _ => Err(SpecError::BadValue {
            path: format!("{path}.mode"),
            want: "\"static\", \"gcc\", or \"scream\"",
        }),
    }
}

fn watchdog_to_json(w: &WatchdogConfig) -> Json {
    Json::Object(vec![
        ("enabled".into(), Json::Bool(w.enabled)),
        ("timeout_us".into(), Json::UInt(w.timeout.as_micros())),
        (
            "backoff_interval_us".into(),
            Json::UInt(w.backoff_interval.as_micros()),
        ),
        ("backoff_factor".into(), Json::Float(w.backoff_factor)),
        ("floor_bps".into(), Json::Float(w.floor_bps)),
        ("ramp_factor".into(), Json::Float(w.ramp_factor)),
    ])
}

fn watchdog_from_json(v: &Json, path: &str) -> Result<WatchdogConfig, SpecError> {
    let fields = expect_obj(v, path)?;
    check_fields(
        fields,
        path,
        &[
            "enabled",
            "timeout_us",
            "backoff_interval_us",
            "backoff_factor",
            "floor_bps",
            "ramp_factor",
        ],
    )?;
    let mut w = WatchdogConfig::default();
    if let Some(b) = opt_field(v, path, "enabled", bool_of)? {
        w.enabled = b;
    }
    if let Some(us) = opt_field(v, path, "timeout_us", u64_of)? {
        w.timeout = SimDuration::from_micros(us);
    }
    if let Some(us) = opt_field(v, path, "backoff_interval_us", u64_of)? {
        w.backoff_interval = SimDuration::from_micros(us);
    }
    if let Some(x) = opt_field(v, path, "backoff_factor", f64_of)? {
        w.backoff_factor = x;
    }
    if let Some(x) = opt_field(v, path, "floor_bps", f64_of)? {
        w.floor_bps = x;
    }
    if let Some(x) = opt_field(v, path, "ramp_factor", f64_of)? {
        w.ramp_factor = x;
    }
    Ok(w)
}

fn config_to_json(c: &ExperimentConfig) -> Json {
    Json::Object(vec![
        (
            "environment".into(),
            Json::Str(env_name(c.environment).into()),
        ),
        ("operator".into(), Json::Str(op_name(c.operator).into())),
        ("mobility".into(), Json::Str(mob_name(c.mobility).into())),
        ("cc".into(), cc_to_json(&c.cc)),
        ("seed".into(), Json::UInt(c.seed)),
        ("run_index".into(), Json::UInt(c.run_index)),
        ("hold_us".into(), Json::UInt(c.hold.as_micros())),
        ("ground_sweeps".into(), Json::UInt(c.ground_sweeps as u64)),
        ("drop_on_latency".into(), Json::Bool(c.drop_on_latency)),
        (
            "hysteresis_db".into(),
            c.hysteresis_override_db.map_or(Json::Null, Json::Float),
        ),
        (
            "ttt_ms".into(),
            c.ttt_override_ms.map_or(Json::Null, Json::UInt),
        ),
        (
            "jitter_target_ms".into(),
            c.jitter_target_override_ms.map_or(Json::Null, Json::UInt),
        ),
        ("watchdog".into(), watchdog_to_json(&c.watchdog)),
        ("repair".into(), Json::Bool(c.repair)),
        (
            "leg_cap_bps".into(),
            c.leg_cap_bps.map_or(Json::Null, |(a, b)| {
                Json::Array(vec![Json::Float(a), Json::Float(b)])
            }),
        ),
        ("fec_cap".into(), Json::Float(c.fec_cap)),
        ("n_legs".into(), Json::UInt(c.n_legs as u64)),
        ("coupled_cc".into(), Json::Bool(c.coupled_cc)),
    ])
}

fn config_from_json(v: &Json, path: &str) -> Result<ExperimentConfig, SpecError> {
    let fields = expect_obj(v, path)?;
    check_fields(
        fields,
        path,
        &[
            "environment",
            "operator",
            "mobility",
            "cc",
            "seed",
            "run_index",
            "hold_us",
            "ground_sweeps",
            "drop_on_latency",
            "hysteresis_db",
            "ttt_ms",
            "jitter_target_ms",
            "watchdog",
            "repair",
            "leg_cap_bps",
            "fec_cap",
            "n_legs",
            "coupled_cc",
        ],
    )?;
    let mut b = ExperimentConfig::builder();
    if let Some(s) = opt_field(v, path, "environment", str_owned)? {
        b = b.environment(env_from_name(&s, &format!("{path}.environment"))?);
    }
    if let Some(s) = opt_field(v, path, "operator", str_owned)? {
        b = b.operator(op_from_name(&s, &format!("{path}.operator"))?);
    }
    if let Some(s) = opt_field(v, path, "mobility", str_owned)? {
        b = b.mobility(mob_from_name(&s, &format!("{path}.mobility"))?);
    }
    if let Some(cc) = v.get("cc") {
        b = b.cc(cc_from_json(cc, &format!("{path}.cc"))?);
    }
    if let Some(seed) = opt_field(v, path, "seed", u64_of)? {
        b = b.seed(seed);
    }
    if let Some(r) = opt_field(v, path, "run_index", u64_of)? {
        b = b.run_index(r);
    }
    if let Some(us) = opt_field(v, path, "hold_us", u64_of)? {
        b = b.hold(SimDuration::from_micros(us));
    }
    if let Some(n) = opt_field(v, path, "ground_sweeps", u64_of)? {
        b = b.ground_sweeps(n as usize);
    }
    if let Some(on) = opt_field(v, path, "drop_on_latency", bool_of)? {
        b = b.drop_on_latency(on);
    }
    if let Some(db) = opt_nullable(v, path, "hysteresis_db", f64_of)? {
        b = b.hysteresis_db(db);
    }
    if let Some(ms) = opt_nullable(v, path, "ttt_ms", u64_of)? {
        b = b.ttt_ms(ms);
    }
    if let Some(ms) = opt_nullable(v, path, "jitter_target_ms", u64_of)? {
        b = b.jitter_target_ms(ms);
    }
    if let Some(w) = v.get("watchdog") {
        b = b.watchdog(watchdog_from_json(w, &format!("{path}.watchdog"))?);
    }
    if let Some(on) = opt_field(v, path, "repair", bool_of)? {
        b = b.repair(on);
    }
    if let Some(caps) = opt_nullable(v, path, "leg_cap_bps", |v, p| {
        let items = v.as_array().ok_or(SpecError::BadValue {
            path: p.into(),
            want: "null or [primary_bps, secondary_bps]",
        })?;
        if items.len() != 2 {
            return Err(SpecError::BadValue {
                path: p.into(),
                want: "null or [primary_bps, secondary_bps]",
            });
        }
        Ok((
            f64_of(&items[0], &format!("{p}[0]"))?,
            f64_of(&items[1], &format!("{p}[1]"))?,
        ))
    })? {
        b = b.leg_caps(caps.0, caps.1);
    }
    if let Some(cap) = opt_field(v, path, "fec_cap", f64_of)? {
        b = b.fec_cap(cap);
    }
    if let Some(n) = opt_field(v, path, "n_legs", u64_of)? {
        b = b.n_legs(n as usize);
    }
    if let Some(on) = opt_field(v, path, "coupled_cc", bool_of)? {
        b = b.coupled_cc(on);
    }
    Ok(b.build())
}

// ---- fault scripts --------------------------------------------------------

fn clause_to_json(clause: &FaultClause) -> Json {
    let mut fields: Vec<(String, Json)> = Vec::new();
    let kind_field = |name: &'static str| (String::from("kind"), Json::Str(name.into()));
    match clause {
        FaultClause::Blackout { from, until } => {
            fields.push(kind_field("blackout"));
            fields.push(("from_us".into(), Json::UInt(from.as_micros())));
            fields.push(("until_us".into(), Json::UInt(until.as_micros())));
        }
        FaultClause::KindBlackout { from, until, kind } => {
            fields.push(kind_field("kind_blackout"));
            fields.push(("from_us".into(), Json::UInt(from.as_micros())));
            fields.push(("until_us".into(), Json::UInt(until.as_micros())));
            fields.push(("packet".into(), Json::Str(kind_name(*kind).into())));
        }
        FaultClause::Loss {
            from,
            until,
            prob,
            kind,
        } => {
            fields.push(kind_field("loss"));
            fields.push(("from_us".into(), Json::UInt(from.as_micros())));
            fields.push(("until_us".into(), Json::UInt(until.as_micros())));
            fields.push(("prob".into(), Json::Float(*prob)));
            fields.push((
                "packet".into(),
                kind.map_or(Json::Null, |k| Json::Str(kind_name(k).into())),
            ));
        }
        FaultClause::BurstLoss {
            from,
            until,
            p_enter,
            p_exit,
            loss_bad,
            kind,
        } => {
            fields.push(kind_field("burst_loss"));
            fields.push(("from_us".into(), Json::UInt(from.as_micros())));
            fields.push(("until_us".into(), Json::UInt(until.as_micros())));
            fields.push(("p_enter".into(), Json::Float(*p_enter)));
            fields.push(("p_exit".into(), Json::Float(*p_exit)));
            fields.push(("loss_bad".into(), Json::Float(*loss_bad)));
            fields.push((
                "packet".into(),
                kind.map_or(Json::Null, |k| Json::Str(kind_name(k).into())),
            ));
        }
        FaultClause::DelaySpike { from, until, extra } => {
            fields.push(kind_field("delay_spike"));
            fields.push(("from_us".into(), Json::UInt(from.as_micros())));
            fields.push(("until_us".into(), Json::UInt(until.as_micros())));
            fields.push(("extra_us".into(), Json::UInt(extra.as_micros())));
        }
        FaultClause::Duplicate {
            from,
            until,
            prob,
            kind,
        } => {
            fields.push(kind_field("duplicate"));
            fields.push(("from_us".into(), Json::UInt(from.as_micros())));
            fields.push(("until_us".into(), Json::UInt(until.as_micros())));
            fields.push(("prob".into(), Json::Float(*prob)));
            fields.push((
                "packet".into(),
                kind.map_or(Json::Null, |k| Json::Str(kind_name(k).into())),
            ));
        }
        FaultClause::Corrupt {
            from,
            until,
            prob,
            kind,
        } => {
            fields.push(kind_field("corrupt"));
            fields.push(("from_us".into(), Json::UInt(from.as_micros())));
            fields.push(("until_us".into(), Json::UInt(until.as_micros())));
            fields.push(("prob".into(), Json::Float(*prob)));
            fields.push((
                "packet".into(),
                kind.map_or(Json::Null, |k| Json::Str(kind_name(k).into())),
            ));
        }
        FaultClause::Reorder {
            from,
            until,
            prob,
            max_displacement,
        } => {
            fields.push(kind_field("reorder"));
            fields.push(("from_us".into(), Json::UInt(from.as_micros())));
            fields.push(("until_us".into(), Json::UInt(until.as_micros())));
            fields.push(("prob".into(), Json::Float(*prob)));
            fields.push(("max_displacement".into(), Json::UInt(*max_displacement)));
        }
        FaultClause::CoverageHole {
            x,
            y,
            radius_m,
            min_alt_m,
        } => {
            fields.push(kind_field("coverage_hole"));
            fields.push(("x".into(), Json::Float(*x)));
            fields.push(("y".into(), Json::Float(*y)));
            fields.push(("radius_m".into(), Json::Float(*radius_m)));
            fields.push(("min_alt_m".into(), Json::Float(*min_alt_m)));
        }
    }
    Json::Object(fields)
}

fn clause_from_json(v: &Json, path: &str) -> Result<FaultClause, SpecError> {
    let fields = expect_obj(v, path)?;
    let kind = req_str(v, path, "kind")?;
    let from =
        || -> Result<SimTime, SpecError> { Ok(SimTime::from_micros(req_u64(v, path, "from_us")?)) };
    let until = || -> Result<SimTime, SpecError> {
        Ok(SimTime::from_micros(req_u64(v, path, "until_us")?))
    };
    let packet = |fieldless: bool| -> Result<Option<PacketKind>, SpecError> {
        if fieldless {
            return Ok(None);
        }
        opt_nullable(v, path, "packet", |v, p| {
            str_of(v, p).and_then(|s| kind_from_name(s, p))
        })
    };
    match kind {
        "blackout" => {
            check_fields(fields, path, &["kind", "from_us", "until_us"])?;
            Ok(FaultClause::Blackout {
                from: from()?,
                until: until()?,
            })
        }
        "kind_blackout" => {
            check_fields(fields, path, &["kind", "from_us", "until_us", "packet"])?;
            Ok(FaultClause::KindBlackout {
                from: from()?,
                until: until()?,
                kind: kind_from_name(req_str(v, path, "packet")?, &format!("{path}.packet"))?,
            })
        }
        "loss" => {
            check_fields(
                fields,
                path,
                &["kind", "from_us", "until_us", "prob", "packet"],
            )?;
            Ok(FaultClause::Loss {
                from: from()?,
                until: until()?,
                prob: req_f64(v, path, "prob")?,
                kind: packet(false)?,
            })
        }
        "burst_loss" => {
            check_fields(
                fields,
                path,
                &[
                    "kind", "from_us", "until_us", "p_enter", "p_exit", "loss_bad", "packet",
                ],
            )?;
            Ok(FaultClause::BurstLoss {
                from: from()?,
                until: until()?,
                p_enter: req_f64(v, path, "p_enter")?,
                p_exit: req_f64(v, path, "p_exit")?,
                loss_bad: req_f64(v, path, "loss_bad")?,
                kind: packet(false)?,
            })
        }
        "delay_spike" => {
            check_fields(fields, path, &["kind", "from_us", "until_us", "extra_us"])?;
            Ok(FaultClause::DelaySpike {
                from: from()?,
                until: until()?,
                extra: SimDuration::from_micros(req_u64(v, path, "extra_us")?),
            })
        }
        "duplicate" => {
            check_fields(
                fields,
                path,
                &["kind", "from_us", "until_us", "prob", "packet"],
            )?;
            Ok(FaultClause::Duplicate {
                from: from()?,
                until: until()?,
                prob: req_f64(v, path, "prob")?,
                kind: packet(false)?,
            })
        }
        "corrupt" => {
            check_fields(
                fields,
                path,
                &["kind", "from_us", "until_us", "prob", "packet"],
            )?;
            Ok(FaultClause::Corrupt {
                from: from()?,
                until: until()?,
                prob: req_f64(v, path, "prob")?,
                kind: packet(false)?,
            })
        }
        "reorder" => {
            check_fields(
                fields,
                path,
                &["kind", "from_us", "until_us", "prob", "max_displacement"],
            )?;
            Ok(FaultClause::Reorder {
                from: from()?,
                until: until()?,
                prob: req_f64(v, path, "prob")?,
                max_displacement: req_u64(v, path, "max_displacement")?,
            })
        }
        "coverage_hole" => {
            check_fields(fields, path, &["kind", "x", "y", "radius_m", "min_alt_m"])?;
            Ok(FaultClause::CoverageHole {
                x: req_f64(v, path, "x")?,
                y: req_f64(v, path, "y")?,
                radius_m: req_f64(v, path, "radius_m")?,
                min_alt_m: req_f64(v, path, "min_alt_m")?,
            })
        }
        _ => Err(SpecError::BadValue {
            path: format!("{path}.kind"),
            want: "a fault-clause kind",
        }),
    }
}

fn script_to_json(script: &FaultScript) -> Json {
    Json::Array(script.clauses().iter().map(clause_to_json).collect())
}

fn script_from_json(v: &Json, path: &str) -> Result<FaultScript, SpecError> {
    let items = v.as_array().ok_or(SpecError::BadValue {
        path: path.into(),
        want: "an array of fault clauses",
    })?;
    let mut script = FaultScript::default();
    for (i, item) in items.iter().enumerate() {
        script = script.with_clause(clause_from_json(item, &format!("{path}[{i}]"))?);
    }
    Ok(script)
}

fn opt_script_to_json(script: &Option<FaultScript>) -> Json {
    script.as_ref().map_or(Json::Null, script_to_json)
}

fn fault_to_json(fault: &CellFault) -> Json {
    Json::Object(vec![
        ("name".into(), Json::Str(fault.name.clone())),
        ("uplink".into(), opt_script_to_json(&fault.uplink)),
        ("downlink".into(), opt_script_to_json(&fault.downlink)),
        ("secondary".into(), opt_script_to_json(&fault.secondary)),
        (
            "extra".into(),
            Json::Array(fault.extra.iter().map(opt_script_to_json).collect()),
        ),
    ])
}

fn fault_from_json(v: &Json, path: &str) -> Result<CellFault, SpecError> {
    let fields = expect_obj(v, path)?;
    check_fields(
        fields,
        path,
        &["name", "uplink", "downlink", "secondary", "extra"],
    )?;
    let name = opt_field(v, path, "name", str_owned)?.unwrap_or_default();
    let uplink = opt_nullable(v, path, "uplink", script_from_json)?;
    let downlink = opt_nullable(v, path, "downlink", script_from_json)?;
    let secondary = opt_nullable(v, path, "secondary", script_from_json)?;
    let extra = match v.get("extra") {
        None => Vec::new(),
        Some(Json::Array(items)) => items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let p = format!("{path}.extra[{i}]");
                if item.is_null() {
                    Ok(None)
                } else {
                    script_from_json(item, &p).map(Some)
                }
            })
            .collect::<Result<_, _>>()?,
        Some(_) => {
            return Err(SpecError::BadValue {
                path: format!("{path}.extra"),
                want: "an array of per-leg scripts (null entries allowed)",
            })
        }
    };
    Ok(CellFault {
        name,
        uplink,
        downlink,
        secondary,
        extra,
    })
}

// ---- EngineOptions --------------------------------------------------------

fn options_to_json(o: &EngineOptions) -> Json {
    Json::Object(vec![
        (
            "jobs".into(),
            o.jobs.map_or(Json::Null, |j| Json::UInt(j as u64)),
        ),
        (
            "batch".into(),
            o.batch.map_or(Json::Null, |b| Json::UInt(b as u64)),
        ),
        (
            "cache_dir".into(),
            o.cache_dir
                .as_ref()
                .map_or(Json::Null, |p| Json::Str(p.display().to_string())),
        ),
        ("max_attempts".into(), Json::UInt(o.max_attempts as u64)),
        (
            "stuck_budget_us".into(),
            Json::UInt(o.stuck_budget.as_micros() as u64),
        ),
        ("reference_tick".into(), Json::Bool(o.reference_tick)),
    ])
}

fn options_from_json(v: &Json, path: &str) -> Result<EngineOptions, SpecError> {
    let fields = expect_obj(v, path)?;
    check_fields(
        fields,
        path,
        &[
            "jobs",
            "batch",
            "cache_dir",
            "max_attempts",
            "stuck_budget_us",
            "reference_tick",
        ],
    )?;
    let mut o = EngineOptions::default();
    if let Some(jobs) = opt_nullable(v, path, "jobs", u64_of)? {
        o.jobs = Some((jobs as usize).max(1));
    }
    if let Some(batch) = opt_nullable(v, path, "batch", u64_of)? {
        o.batch = Some((batch as usize).max(1));
    }
    if let Some(dir) = opt_nullable(v, path, "cache_dir", str_owned)? {
        o.cache_dir = Some(PathBuf::from(dir));
    }
    if let Some(a) = opt_field(v, path, "max_attempts", u64_of)? {
        o.max_attempts = (a as u32).max(1);
    }
    if let Some(us) = opt_field(v, path, "stuck_budget_us", u64_of)? {
        o.stuck_budget = Duration::from_micros(us);
    }
    if let Some(on) = opt_field(v, path, "reference_tick", bool_of)? {
        o.reference_tick = on;
    }
    Ok(o)
}

// ---- parse helpers --------------------------------------------------------

fn expect_obj<'a>(v: &'a Json, path: &str) -> Result<&'a [(String, Json)], SpecError> {
    v.as_object().ok_or(SpecError::BadValue {
        path: if path.is_empty() {
            "(document)".into()
        } else {
            path.into()
        },
        want: "an object",
    })
}

fn check_fields(fields: &[(String, Json)], path: &str, allowed: &[&str]) -> Result<(), SpecError> {
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(SpecError::UnknownField {
                path: if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                },
            });
        }
    }
    Ok(())
}

fn u64_of(v: &Json, path: &str) -> Result<u64, SpecError> {
    v.as_u64().ok_or(SpecError::BadValue {
        path: path.into(),
        want: "an unsigned integer",
    })
}

fn f64_of(v: &Json, path: &str) -> Result<f64, SpecError> {
    v.as_f64().ok_or(SpecError::BadValue {
        path: path.into(),
        want: "a number",
    })
}

fn bool_of(v: &Json, path: &str) -> Result<bool, SpecError> {
    v.as_bool().ok_or(SpecError::BadValue {
        path: path.into(),
        want: "a boolean",
    })
}

fn str_of<'a>(v: &'a Json, path: &str) -> Result<&'a str, SpecError> {
    v.as_str().ok_or(SpecError::BadValue {
        path: path.into(),
        want: "a string",
    })
}

fn str_owned(v: &Json, path: &str) -> Result<String, SpecError> {
    str_of(v, path).map(str::to_string)
}

/// Optional top-level array field: absent → empty, present → each item
/// parsed under an indexed path.
fn list_of<T>(
    doc: &Json,
    key: &str,
    parse: impl Fn(&Json, &str) -> Result<T, SpecError>,
) -> Result<Vec<T>, SpecError> {
    match doc.get(key) {
        None => Ok(Vec::new()),
        Some(Json::Array(items)) => items
            .iter()
            .enumerate()
            .map(|(i, v)| parse(v, &format!("{key}[{i}]")))
            .collect(),
        Some(_) => Err(SpecError::BadValue {
            path: key.into(),
            want: "an array",
        }),
    }
}

/// Optional field of an object: absent → `None`, present → parsed.
fn opt_field<T>(
    v: &Json,
    path: &str,
    key: &str,
    parse: impl FnOnce(&Json, &str) -> Result<T, SpecError>,
) -> Result<Option<T>, SpecError> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => parse(x, &format!("{path}.{key}")).map(Some),
    }
}

/// Optional *nullable* field: absent or `null` → `None`.
fn opt_nullable<T>(
    v: &Json,
    path: &str,
    key: &str,
    parse: impl FnOnce(&Json, &str) -> Result<T, SpecError>,
) -> Result<Option<T>, SpecError> {
    match v.get(key) {
        None => Ok(None),
        Some(Json::Null) => Ok(None),
        Some(x) => parse(x, &format!("{path}.{key}")).map(Some),
    }
}

fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, SpecError> {
    opt_field(v, "", key, |x, _| u64_of(x, key))
}

fn req<'a>(v: &'a Json, path: &str, key: &str) -> Result<&'a Json, SpecError> {
    v.get(key).ok_or(SpecError::MissingField {
        path: format!("{path}.{key}"),
    })
}

fn req_u64(v: &Json, path: &str, key: &str) -> Result<u64, SpecError> {
    req(v, path, key).and_then(|x| u64_of(x, &format!("{path}.{key}")))
}

fn req_f64(v: &Json, path: &str, key: &str) -> Result<f64, SpecError> {
    req(v, path, key).and_then(|x| f64_of(x, &format!("{path}.{key}")))
}

fn req_str<'a>(v: &'a Json, path: &str, key: &str) -> Result<&'a str, SpecError> {
    match v.get(key) {
        None => Err(SpecError::MissingField {
            path: format!("{path}.{key}"),
        }),
        Some(x) => x.as_str().ok_or(SpecError::BadValue {
            path: format!("{path}.{key}"),
            want: "a string",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercised_spec() -> CampaignSpec {
        let blackout = FaultScript::default().with_clause(FaultClause::Blackout {
            from: SimTime::from_secs(1),
            until: SimTime::from_secs(2),
        });
        let loss = FaultScript::default().with_clause(FaultClause::Loss {
            from: SimTime::ZERO,
            until: SimTime::from_secs(3),
            prob: 0.05,
            kind: Some(PacketKind::Feedback),
        });
        CampaignSpec::new(
            ExperimentConfig::builder()
                .environment(Environment::Urban)
                .seed(7)
                .hold_secs(1)
                .fec_cap(0.25)
                .n_legs(3)
                .build(),
        )
        .environments([Environment::Urban, Environment::Rural])
        .paper_workloads()
        .schemes([
            RunScheme::Pipeline,
            RunScheme::Multipath(MultipathScheme::Bonded),
        ])
        .faults([
            CellFault::none(),
            CellFault::link("blk", blackout),
            CellFault::per_leg("fbl", vec![Some(loss), None, Some(FaultScript::default())]),
        ])
        .repairs([false, true])
        .runs(2)
        .with_options(EngineOptions {
            jobs: Some(4),
            batch: Some(2),
            cache_dir: Some(PathBuf::from("target/rpav-cache")),
            max_attempts: 3,
            stuck_budget: Duration::from_secs(60),
            reference_tick: false,
        })
    }

    #[test]
    fn round_trip_is_exact_and_bytes_are_stable() {
        let spec = exercised_spec();
        let json = spec.to_json();
        let back = CampaignSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), json, "canonical bytes must be stable");
        assert_eq!(back.identity(), spec.identity());
    }

    #[test]
    fn expansion_matches_direct_matrix_construction() {
        let spec = exercised_spec();
        let direct = spec.to_matrix().expand();
        let wired = CampaignSpec::from_json(&spec.to_json())
            .unwrap()
            .to_matrix()
            .expand();
        assert_eq!(direct.len(), wired.len());
        for (a, b) in direct.iter().zip(&wired) {
            assert_eq!(
                a.key(),
                b.key(),
                "cell {} key drifted over the wire",
                a.label()
            );
        }
    }

    #[test]
    fn minimal_document_fills_defaults() {
        let spec = CampaignSpec::from_json("{\"spec_version\":1}").unwrap();
        assert_eq!(spec, CampaignSpec::new(ExperimentConfig::builder().build()));
        assert_eq!(spec.to_matrix().expand().len(), 1);
    }

    #[test]
    fn version_is_required_and_checked() {
        assert_eq!(
            CampaignSpec::from_json("{}"),
            Err(SpecError::MissingField {
                path: "spec_version".into()
            })
        );
        assert_eq!(
            CampaignSpec::from_json("{\"spec_version\":99}"),
            Err(SpecError::UnsupportedVersion { found: 99 })
        );
    }

    #[test]
    fn unknown_fields_are_rejected_with_paths() {
        assert_eq!(
            CampaignSpec::from_json("{\"spec_version\":1,\"bogus\":0}"),
            Err(SpecError::UnknownField {
                path: "bogus".into()
            })
        );
        assert_eq!(
            CampaignSpec::from_json("{\"spec_version\":1,\"base\":{\"sed\":1}}"),
            Err(SpecError::UnknownField {
                path: "base.sed".into()
            })
        );
        assert_eq!(
            CampaignSpec::from_json(
                "{\"spec_version\":1,\"faults\":[{\"uplink\":[{\"kind\":\"blackout\",\"from_us\":0,\"until_us\":1,\"prob\":0.1}]}]}"
            ),
            Err(SpecError::UnknownField {
                path: "faults[0].uplink[0].prob".into()
            })
        );
    }

    #[test]
    fn strict_integer_discipline() {
        // A count written as a float is a type error, not a silent cast.
        assert!(matches!(
            CampaignSpec::from_json("{\"spec_version\":1,\"runs\":2.0}"),
            Err(SpecError::BadValue { .. })
        ));
    }
}
