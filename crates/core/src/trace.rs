//! Fig. 8-style flight traces: joined time series of network latency,
//! playback latency, packet loss and handover markers, exportable as CSV.

use rpav_sim::{SimDuration, SimTime};

use crate::metrics::RunMetrics;

/// One 100 ms row of the joined trace.
#[derive(Clone, Copy, Debug)]
pub struct TraceRow {
    /// Window end.
    pub t: SimTime,
    /// UAV altitude (m).
    pub altitude_m: f64,
    /// Mean one-way network latency in the window (ms); NaN if no packets.
    pub network_latency_ms: f64,
    /// Latest playback latency at the window end (ms); NaN before playback
    /// starts.
    pub playback_latency_ms: f64,
    /// Media packets lost in the window (per cent of window traffic).
    pub loss_pct: f64,
    /// True if a handover started in this window.
    pub handover: bool,
    /// Available uplink capacity (bit/s).
    pub capacity_bps: f64,
}

/// Build the joined trace from one run's metrics.
pub fn build_trace(metrics: &RunMetrics) -> Vec<TraceRow> {
    let window = SimDuration::from_millis(100);
    let mut rows = Vec::new();
    let end = SimTime::ZERO + metrics.duration;
    let mut t = SimTime::ZERO + window;

    let mut owd_idx = 0usize;
    let mut frame_idx = 0usize;
    let mut last_playback = f64::NAN;
    let mut radio_idx = 0usize;
    let mut ho_idx = 0usize;

    while t <= end {
        let start = t - window;
        // Mean OWD in the window.
        while owd_idx < metrics.owd.len() && metrics.owd[owd_idx].0 < start {
            owd_idx += 1;
        }
        let w: Vec<f64> = metrics.owd[owd_idx..]
            .iter()
            .take_while(|(a, _)| *a <= t)
            .map(|(_, ms)| *ms)
            .collect();
        let net = if w.is_empty() {
            f64::NAN
        } else {
            w.iter().sum::<f64>() / w.len() as f64
        };

        // Latest playback latency.
        while frame_idx < metrics.frames.len() && metrics.frames[frame_idx].display_at <= t {
            if let Some(l) = metrics.frames[frame_idx].latency_ms {
                last_playback = l;
            }
            frame_idx += 1;
        }

        // Radio row (altitude/capacity) closest below t.
        while radio_idx + 1 < metrics.radio.len() && metrics.radio[radio_idx + 1].t <= t {
            radio_idx += 1;
        }
        let (alt, cap) = metrics
            .radio
            .get(radio_idx)
            .map(|r| (r.altitude_m, r.capacity_bps))
            .unwrap_or((0.0, 0.0));

        // Handover in window?
        let mut handover = false;
        while ho_idx < metrics.handovers.len() && metrics.handovers[ho_idx].at <= t {
            if metrics.handovers[ho_idx].at > start {
                handover = true;
            }
            ho_idx += 1;
        }

        // Loss: infer from sent-vs-received totals is global; per-window we
        // approximate via OWD sample density vs expectation — instead use
        // the radio in_handover + leave a simple 0 unless samples vanish.
        let expected = (w.len() as f64).max(1.0);
        let loss_pct = if w.is_empty() && metrics.media_sent > 0 {
            // No deliveries in the window while the stream is active:
            // report full interruption.
            100.0
        } else {
            let _ = expected;
            0.0
        };

        rows.push(TraceRow {
            t,
            altitude_m: alt,
            network_latency_ms: net,
            playback_latency_ms: last_playback,
            loss_pct,
            handover,
            capacity_bps: cap,
        });
        t += window;
    }
    rows
}

/// Render rows as CSV (the release format of the paper's dataset scripts).
pub fn to_csv(rows: &[TraceRow]) -> String {
    let mut out = String::from(
        "t_s,altitude_m,network_latency_ms,playback_latency_ms,loss_pct,handover,capacity_mbps\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:.1},{:.1},{:.2},{:.2},{:.1},{},{:.2}\n",
            r.t.as_secs_f64(),
            r.altitude_m,
            r.network_latency_ms,
            r.playback_latency_ms,
            r.loss_pct,
            r.handover as u8,
            r.capacity_bps / 1e6,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{FrameRecord, HandoverRecord, RadioTraceRow};
    use rpav_lte::HandoverKind;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn metrics() -> RunMetrics {
        RunMetrics {
            duration: SimDuration::from_secs(10),
            media_sent: 1_000,
            media_received: 1_000,
            media_received_bytes: 1_000_000,
            owd: (0..1_000).map(|i| (t(i * 10), 45.0)).collect(),
            handovers: vec![HandoverRecord {
                at: t(5_050),
                het: SimDuration::from_millis(30),
                kind: HandoverKind::A3,
                from: 0,
                to: 1,
            }],
            radio: (0..100)
                .map(|i| RadioTraceRow {
                    t: t(i * 100),
                    altitude_m: i as f64,
                    capacity_bps: 20e6,
                    rsrp_dbm: -80.0,
                    sinr_db: 10.0,
                    in_handover: false,
                })
                .collect(),
            frames: (0..300)
                .map(|i| FrameRecord {
                    number: i,
                    display_at: t(i * 33),
                    latency_ms: Some(180.0),
                    ssim: 0.9,
                    displayed: true,
                })
                .collect(),
            ..Default::default()
        }
    }

    #[test]
    fn trace_has_one_row_per_window() {
        let rows = build_trace(&metrics());
        assert_eq!(rows.len(), 100);
        // Steady latency reflected.
        let mid = &rows[50];
        assert!((mid.network_latency_ms - 45.0).abs() < 1e-9);
        assert!((mid.playback_latency_ms - 180.0).abs() < 1e-9);
        assert_eq!(mid.loss_pct, 0.0);
    }

    #[test]
    fn handover_marked_in_its_window() {
        let rows = build_trace(&metrics());
        let marked: Vec<usize> = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r.handover)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(marked.len(), 1);
        // 5.05 s is in window index 50 (5.0–5.1 s).
        assert_eq!(marked[0], 50);
    }

    #[test]
    fn csv_renders_header_and_rows() {
        let rows = build_trace(&metrics());
        let csv = to_csv(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("t_s,altitude_m"));
        assert_eq!(lines.len(), 101);
        assert!(lines[51].contains(",1")); // handover flag column
    }
}
