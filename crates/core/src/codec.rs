//! Byte-exact serialization of [`RunMetrics`].
//!
//! The matrix engine ([`exec`](crate::exec)) needs two things from a run's
//! metrics: a canonical byte form whose equality *is* result equality (the
//! determinism contract "jobs=1 ≡ jobs=8" is asserted over these bytes),
//! and a round-trippable encoding for the on-disk result cache under
//! `target/rpav-cache`. Both are served by one hand-rolled little-endian
//! format — no external serde in this workspace.
//!
//! The format is versioned ([`FORMAT_VERSION`]) and salted with the crate
//! version, so a rebuilt crate silently invalidates every cached result
//! instead of replaying metrics a code change may have altered.
//!
//! On-disk records additionally ride inside a checksummed envelope
//! ([`seal`]/[`unseal`]): a magic + payload length + CRC32 frame so a
//! torn write, a flipped bit, or an unrelated file degrades to a cache
//! miss at the envelope layer — before the structural decoder even runs.
//! [`RunMetrics::to_cache_bytes`]/[`RunMetrics::from_cache_bytes`] are
//! the durable-store entry points the engine uses.

use rpav_lte::HandoverKind;
use rpav_sim::{SimDuration, SimTime};

use crate::failover::SwitchCause;
use crate::metrics::{
    FrameRecord, HandoverRecord, OutageRecord, PathHealthSummary, RadioTraceRow, RunMetrics,
    SwitchRecord,
};

/// Bump on any change to the byte layout below.
/// (v4: on-disk records gained the CRC32 `seal` envelope.)
pub const FORMAT_VERSION: u32 = 4;

/// Magic prefix of every encoded blob.
const MAGIC: &[u8; 4] = b"RPAV";

/// Magic prefix of the on-disk cache envelope.
const ENVELOPE_MAGIC: &[u8; 4] = b"RPVE";

/// Envelope header size: magic + u64 payload length + u32 CRC32.
const ENVELOPE_HEADER: usize = 4 + 8 + 4;

/// CRC-32/ISO-HDLC lookup table (the ubiquitous IEEE 802.3 polynomial),
/// generated at compile time — dependency-free like the rest of the codec.
static CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32/ISO-HDLC of `bytes` — detects any single-burst corruption up to
/// 32 bits, so every 1-byte flip in a sealed record is caught.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// 64-bit FNV-1a: tiny, dependency-free, stable across processes and
/// platforms. The hash behind every cross-process identity in the repo —
/// cell cache keys, campaign journal identity, and the daemon's
/// canonical-spec-bytes campaign id.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Frame `payload` in the durable-store envelope:
/// `"RPVE" ‖ len: u64 ‖ crc32(payload): u32 ‖ payload`.
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ENVELOPE_HEADER + payload.len());
    out.extend_from_slice(ENVELOPE_MAGIC);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Streaming variant of [`seal`]: writes the same envelope followed by
/// the payload to `w` without materialising the sealed buffer.
pub fn seal_to<W: std::io::Write>(payload: &[u8], w: &mut W) -> std::io::Result<()> {
    w.write_all(ENVELOPE_MAGIC)?;
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)
}

/// Strip and verify a [`seal`] envelope. Returns `None` — never panics —
/// on a short buffer, wrong magic, a length that disagrees with the bytes
/// actually present (truncation *or* trailing garbage), or a CRC mismatch.
pub fn unseal(buf: &[u8]) -> Option<&[u8]> {
    if buf.len() < ENVELOPE_HEADER || &buf[..4] != ENVELOPE_MAGIC {
        return None;
    }
    let len = u64::from_le_bytes(buf[4..12].try_into().unwrap());
    let crc = u32::from_le_bytes(buf[12..16].try_into().unwrap());
    let payload = &buf[ENVELOPE_HEADER..];
    if payload.len() as u64 != len || crc32(payload) != crc {
        return None;
    }
    Some(payload)
}

/// Append-only little-endian byte sink.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Fresh empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Writer over a recycled buffer: clears the contents but keeps the
    /// capacity, so a per-worker scratch vector serves every encode.
    pub fn with_buf(mut buf: Vec<u8>) -> Self {
        buf.clear();
        ByteWriter { buf }
    }

    /// Finish and take the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Write a `u32` little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `f64` as its IEEE-754 bit pattern (bit-exact, NaN-safe).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write a [`SimTime`] as microseconds.
    pub fn time(&mut self, t: SimTime) {
        self.u64(t.as_micros());
    }

    /// Write a [`SimDuration`] as microseconds.
    pub fn duration(&mut self, d: SimDuration) {
        self.u64(d.as_micros());
    }

    /// Write an optional value behind a presence byte.
    pub fn opt<T>(&mut self, v: Option<T>, write: impl FnOnce(&mut Self, T)) {
        match v {
            Some(v) => {
                self.u8(1);
                write(self, v);
            }
            None => self.u8(0),
        }
    }

    /// Write a slice behind a length prefix.
    pub fn seq<T>(&mut self, items: &[T], mut write: impl FnMut(&mut Self, &T)) {
        self.u64(items.len() as u64);
        for item in items {
            write(self, item);
        }
    }

    /// Write raw bytes (length-prefixed).
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }
}

/// Cursor over an encoded blob; every read returns `None` past the end, so
/// truncated or foreign cache files decode to a miss, never a panic.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    /// Whether every byte has been consumed.
    pub fn exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    /// Read a bool; rejects anything but 0/1.
    pub fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    /// Read an `f64` bit pattern.
    pub fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// Read a [`SimTime`].
    pub fn time(&mut self) -> Option<SimTime> {
        self.u64().map(SimTime::from_micros)
    }

    /// Read a [`SimDuration`].
    pub fn duration(&mut self) -> Option<SimDuration> {
        self.u64().map(SimDuration::from_micros)
    }

    /// Read an optional value.
    pub fn opt<T>(&mut self, read: impl FnOnce(&mut Self) -> Option<T>) -> Option<Option<T>> {
        match self.u8()? {
            0 => Some(None),
            1 => read(self).map(Some),
            _ => None,
        }
    }

    /// Read a length-prefixed sequence.
    pub fn seq<T>(&mut self, mut read: impl FnMut(&mut Self) -> Option<T>) -> Option<Vec<T>> {
        let n = self.u64()? as usize;
        // Guard against hostile lengths: each element needs ≥ 1 byte.
        if n > self.buf.len().saturating_sub(self.pos) {
            return None;
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(read(self)?);
        }
        Some(out)
    }
}

fn handover_kind_tag(kind: HandoverKind) -> u8 {
    match kind {
        HandoverKind::A3 => 0,
        HandoverKind::RadioLinkFailure => 1,
    }
}

fn handover_kind_from(tag: u8) -> Option<HandoverKind> {
    match tag {
        0 => Some(HandoverKind::A3),
        1 => Some(HandoverKind::RadioLinkFailure),
        _ => None,
    }
}

fn switch_cause_tag(cause: SwitchCause) -> u8 {
    match cause {
        SwitchCause::Starvation => 0,
        SwitchCause::RadioLinkFailure => 1,
        SwitchCause::HandoverSignal => 2,
        SwitchCause::Degraded => 3,
    }
}

fn switch_cause_from(tag: u8) -> Option<SwitchCause> {
    match tag {
        0 => Some(SwitchCause::Starvation),
        1 => Some(SwitchCause::RadioLinkFailure),
        2 => Some(SwitchCause::HandoverSignal),
        3 => Some(SwitchCause::Degraded),
        _ => None,
    }
}

fn write_handover(w: &mut ByteWriter, h: &HandoverRecord) {
    w.time(h.at);
    w.duration(h.het);
    w.u8(handover_kind_tag(h.kind));
    w.u32(h.from);
    w.u32(h.to);
}

fn read_handover(r: &mut ByteReader) -> Option<HandoverRecord> {
    Some(HandoverRecord {
        at: r.time()?,
        het: r.duration()?,
        kind: handover_kind_from(r.u8()?)?,
        from: r.u32()?,
        to: r.u32()?,
    })
}

fn write_radio(w: &mut ByteWriter, row: &RadioTraceRow) {
    w.time(row.t);
    w.f64(row.altitude_m);
    w.f64(row.capacity_bps);
    w.f64(row.rsrp_dbm);
    w.f64(row.sinr_db);
    w.bool(row.in_handover);
}

fn read_radio(r: &mut ByteReader) -> Option<RadioTraceRow> {
    Some(RadioTraceRow {
        t: r.time()?,
        altitude_m: r.f64()?,
        capacity_bps: r.f64()?,
        rsrp_dbm: r.f64()?,
        sinr_db: r.f64()?,
        in_handover: r.bool()?,
    })
}

fn write_frame(w: &mut ByteWriter, f: &FrameRecord) {
    w.u64(f.number);
    w.time(f.display_at);
    w.opt(f.latency_ms, |w, v| w.f64(v));
    w.f64(f.ssim);
    w.bool(f.displayed);
}

fn read_frame(r: &mut ByteReader) -> Option<FrameRecord> {
    Some(FrameRecord {
        number: r.u64()?,
        display_at: r.time()?,
        latency_ms: r.opt(|r| r.f64())?,
        ssim: r.f64()?,
        displayed: r.bool()?,
    })
}

fn write_outage(w: &mut ByteWriter, o: &OutageRecord) {
    w.time(o.from);
    w.time(o.until);
    w.f64(o.baseline_bps);
    w.opt(o.first_arrival_after, |w, v| w.time(v));
    w.opt(o.first_frame_after, |w, v| w.time(v));
    w.opt(o.rate_half_recovered_at, |w, v| w.time(v));
    w.opt(o.rate_recovered_at, |w, v| w.time(v));
}

fn read_outage(r: &mut ByteReader) -> Option<OutageRecord> {
    Some(OutageRecord {
        from: r.time()?,
        until: r.time()?,
        baseline_bps: r.f64()?,
        first_arrival_after: r.opt(|r| r.time())?,
        first_frame_after: r.opt(|r| r.time())?,
        rate_half_recovered_at: r.opt(|r| r.time())?,
        rate_recovered_at: r.opt(|r| r.time())?,
    })
}

fn write_switch(w: &mut ByteWriter, s: &SwitchRecord) {
    w.time(s.at);
    w.u8(s.from_leg);
    w.u8(s.to_leg);
    w.u8(switch_cause_tag(s.cause));
}

fn read_switch(r: &mut ByteReader) -> Option<SwitchRecord> {
    Some(SwitchRecord {
        at: r.time()?,
        from_leg: r.u8()?,
        to_leg: r.u8()?,
        cause: switch_cause_from(r.u8()?)?,
    })
}

fn write_path_health(w: &mut ByteWriter, p: &PathHealthSummary) {
    w.u8(p.leg);
    w.duration(p.time_healthy);
    w.duration(p.time_degraded);
    w.duration(p.time_dead);
    w.u64(p.reports);
    w.opt(p.final_rtt_ms, |w, v| w.f64(v));
    w.opt(p.final_loss, |w, v| w.f64(v));
    w.u64(p.tx_packets);
}

fn read_path_health(r: &mut ByteReader) -> Option<PathHealthSummary> {
    Some(PathHealthSummary {
        leg: r.u8()?,
        time_healthy: r.duration()?,
        time_degraded: r.duration()?,
        time_dead: r.duration()?,
        reports: r.u64()?,
        final_rtt_ms: r.opt(|r| r.f64())?,
        final_loss: r.opt(|r| r.f64())?,
        tx_packets: r.u64()?,
    })
}

impl RunMetrics {
    /// Canonical byte encoding. Two metrics encode identically **iff**
    /// every recorded field — down to each OWD sample's f64 bit pattern —
    /// is identical; the parallel engine's determinism tests compare these
    /// bytes directly.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.write_into(&mut w);
        w.into_bytes()
    }

    /// [`to_bytes`](Self::to_bytes) into a caller-supplied writer, so a
    /// per-worker scratch buffer (see `CellScratch`) absorbs the encode
    /// allocation across a whole batch of cells.
    pub fn write_into(&self, w: &mut ByteWriter) {
        w.buf.extend_from_slice(MAGIC);
        w.u32(FORMAT_VERSION);
        w.bytes(env!("CARGO_PKG_VERSION").as_bytes());
        w.duration(self.duration);
        w.u64(self.media_sent);
        w.u64(self.media_received);
        w.u64(self.media_received_bytes);
        w.seq(&self.owd, |w, (t, ms)| {
            w.time(*t);
            w.f64(*ms);
        });
        w.seq(&self.handovers, write_handover);
        w.seq(&self.radio, write_radio);
        w.seq(&self.frames, write_frame);
        w.u64(self.stalls);
        w.duration(self.stalled_time);
        w.u64(self.frames_late_discarded);
        w.u64(self.sender_discarded);
        w.u64(self.span_skipped);
        w.u64(self.distinct_cells as u64);
        w.u64(self.plis_sent);
        w.u64(self.plis_received);
        w.u64(self.forced_keyframes);
        w.u64(self.watchdog_activations);
        w.u64(self.watchdog_recoveries);
        w.opt(self.watchdog_last_ramp, |w, v| w.duration(v));
        w.u64(self.jitter_inflations);
        w.u64(self.script_dropped);
        w.seq(&self.outages, write_outage);
        w.u64(self.malformed_packets);
        w.u64(self.corrupted_arrivals);
        w.u64(self.duplicate_packets);
        w.u64(self.late_packets);
        w.u64(self.malformed_payloads);
        w.u64(self.nacks_sent);
        w.u64(self.nack_seqs_requested);
        w.u64(self.rtx_recovered);
        w.u64(self.rtx_late);
        w.u64(self.nack_abandoned);
        w.u64(self.rtx_sent);
        w.u64(self.rtx_bytes);
        w.u64(self.rtx_budget_exhausted);
        w.u64(self.rtx_not_in_history);
        w.seq(&self.switches, write_switch);
        w.seq(&self.path_health, write_path_health);
        w.u64(self.probes_sent);
        w.u64(self.dup_tx_packets);
        w.u64(self.dup_tx_bytes);
        w.u64(self.path_reports_received);
        w.u64(self.fec_tx);
        w.u64(self.fec_recovered);
        w.u64(self.reorder_buffered);
        w.u64(self.fec_multi_recovered);
    }

    /// Decode a blob written by [`to_bytes`](Self::to_bytes). Returns
    /// `None` on any mismatch — wrong magic, a different format or crate
    /// version, truncation, trailing bytes, or an unknown enum tag — so a
    /// stale cache entry degrades to a cache miss.
    pub fn from_bytes(buf: &[u8]) -> Option<RunMetrics> {
        let mut r = ByteReader::new(buf);
        if r.take(4)? != MAGIC {
            return None;
        }
        if r.u32()? != FORMAT_VERSION {
            return None;
        }
        let version_len = r.u64()? as usize;
        if r.take(version_len)? != env!("CARGO_PKG_VERSION").as_bytes() {
            return None;
        }
        let m = RunMetrics {
            duration: r.duration()?,
            media_sent: r.u64()?,
            media_received: r.u64()?,
            media_received_bytes: r.u64()?,
            owd: r.seq(|r| Some((r.time()?, r.f64()?)))?,
            handovers: r.seq(read_handover)?,
            radio: r.seq(read_radio)?,
            frames: r.seq(read_frame)?,
            stalls: r.u64()?,
            stalled_time: r.duration()?,
            frames_late_discarded: r.u64()?,
            sender_discarded: r.u64()?,
            span_skipped: r.u64()?,
            distinct_cells: r.u64()? as usize,
            plis_sent: r.u64()?,
            plis_received: r.u64()?,
            forced_keyframes: r.u64()?,
            watchdog_activations: r.u64()?,
            watchdog_recoveries: r.u64()?,
            watchdog_last_ramp: r.opt(|r| r.duration())?,
            jitter_inflations: r.u64()?,
            script_dropped: r.u64()?,
            outages: r.seq(read_outage)?,
            malformed_packets: r.u64()?,
            corrupted_arrivals: r.u64()?,
            duplicate_packets: r.u64()?,
            late_packets: r.u64()?,
            malformed_payloads: r.u64()?,
            nacks_sent: r.u64()?,
            nack_seqs_requested: r.u64()?,
            rtx_recovered: r.u64()?,
            rtx_late: r.u64()?,
            nack_abandoned: r.u64()?,
            rtx_sent: r.u64()?,
            rtx_bytes: r.u64()?,
            rtx_budget_exhausted: r.u64()?,
            rtx_not_in_history: r.u64()?,
            switches: r.seq(read_switch)?,
            path_health: r.seq(read_path_health)?,
            probes_sent: r.u64()?,
            dup_tx_packets: r.u64()?,
            dup_tx_bytes: r.u64()?,
            path_reports_received: r.u64()?,
            fec_tx: r.u64()?,
            fec_recovered: r.u64()?,
            reorder_buffered: r.u64()?,
            fec_multi_recovered: r.u64()?,
        };
        if !r.exhausted() {
            return None;
        }
        Some(m)
    }

    /// [`to_bytes`](Self::to_bytes) wrapped in the durable-store
    /// [`seal`] envelope — the form the engine writes to `RPAV_CACHE`.
    pub fn to_cache_bytes(&self) -> Vec<u8> {
        seal(&self.to_bytes())
    }

    /// Decode an on-disk cache record. Any corruption — a torn write, a
    /// flipped bit anywhere in the file, truncation, or a stale format —
    /// returns `None` so the engine treats the file as a miss.
    pub fn from_cache_bytes(buf: &[u8]) -> Option<RunMetrics> {
        RunMetrics::from_bytes(unseal(buf)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunMetrics {
        RunMetrics {
            duration: SimDuration::from_secs(10),
            media_sent: 1_000,
            media_received: 990,
            media_received_bytes: 1_200_000,
            owd: vec![
                (SimTime::from_millis(5), 17.25),
                (SimTime::from_millis(6), f64::NAN),
            ],
            handovers: vec![HandoverRecord {
                at: SimTime::from_secs(2),
                het: SimDuration::from_millis(45),
                kind: HandoverKind::RadioLinkFailure,
                from: 3,
                to: 7,
            }],
            radio: vec![RadioTraceRow {
                t: SimTime::from_millis(100),
                altitude_m: 80.0,
                capacity_bps: 12e6,
                rsrp_dbm: -95.5,
                sinr_db: 11.0,
                in_handover: true,
            }],
            frames: vec![FrameRecord {
                number: 1,
                display_at: SimTime::from_millis(200),
                latency_ms: Some(180.5),
                ssim: 0.93,
                displayed: true,
            }],
            stalls: 2,
            stalled_time: SimDuration::from_millis(750),
            watchdog_last_ramp: Some(SimDuration::from_millis(1_200)),
            outages: vec![OutageRecord {
                from: SimTime::from_secs(3),
                until: SimTime::from_secs(5),
                baseline_bps: 8e6,
                first_arrival_after: Some(SimTime::from_millis(5_100)),
                first_frame_after: None,
                rate_half_recovered_at: Some(SimTime::from_secs(6)),
                rate_recovered_at: None,
            }],
            switches: vec![SwitchRecord {
                at: SimTime::from_secs(4),
                from_leg: 0,
                to_leg: 1,
                cause: SwitchCause::Degraded,
            }],
            path_health: vec![PathHealthSummary {
                leg: 1,
                time_healthy: SimDuration::from_secs(8),
                time_degraded: SimDuration::from_secs(1),
                time_dead: SimDuration::from_secs(1),
                reports: 160,
                final_rtt_ms: Some(42.0),
                final_loss: None,
                tx_packets: 4_321,
            }],
            fec_tx: 55,
            fec_recovered: 7,
            reorder_buffered: 31,
            fec_multi_recovered: 3,
            ..RunMetrics::default()
        }
    }

    #[test]
    fn roundtrip_is_byte_exact() {
        let m = sample();
        let bytes = m.to_bytes();
        let back = RunMetrics::from_bytes(&bytes).expect("decode");
        // Equality via re-encoding: covers every field, including the NaN
        // OWD sample's exact bit pattern.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn hostile_bytes_decode_to_none_not_panic() {
        let good = sample().to_bytes();
        assert!(RunMetrics::from_bytes(&[]).is_none());
        assert!(RunMetrics::from_bytes(b"JUNKJUNKJUNK").is_none());
        // Truncations at every prefix length must fail cleanly.
        for cut in [4usize, 8, 12, 40, good.len() / 2, good.len() - 1] {
            assert!(RunMetrics::from_bytes(&good[..cut]).is_none(), "cut {cut}");
        }
        // Trailing garbage is rejected (no silent partial decode).
        let mut padded = good.clone();
        padded.push(0);
        assert!(RunMetrics::from_bytes(&padded).is_none());
        // A flipped version byte invalidates the blob.
        let mut wrong_version = good.clone();
        wrong_version[4] ^= 0xFF;
        assert!(RunMetrics::from_bytes(&wrong_version).is_none());
    }

    #[test]
    fn default_metrics_roundtrip() {
        let m = RunMetrics::default();
        let bytes = m.to_bytes();
        let back = RunMetrics::from_bytes(&bytes).expect("decode default");
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // CRC-32/ISO-HDLC check values (the zlib/PNG/IEEE 802.3 CRC).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn envelope_roundtrip_and_rejection() {
        let m = sample();
        let sealed = m.to_cache_bytes();
        let back = RunMetrics::from_cache_bytes(&sealed).expect("unseal");
        assert_eq!(back.to_bytes(), m.to_bytes());

        // Truncation at every prefix length fails at the envelope layer.
        for cut in 0..sealed.len() {
            assert!(
                RunMetrics::from_cache_bytes(&sealed[..cut]).is_none(),
                "cut {cut}"
            );
        }
        // Any single flipped bit is caught by the CRC (or magic/len check).
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x01;
            assert!(RunMetrics::from_cache_bytes(&bad).is_none(), "flip at {i}");
        }
        // Trailing garbage disagrees with the recorded length.
        let mut padded = sealed.clone();
        padded.push(0);
        assert!(RunMetrics::from_cache_bytes(&padded).is_none());
    }

    #[test]
    fn envelope_rejects_resealed_stale_format() {
        // A stale inner FORMAT_VERSION with a *valid* CRC must still be
        // rejected — the envelope proves integrity, not freshness.
        let mut payload = sample().to_bytes();
        payload[4] ^= 0xFF; // corrupt FORMAT_VERSION, then reseal honestly
        assert!(RunMetrics::from_cache_bytes(&seal(&payload)).is_none());
        assert!(
            unseal(&seal(&payload)).is_some(),
            "envelope itself is valid"
        );
    }
}
