//! Multi-operator failover — the paper's future-work direction
//! implemented as a health-monitored active/standby subsystem.
//!
//! §5/Conclusion: "utilizing multiple access links towards the ground
//! station, e.g. multiple cellular operators …, through multipath
//! transport can help improve the reliability of transmissions when one of
//! the underlying networks is experiencing deteriorations", citing the
//! link-diversity design of Bacco et al. \[9\]. One UAV carries **two
//! modems, one per operator** (the paper's own rig carried four dongles
//! across two MNOs); this module maps the RTP flow onto them under four
//! schemes:
//!
//! * [`SinglePath`](MultipathScheme::SinglePath) — baseline, primary
//!   operator only.
//! * [`Duplicate`](MultipathScheme::Duplicate) — every packet on both
//!   uplinks; the receiver keeps the first copy. Maximum robustness,
//!   2× radio spend.
//! * [`Failover`](MultipathScheme::Failover) — media rides the *active*
//!   leg; the standby is kept warm with low-rate probes so its health
//!   stays measurable. The [`FailoverController`] moves the flow when the
//!   active leg dies (report starvation, RLF) or measurably degrades.
//! * [`SelectiveDuplicate`](MultipathScheme::SelectiveDuplicate) —
//!   failover plus targeted redundancy: keyframes (whose loss breaks the
//!   decoder's reference chain) and packets sent while the active leg's
//!   health is impaired also go out on the standby.
//!
//! The monitoring plane is per-leg: each leg's receiver counters flow
//! back as `PathReport`s (50 ms cadence) on that same leg's downlink, so
//! a dead leg silences its own report stream — which *is* the break
//! detector ([`PathHealth`]'s starvation watchdog). CC feedback instead
//! follows the most recent accepted media arrival, keeping exactly one
//! arrival process inside the congestion controller; across a switch the
//! CC state is carried, with the feedback-starvation watchdog providing
//! the rate cut during the break (DESIGN.md §8).

use std::collections::HashSet;

use rpav_lte::{NetworkProfile, Operator, RadioModel};
use rpav_netem::{FaultScript, Packet, PacketKind, Path, ReorderConfig};
use rpav_rtp::jitter::{JitterBuffer, JitterConfig};
use rpav_rtp::packet::RtpPacket;
use rpav_rtp::packetize::{Depacketizer, Packetizer};
use rpav_rtp::report::PathReport;
use rpav_rtp::rfc8888::Rfc8888Builder;
use rpav_rtp::twcc::TwccRecorder;
use rpav_sim::{RngSet, SimDuration, SimTime};
use rpav_uav::{profiles as uav_profiles, Position};
use rpav_video::player::DecodedFrame;
use rpav_video::{quality, Encoder, EncoderConfig, Player, PlayerConfig, SourceVideo};

use crate::cc::CcEngine;
use crate::failover::{FailoverConfig, FailoverController};
use crate::health::{HealthClass, HealthConfig, PathHealth};
use crate::metrics::{FrameRecord, HandoverRecord, PathHealthSummary, RunMetrics, SwitchRecord};
use crate::paths;
use crate::scenario::{CcMode, ExperimentConfig};

/// Driver tick.
const TICK: SimDuration = SimDuration::from_millis(1);
/// Post-flight playout drain.
const DRAIN: SimDuration = SimDuration::from_secs(3);
/// Per-leg receiver-report cadence.
const REPORT_INTERVAL: SimDuration = SimDuration::from_millis(50);
/// Standby keep-warm probe cadence (Failover/SelectiveDuplicate).
const PROBE_INTERVAL: SimDuration = SimDuration::from_millis(20);
/// Probe payload size (bytes): enough to exercise the path, negligible
/// against video rates (64 B / 20 ms = 25.6 kbit/s).
const PROBE_BYTES: usize = 64;
/// Sender must have offered at least this many packets to a leg in a
/// report interval before an unmoving receiver counter reads as loss
/// (below it, the leg may simply have had nothing to carry).
const LOSS_MIN_TX: u64 = 10;

/// How packets are mapped onto the two operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MultipathScheme {
    /// Baseline: only the primary operator is used.
    SinglePath,
    /// Redundant: every packet goes out on both operators; the receiver
    /// keeps the first copy.
    Duplicate,
    /// Active/standby: media on the active leg, probes on the standby,
    /// health-triggered switching.
    Failover,
    /// Failover plus duplication of keyframes and of packets sent while
    /// the active leg's health is impaired.
    SelectiveDuplicate,
}

impl MultipathScheme {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            MultipathScheme::SinglePath => "single-path",
            MultipathScheme::Duplicate => "duplicate",
            MultipathScheme::Failover => "failover",
            MultipathScheme::SelectiveDuplicate => "sel-duplicate",
        }
    }

    /// All schemes, baseline first.
    pub fn all() -> [MultipathScheme; 4] {
        [
            MultipathScheme::SinglePath,
            MultipathScheme::Duplicate,
            MultipathScheme::Failover,
            MultipathScheme::SelectiveDuplicate,
        ]
    }

    /// Whether the standby leg is kept warm with probes.
    fn probes_standby(&self) -> bool {
        matches!(
            self,
            MultipathScheme::Failover | MultipathScheme::SelectiveDuplicate
        )
    }

    /// Whether the failover controller drives the active leg.
    fn switches(&self) -> bool {
        self.probes_standby()
    }
}

/// One operator: radio model, both path directions, sender-side health
/// state and per-leg wire counters.
struct Leg {
    radio: RadioModel,
    uplink: Path,
    downlink: Path,
    health: PathHealth,
    /// Sender-side wire sequence on this leg's uplink.
    tx_seq: u64,
    /// Receiver-side wire sequence on this leg's downlink.
    dl_seq: u64,
    /// Media + probe packets the sender offered to this uplink.
    tx_offered: u64,
    // Receiver-side per-leg counters (media and probes alike).
    rx_highest_seq: u64,
    rx_count: u64,
    rx_bytes: u64,
    rx_last_owd_us: u32,
    next_report: SimTime,
    // Sender-side report differencing state.
    last_report: Option<(PathReport, SimTime)>,
    tx_at_last_report: u64,
}

impl Leg {
    fn new(op: Operator, base: &ExperimentConfig, rngs: &RngSet, radio_index: u64) -> Leg {
        // `radio_index` decorrelates the two legs' fading/handover streams
        // (RadioModel draws from fixed stream names, so both legs would
        // otherwise fade and hand over in lockstep — the opposite of the
        // operator diversity the rig exists to exploit).
        let profile = NetworkProfile::new(base.environment, op);
        let radio = RadioModel::new(&profile, rngs, radio_index);
        let prefix = format!("mp.{}", op.name());
        let uplink = paths::uplink_path(rngs, &prefix, base.run_index);
        let downlink = paths::downlink_path(rngs, &format!("{prefix}.dl"), base.run_index);
        Leg {
            radio,
            uplink,
            downlink,
            health: PathHealth::new(HealthConfig::default()),
            tx_seq: 0,
            dl_seq: 0,
            tx_offered: 0,
            rx_highest_seq: 0,
            rx_count: 0,
            rx_bytes: 0,
            rx_last_owd_us: 0,
            next_report: SimTime::ZERO,
            last_report: None,
            tx_at_last_report: 0,
        }
    }

    /// Offer one wire payload to this leg's uplink.
    fn send_up(&mut self, now: SimTime, payload: bytes::Bytes, kind: PacketKind) {
        self.tx_seq += 1;
        self.tx_offered += 1;
        self.uplink
            .enqueue(now, Packet::new(self.tx_seq, payload, kind, now));
    }

    /// Attach a scripted fault campaign to both directions (the shape of
    /// a true link blackout: coverage loss kills media and reports alike).
    fn attach_script(&mut self, script: FaultScript, rngs: &RngSet, run_index: u64, op: Operator) {
        let prefix = format!("mp.{}", op.name());
        if script.has_reorder() {
            self.uplink.set_reorder(
                ReorderConfig::default(),
                rngs.stream_indexed(&format!("{prefix}.reorder"), run_index),
            );
        }
        self.uplink.set_script(
            script.clone(),
            rngs.stream_indexed(&format!("{prefix}.script"), run_index),
        );
        self.downlink.set_script(
            script,
            rngs.stream_indexed(&format!("{prefix}.dl.script"), run_index),
        );
    }

    /// Fold an arrived `PathReport` into this leg's health estimate.
    fn on_report(&mut self, now: SimTime, report: PathReport, report_sent_at: SimTime) {
        if let Some((prev, prev_at)) = self.last_report {
            let dh = report.highest_seq.saturating_sub(prev.highest_seq);
            let dr = report.received.saturating_sub(prev.received);
            let db = report.received_bytes.saturating_sub(prev.received_bytes);
            let dt = now.saturating_since(prev_at).as_secs_f64();
            let offered = self.tx_offered.saturating_sub(self.tx_at_last_report);
            let loss = if dh > 0 {
                Some(1.0 - (dr.min(dh)) as f64 / dh as f64)
            } else if offered >= LOSS_MIN_TX {
                // We kept sending but the receiver's counters froze: the
                // uplink is eating everything.
                Some(1.0)
            } else {
                None
            };
            if let Some(loss) = loss {
                let rtt_ms = f64::from(report.newest_owd_us) / 1_000.0
                    + now.saturating_since(report_sent_at).as_millis_f64();
                let goodput = if dt > 0.0 { db as f64 * 8.0 / dt } else { 0.0 };
                self.health.on_report(now, rtt_ms, loss, goodput);
            } else {
                // No evidence either way — still counts as a live report
                // stream for the starvation watchdog.
                self.health.keepalive(now);
            }
        } else {
            self.health.keepalive(now);
        }
        self.last_report = Some((report, now));
        self.tx_at_last_report = self.tx_offered;
    }
}

/// Run the multipath experiment over the flight of `base`, under
/// `base.cc`, with the chosen scheme. The primary operator (leg 0) is
/// `base.operator`, the secondary (leg 1) the other one.
pub fn run_multipath(base: &ExperimentConfig, scheme: MultipathScheme) -> RunMetrics {
    run_multipath_scripted(base, scheme, None, None)
}

/// [`run_multipath`] with per-operator scripted fault campaigns: each
/// script hits both directions of its leg (a true link blackout), and the
/// primary script's blackout windows become per-outage recovery records.
pub fn run_multipath_scripted(
    base: &ExperimentConfig,
    scheme: MultipathScheme,
    primary_script: Option<FaultScript>,
    secondary_script: Option<FaultScript>,
) -> RunMetrics {
    let rngs = RngSet::new(base.seed);
    let plan = uav_profiles::paper_flight(Position::ground(0.0, 0.0), base.hold);
    let secondary_op = base.secondary_operator();
    let mut legs = [
        Leg::new(base.operator, base, &rngs, base.run_index),
        Leg::new(secondary_op, base, &rngs, base.run_index ^ (1 << 32)),
    ];
    let mut outage_windows = Vec::new();
    if let Some(script) = primary_script {
        outage_windows.extend(script.blackout_windows());
        legs[0].attach_script(script, &rngs, base.run_index, base.operator);
    }
    if let Some(script) = secondary_script {
        legs[1].attach_script(script, &rngs, base.run_index, secondary_op);
    }

    let source = SourceVideo::new(base.seed ^ 0x5EED);
    let mut cc = CcEngine::new(base.cc, base.watchdog);
    let mut encoder = Encoder::new(EncoderConfig::default(), source, cc.start_bitrate_bps());
    let mut packetizer = Packetizer::new(0x2, cc.with_twcc());
    let ack_span = match base.cc {
        CcMode::Scream { ack_span } => ack_span,
        _ => 64,
    };

    // Receiver state.
    let mut jitter = JitterBuffer::new(JitterConfig::default());
    let mut depack = Depacketizer::new();
    let mut player = Player::new(PlayerConfig::default());
    let mut twcc_rec = TwccRecorder::new();
    let mut ccfb = Rfc8888Builder::new(ack_span);
    let mut next_cc_feedback = SimTime::ZERO;
    // First-copy-wins accounting across legs: the first arrival of an RTP
    // (sequence, timestamp) identity feeds metrics/jitter/CC; later copies
    // only count as duplicates.
    let mut seen: HashSet<u64> = HashSet::new();
    // CC feedback rides the leg of the most recent accepted media arrival.
    let mut last_media_leg = 0usize;

    // Sender-side failover state.
    let mut controller = FailoverController::new(FailoverConfig::default());
    let mut next_probe = SimTime::ZERO;
    // RTP sequences belonging to keyframes, for selective duplication.
    let mut keyframe_seqs: HashSet<u16> = HashSet::new();

    let mut metrics = RunMetrics::default();
    let mut ref_intact = true;
    let mut last_to_player: Option<u64> = None;
    let mut next_radio = SimTime::ZERO;
    let flight_end = SimTime::ZERO + plan.duration();
    let end = flight_end + DRAIN;
    let mut t = SimTime::ZERO;

    while t < end {
        // 1. Radio tick: re-rate links, pause through handovers, feed the
        // health estimators their radio-layer signals. Handover records
        // keep the single-path semantics: primary leg only.
        if t >= next_radio {
            next_radio = t + legs[0].radio.tick();
            let pos = plan.position_at(t);
            for (li, leg) in legs.iter_mut().enumerate() {
                leg.uplink.set_position(pos.x, pos.y, pos.z);
                leg.downlink.set_position(pos.x, pos.y, pos.z);
                let s = leg.radio.step(t, &pos);
                leg.uplink.set_rate_bps(t, s.uplink_capacity_bps.max(50e3));
                leg.downlink
                    .set_rate_bps(t, s.downlink_capacity_bps.max(50e3));
                leg.uplink.set_extra_delay(s.retx_delay);
                leg.downlink.set_extra_delay(s.retx_delay);
                if let Some(sig) = s.health_signal() {
                    leg.health.on_signal(sig);
                }
                if let Some(ho) = s.handover {
                    leg.uplink.pause_until(t, ho.complete_at);
                    leg.downlink.pause_until(t, ho.complete_at);
                    if li == 0 {
                        metrics.handovers.push(HandoverRecord {
                            at: ho.at,
                            het: ho.het(),
                            kind: ho.kind,
                            from: ho.from.0,
                            to: ho.to.0,
                        });
                    }
                }
            }
        }

        // 2. Sender-side health clocks and the switch decision.
        for leg in legs.iter_mut() {
            leg.health.on_tick(t);
        }
        if scheme.switches() {
            if let Some(d) = controller.on_tick(t, [&legs[0].health, &legs[1].health]) {
                metrics.switches.push(SwitchRecord {
                    at: t,
                    from_leg: (1 - d.to) as u8,
                    to_leg: d.to as u8,
                    cause: d.cause,
                });
            }
        }
        let active = if scheme.switches() {
            controller.active()
        } else {
            0
        };

        // 3. Encoder → packetizer → CC staging.
        if t < flight_end {
            while let Some(frame) = encoder.poll(t) {
                let packets = packetizer.packetize(frame.meta, frame.meta.encode_time);
                if frame.meta.keyframe && scheme == MultipathScheme::SelectiveDuplicate {
                    keyframe_seqs.extend(packets.iter().map(|p| p.sequence));
                    if keyframe_seqs.len() > 10_000 {
                        keyframe_seqs.clear(); // stale u16 identities
                    }
                }
                cc.enqueue(t, packets);
            }
        }

        // 4. CC-gated transmission onto the active leg, plus scheme-driven
        // duplication onto the other one.
        let target = cc.on_tick(t);
        encoder.set_target_bitrate(target);
        while let Some(rtp) = cc.poll_transmit(t) {
            metrics.media_sent += 1;
            let wire = rtp.serialize();
            let dup = match scheme {
                MultipathScheme::SinglePath | MultipathScheme::Failover => false,
                MultipathScheme::Duplicate => true,
                MultipathScheme::SelectiveDuplicate => {
                    keyframe_seqs.remove(&rtp.sequence)
                        || legs[active].health.class(t) != HealthClass::Healthy
                }
            };
            legs[active].send_up(t, wire.clone(), PacketKind::Media);
            if dup {
                metrics.dup_tx_packets += 1;
                metrics.dup_tx_bytes += wire.len() as u64;
                legs[1 - active].send_up(t, wire, PacketKind::Media);
            }
        }

        // 5. Standby keep-warm probes: the standby's health is only as
        // fresh as the traffic crossing it.
        if scheme.probes_standby() && t >= next_probe {
            next_probe = t + PROBE_INTERVAL;
            metrics.probes_sent += 1;
            legs[1 - active].send_up(
                t,
                bytes::Bytes::from(vec![0u8; PROBE_BYTES]),
                PacketKind::Probe,
            );
        }

        // 6. Uplink arrivals at the server: per-leg wire accounting first
        // (reports count everything that crossed the leg), then the media
        // pipeline for first copies only.
        for (li, leg) in legs.iter_mut().enumerate() {
            while let Some(pkt) = leg.uplink.poll(t) {
                if pkt.corrupted {
                    metrics.corrupted_arrivals += 1;
                }
                leg.rx_highest_seq = leg.rx_highest_seq.max(pkt.seq);
                leg.rx_count += 1;
                leg.rx_bytes += pkt.payload.len() as u64;
                let owd = t.saturating_since(pkt.sent_at);
                leg.rx_last_owd_us = owd.as_micros().min(u64::from(u32::MAX)) as u32;
                if pkt.kind == PacketKind::Probe {
                    continue;
                }
                let Ok(rtp) = RtpPacket::parse(pkt.payload.clone()) else {
                    metrics.malformed_packets += 1;
                    continue;
                };
                if !seen.insert(u64::from(rtp.sequence) | (u64::from(rtp.timestamp) << 16)) {
                    metrics.duplicate_packets += 1;
                    continue;
                }
                metrics.media_received += 1;
                metrics.media_received_bytes += rtp.payload.len() as u64;
                metrics.owd.push((t, owd.as_millis_f64()));
                last_media_leg = li;
                match base.cc {
                    CcMode::Gcc => {
                        if let Some(ts) = rtp.transport_seq {
                            twcc_rec.on_packet(ts, t);
                        }
                    }
                    CcMode::Scream { .. } => ccfb.on_packet(rtp.sequence, t),
                    CcMode::Static { .. } => {}
                }
                jitter.push(t, rtp);
            }
        }

        // 7. Receiver timers: per-leg path reports on their own downlink,
        // CC feedback on the last accepted media arrival's leg.
        for (li, leg) in legs.iter_mut().enumerate() {
            if t >= leg.next_report {
                leg.next_report = t + REPORT_INTERVAL;
                let report = PathReport {
                    leg: li as u8,
                    highest_seq: leg.rx_highest_seq,
                    received: leg.rx_count,
                    received_bytes: leg.rx_bytes,
                    newest_owd_us: leg.rx_last_owd_us,
                };
                leg.dl_seq += 1;
                leg.downlink.enqueue(
                    t,
                    Packet::new(leg.dl_seq, report.serialize(), PacketKind::Feedback, t),
                );
            }
        }
        if let Some(interval) = cc.feedback_interval() {
            if t >= next_cc_feedback {
                next_cc_feedback = t + interval;
                let wire = match base.cc {
                    CcMode::Gcc => twcc_rec.build_feedback().map(|fb| fb.serialize()),
                    CcMode::Scream { .. } => ccfb.build(t).map(|fb| fb.serialize()),
                    CcMode::Static { .. } => None,
                };
                if let Some(wire) = wire {
                    let leg = &mut legs[last_media_leg];
                    leg.dl_seq += 1;
                    leg.downlink
                        .enqueue(t, Packet::new(leg.dl_seq, wire, PacketKind::Feedback, t));
                }
            }
        } else {
            next_cc_feedback = SimTime::MAX;
        }

        // 8. Downlink arrivals at the sender: path reports feed health,
        // everything else is offered to the CC.
        for leg in legs.iter_mut() {
            while let Some(pkt) = leg.downlink.poll(t) {
                if pkt.corrupted {
                    metrics.corrupted_arrivals += 1;
                }
                if let Ok(report) = PathReport::parse(pkt.payload.clone()) {
                    metrics.path_reports_received += 1;
                    leg.on_report(t, report, pkt.sent_at);
                    continue;
                }
                if !cc.on_feedback(pkt.payload.clone(), t) {
                    metrics.malformed_packets += 1;
                }
            }
        }

        // 9. Jitter buffer → depacketizer → SSIM → player.
        while let Some((playout, rtp)) = jitter.pop_due(t) {
            depack.push(&rtp, playout);
        }
        if let Some(highest) = depack.highest_frame() {
            for frame in depack.drain(highest.saturating_sub(2)) {
                let n = frame.meta.frame_number;
                if let Some(last) = last_to_player {
                    if n > last + 1 {
                        ref_intact = false;
                    }
                }
                last_to_player = Some(n);
                let ssim = quality::frame_ssim(
                    &source,
                    n,
                    frame.meta.frame_bytes,
                    frame.received_fraction(),
                    ref_intact,
                );
                if frame.is_complete() && frame.meta.keyframe {
                    ref_intact = true;
                } else if !frame.is_complete() {
                    ref_intact = false;
                }
                player.push(DecodedFrame {
                    frame_number: n,
                    encode_time: frame.meta.encode_time,
                    ssim,
                });
            }
        }
        for ev in player.poll(t) {
            metrics.frames.push(FrameRecord {
                number: ev.frame_number,
                display_at: ev.display_time,
                latency_ms: ev.latency.map(|l| l.as_millis_f64()),
                ssim: ev.ssim,
                displayed: ev.displayed,
            });
        }
        t += TICK;
    }

    metrics.duration = plan.duration();
    let pstats = player.stats();
    metrics.stalls = pstats.stalls;
    metrics.stalled_time = pstats.stalled_time;
    metrics.frames_late_discarded = pstats.late_discarded;
    metrics.distinct_cells = legs[0].radio.distinct_cells();
    metrics.forced_keyframes = encoder.forced_keyframes();
    metrics.duplicate_packets += jitter.stats().duplicates;
    if let Some(ss) = cc.scream_stats() {
        metrics.sender_discarded = ss.queue_discarded;
        metrics.span_skipped = ss.span_skipped;
    }
    if let Some(w) = cc.watchdog_stats() {
        metrics.watchdog_activations = w.activations;
        metrics.watchdog_recoveries = w.recoveries;
        metrics.watchdog_last_ramp = w.last_ramp;
    }
    for (li, leg) in legs.iter().enumerate() {
        let (healthy, degraded, dead) = leg.health.time_in_class();
        metrics.path_health.push(PathHealthSummary {
            leg: li as u8,
            time_healthy: healthy,
            time_degraded: degraded,
            time_dead: dead,
            reports: leg.health.reports(),
            final_rtt_ms: leg.health.rtt_ms(),
            final_loss: leg.health.loss(),
        });
        metrics.script_dropped += leg.uplink.script_stats().map(|s| s.dropped()).unwrap_or(0)
            + leg
                .downlink
                .script_stats()
                .map(|s| s.dropped())
                .unwrap_or(0);
    }
    metrics.record_outages(&outage_windows);
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::stats;
    use rpav_lte::Environment;
    use rpav_netem::FaultScript;

    fn base() -> ExperimentConfig {
        ExperimentConfig::builder()
            .cc(CcMode::paper_static(Environment::Rural))
            .seed(0xD0A1)
            .hold_secs(1)
            .build()
    }

    #[test]
    fn duplicate_path_improves_latency_tail() {
        let cfg = base();
        let single = run_multipath(&cfg, MultipathScheme::SinglePath);
        let dual = run_multipath(&cfg, MultipathScheme::Duplicate);
        // Same offered load either way (duplicates are accounted apart).
        assert_eq!(single.media_sent, dual.media_sent);
        assert_eq!(dual.dup_tx_packets, dual.media_sent);
        // Reliability: the duplicate scheme must not lose more...
        assert!(dual.per() <= single.per() + 1e-9);
        // ...and its latency tail must improve (one path's stall is
        // covered by the other).
        let p99_single = stats::quantile(&single.owd_ms(), 0.99);
        let p99_dual = stats::quantile(&dual.owd_ms(), 0.99);
        assert!(
            p99_dual < p99_single,
            "duplicate p99 {p99_dual:.0} ms !< single {p99_single:.0} ms"
        );
        // Playback budget compliance improves too.
        assert!(
            dual.playback_within(300.0) >= single.playback_within(300.0),
            "dual {:.2} vs single {:.2}",
            dual.playback_within(300.0),
            single.playback_within(300.0)
        );
    }

    #[test]
    fn schemes_have_names() {
        for s in MultipathScheme::all() {
            assert!(!s.name().is_empty());
        }
        assert_eq!(MultipathScheme::SinglePath.name(), "single-path");
        assert_eq!(MultipathScheme::Failover.name(), "failover");
    }

    #[test]
    fn quiet_run_never_switches() {
        let m = run_multipath(&base(), MultipathScheme::Failover);
        assert!(
            m.switches.is_empty(),
            "spurious switches on a healthy run: {:?}",
            m.switches
        );
        assert!(m.probes_sent > 0);
        assert_eq!(m.path_health.len(), 2);
        // Both legs were monitored the whole run.
        assert!(m.path_health.iter().all(|p| p.reports > 50));
    }

    #[test]
    fn blackout_triggers_exactly_one_failover() {
        let cfg = base();
        let fault_at = SimTime::ZERO + SimDuration::from_secs(5);
        let fault_for = SimDuration::from_secs(10);
        let script = || FaultScript::new().blackout(fault_at, fault_for);
        let single =
            run_multipath_scripted(&cfg, MultipathScheme::SinglePath, Some(script()), None);
        let fo = run_multipath_scripted(&cfg, MultipathScheme::Failover, Some(script()), None);
        // Exactly one switch inside the fault window (later radio events
        // elsewhere in the flight may legitimately switch again).
        let in_window: Vec<_> = fo
            .switches
            .iter()
            .filter(|s| s.at >= fault_at && s.at <= fault_at + fault_for)
            .collect();
        assert_eq!(in_window.len(), 1, "{:?}", fo.switches);
        assert_eq!(in_window[0].to_leg, 1);
        assert!(
            fo.stalled_time < single.stalled_time,
            "failover stalled {:?} !< single-path {:?}",
            fo.stalled_time,
            single.stalled_time
        );
        // The primary leg was seen dead for a substantial part of the
        // blackout.
        assert!(fo.path_health[0].time_dead > SimDuration::from_secs(2));
    }

    #[test]
    fn selective_duplicate_copies_only_a_fraction() {
        let mut cfg = base();
        cfg.hold = SimDuration::from_secs(4);
        let sel = run_multipath(&cfg, MultipathScheme::SelectiveDuplicate);
        assert!(sel.dup_tx_packets > 0, "keyframes must be duplicated");
        assert!(
            (sel.dup_tx_packets as f64) < 0.5 * sel.media_sent as f64,
            "selective duplication copied {}/{} packets",
            sel.dup_tx_packets,
            sel.media_sent
        );
    }

    #[test]
    fn deterministic_replay_per_seed() {
        let cfg = base();
        let run = || {
            run_multipath_scripted(
                &cfg,
                MultipathScheme::Failover,
                Some(FaultScript::new().blackout(
                    SimTime::ZERO + SimDuration::from_secs(3),
                    SimDuration::from_secs(4),
                )),
                None,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.media_sent, b.media_sent);
        assert_eq!(a.media_received, b.media_received);
        assert_eq!(a.probes_sent, b.probes_sent);
        assert_eq!(a.switches.len(), b.switches.len());
        for (x, y) in a.switches.iter().zip(&b.switches) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.cause, y.cause);
        }
        assert_eq!(a.frames.len(), b.frames.len());
    }
}
