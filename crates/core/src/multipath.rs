//! Multipath extension — the paper's future-work direction implemented.
//!
//! §5/Conclusion: "utilizing multiple access links towards the ground
//! station, e.g. multiple cellular operators …, through multipath
//! transport can help improve the reliability of transmissions when one of
//! the underlying networks is experiencing deteriorations", citing the
//! link-diversity design of Bacco et al. \[9\]. This module implements that
//! experiment: one UAV with **two modems, one per operator** (exactly the
//! paper's own measurement rig, which carried four dongles across two
//! MNOs), streaming the same static-bitrate video either over one path or
//! redundantly over both.
//!
//! The duplicate scheduler is the reliability-oriented strategy: every RTP
//! packet is sent on both uplinks, the receiver keeps the first copy (the
//! jitter buffer de-duplicates). A handover or deep fade on one operator
//! is invisible as long as the other is healthy — which is the point: the
//! two deployments' handovers are not synchronised.

use rpav_lte::{NetworkProfile, Operator, RadioModel};
use rpav_netem::{FaultConfig, GilbertElliott, Packet, PacketKind, Path};
use rpav_rtp::jitter::{JitterBuffer, JitterConfig};
use rpav_rtp::packet::RtpPacket;
use rpav_rtp::packetize::{Depacketizer, Packetizer};
use rpav_sim::{RngSet, SimDuration, SimTime};
use rpav_uav::{profiles as uav_profiles, Position};
use rpav_video::player::DecodedFrame;
use rpav_video::{quality, Encoder, EncoderConfig, Player, PlayerConfig, SourceVideo};

use crate::metrics::{FrameRecord, HandoverRecord, RunMetrics};
use crate::scenario::ExperimentConfig;

/// How packets are mapped onto the two operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MultipathScheme {
    /// Baseline: only the primary operator is used.
    SinglePath,
    /// Redundant: every packet goes out on both operators; the receiver
    /// keeps the first copy.
    Duplicate,
}

impl MultipathScheme {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            MultipathScheme::SinglePath => "single-path",
            MultipathScheme::Duplicate => "duplicate",
        }
    }
}

struct Leg {
    radio: RadioModel,
    path: Path,
}

impl Leg {
    fn new(op: Operator, base: &ExperimentConfig, rngs: &RngSet) -> Leg {
        let profile = NetworkProfile::new(base.environment, op);
        let radio = RadioModel::new(&profile, rngs, base.run_index);
        let path = Path::new(
            FaultConfig {
                burst: GilbertElliott::new(0.000_08, 0.12, 0.0, 0.8),
                ..Default::default()
            },
            rngs.stream_indexed(&format!("mp.{}.fault", op.name()), base.run_index),
            10e6,
            SimDuration::from_millis(5),
            6_000_000,
            SimDuration::from_millis(12),
            SimDuration::from_micros(600),
            rngs.stream_indexed(&format!("mp.{}.wan", op.name()), base.run_index),
        );
        Leg { radio, path }
    }
}

/// Run the multipath experiment: static video at `bitrate_bps` over the
/// flight of `base`, with the chosen scheme. The primary operator is
/// `base.operator`, the secondary is the other one.
pub fn run_multipath(
    base: &ExperimentConfig,
    bitrate_bps: f64,
    scheme: MultipathScheme,
) -> RunMetrics {
    let rngs = RngSet::new(base.seed);
    let plan = uav_profiles::paper_flight(Position::ground(0.0, 0.0), base.hold);
    let secondary_op = match base.operator {
        Operator::P1 => Operator::P2,
        Operator::P2 => Operator::P1,
    };
    let mut primary = Leg::new(base.operator, base, &rngs);
    let mut secondary = Leg::new(secondary_op, base, &rngs);

    let source = SourceVideo::new(base.seed ^ 0x5EED);
    let mut encoder = Encoder::new(EncoderConfig::default(), source, bitrate_bps);
    let mut packetizer = Packetizer::new(0x2, false);
    let mut jitter = JitterBuffer::new(JitterConfig::default());
    let mut depack = Depacketizer::new();
    let mut player = Player::new(PlayerConfig::default());
    let mut metrics = RunMetrics::default();

    let mut ref_intact = true;
    let mut last_to_player: Option<u64> = None;
    let mut next_radio = SimTime::ZERO;
    let mut netem_seq = 0u64;
    let flight_end = SimTime::ZERO + plan.duration();
    let end = flight_end + SimDuration::from_secs(3);
    let mut t = SimTime::ZERO;

    // First-copy accounting for duplicates: highest seq delivered bitmap
    // via the jitter buffer is enough for playback, but OWD/goodput must
    // also count each packet once.
    let mut seen = std::collections::HashSet::new();

    while t < end {
        if t >= next_radio {
            next_radio = t + primary.radio.tick();
            let pos = plan.position_at(t);
            for (leg, record_hos) in [(&mut primary, true), (&mut secondary, false)] {
                let s = leg.radio.step(t, &pos);
                leg.path.set_rate_bps(t, s.uplink_capacity_bps.max(50e3));
                if let Some(ho) = s.handover {
                    leg.path.pause_until(t, ho.complete_at);
                    if record_hos {
                        metrics.handovers.push(HandoverRecord {
                            at: ho.at,
                            het: ho.het(),
                            kind: ho.kind,
                            from: ho.from.0,
                            to: ho.to.0,
                        });
                    }
                }
            }
        }

        if t < flight_end {
            while let Some(frame) = encoder.poll(t) {
                for rtp in packetizer.packetize(frame.meta, frame.meta.encode_time) {
                    metrics.media_sent += 1;
                    let wire = rtp.serialize();
                    netem_seq += 1;
                    primary.path.enqueue(
                        t,
                        Packet::new(netem_seq, wire.clone(), PacketKind::Media, t),
                    );
                    if scheme == MultipathScheme::Duplicate {
                        netem_seq += 1;
                        secondary
                            .path
                            .enqueue(t, Packet::new(netem_seq, wire, PacketKind::Media, t));
                    }
                }
            }
        }

        for leg in [&mut primary, &mut secondary] {
            while let Some(pkt) = leg.path.poll(t) {
                if pkt.corrupted {
                    metrics.corrupted_arrivals += 1;
                }
                let Ok(rtp) = RtpPacket::parse(pkt.payload.clone()) else {
                    metrics.malformed_packets += 1;
                    continue;
                };
                if seen.insert(rtp.sequence as u64 | ((rtp.timestamp as u64) << 16)) {
                    metrics.media_received += 1;
                    metrics.media_received_bytes += rtp.payload.len() as u64;
                    metrics
                        .owd
                        .push((t, t.saturating_since(pkt.sent_at).as_millis_f64()));
                }
                jitter.push(t, rtp);
            }
        }

        while let Some((playout, rtp)) = jitter.pop_due(t) {
            depack.push(&rtp, playout);
        }
        if let Some(highest) = depack.highest_frame() {
            for frame in depack.drain(highest.saturating_sub(2)) {
                let n = frame.meta.frame_number;
                if let Some(last) = last_to_player {
                    if n > last + 1 {
                        ref_intact = false;
                    }
                }
                last_to_player = Some(n);
                let ssim = quality::frame_ssim(
                    &source,
                    n,
                    frame.meta.frame_bytes,
                    frame.received_fraction(),
                    ref_intact,
                );
                if frame.is_complete() && frame.meta.keyframe {
                    ref_intact = true;
                } else if !frame.is_complete() {
                    ref_intact = false;
                }
                player.push(DecodedFrame {
                    frame_number: n,
                    encode_time: frame.meta.encode_time,
                    ssim,
                });
            }
        }
        for ev in player.poll(t) {
            metrics.frames.push(FrameRecord {
                number: ev.frame_number,
                display_at: ev.display_time,
                latency_ms: ev.latency.map(|l| l.as_millis_f64()),
                ssim: ev.ssim,
                displayed: ev.displayed,
            });
        }
        t += SimDuration::from_millis(1);
    }
    metrics.duration = plan.duration();
    metrics.stalls = player.stats().stalls;
    metrics.stalled_time = player.stats().stalled_time;
    metrics.frames_late_discarded = player.stats().late_discarded;
    metrics.distinct_cells = primary.radio.distinct_cells();
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CcMode, Mobility};
    use crate::stats;
    use rpav_lte::Environment;

    fn base() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper(
            Environment::Rural,
            Operator::P1,
            Mobility::Air,
            CcMode::paper_static(Environment::Rural),
            0xD0A1,
            0,
        );
        cfg.hold = SimDuration::from_secs(1);
        cfg
    }

    #[test]
    fn duplicate_path_improves_latency_tail() {
        let cfg = base();
        let single = run_multipath(&cfg, 8e6, MultipathScheme::SinglePath);
        let dual = run_multipath(&cfg, 8e6, MultipathScheme::Duplicate);
        // Same offered load either way.
        assert_eq!(single.media_sent, dual.media_sent);
        // Reliability: the duplicate scheme must not lose more...
        assert!(dual.per() <= single.per() + 1e-9);
        // ...and its latency tail must improve (one path's stall is
        // covered by the other).
        let p99_single = stats::quantile(&single.owd_ms(), 0.99);
        let p99_dual = stats::quantile(&dual.owd_ms(), 0.99);
        assert!(
            p99_dual < p99_single,
            "duplicate p99 {p99_dual:.0} ms !< single {p99_single:.0} ms"
        );
        // Playback budget compliance improves too.
        assert!(
            dual.playback_within(300.0) >= single.playback_within(300.0),
            "dual {:.2} vs single {:.2}",
            dual.playback_within(300.0),
            single.playback_within(300.0)
        );
    }

    #[test]
    fn schemes_have_names() {
        assert_eq!(MultipathScheme::SinglePath.name(), "single-path");
        assert_eq!(MultipathScheme::Duplicate.name(), "duplicate");
    }
}
