//! Multi-operator failover — the paper's future-work direction
//! implemented as a health-monitored active/standby subsystem.
//!
//! §5/Conclusion: "utilizing multiple access links towards the ground
//! station, e.g. multiple cellular operators …, through multipath
//! transport can help improve the reliability of transmissions when one of
//! the underlying networks is experiencing deteriorations", citing the
//! link-diversity design of Bacco et al. \[9\]. One UAV carries **N
//! modems across the two operators** (the paper's own rig carried four
//! dongles across two MNOs; `ExperimentConfig::n_legs` sizes the rig,
//! default two); this module maps the RTP flow onto them under five
//! schemes:
//!
//! * [`SinglePath`](MultipathScheme::SinglePath) — baseline, primary
//!   operator only.
//! * [`Duplicate`](MultipathScheme::Duplicate) — every packet on both
//!   uplinks; the receiver keeps the first copy. Maximum robustness,
//!   2× radio spend.
//! * [`Failover`](MultipathScheme::Failover) — media rides the *active*
//!   leg; the standby is kept warm with low-rate probes so its health
//!   stays measurable. The [`FailoverController`] moves the flow when the
//!   active leg dies (report starvation, RLF) or measurably degrades.
//! * [`SelectiveDuplicate`](MultipathScheme::SelectiveDuplicate) —
//!   failover plus targeted redundancy: keyframes (whose loss breaks the
//!   decoder's reference chain) and packets sent while the active leg's
//!   health is impaired also go out on the standby.
//!
//! The monitoring plane is per-leg: each leg's receiver counters flow
//! back as `PathReport`s (50 ms cadence) on that same leg's downlink, so
//! a dead leg silences its own report stream — which *is* the break
//! detector ([`PathHealth`]'s starvation watchdog). CC feedback instead
//! follows the most recent accepted media arrival, keeping exactly one
//! arrival process inside the congestion controller; across a switch the
//! CC state is carried, with the feedback-starvation watchdog providing
//! the rate cut during the break (DESIGN.md §8).

use std::collections::{HashSet, VecDeque};

use bytes::Bytes;
use rpav_lte::{NetworkProfile, Operator, RadioModel};
use rpav_netem::{FaultScript, Packet, PacketKind, Path, ReorderConfig};
use rpav_rtp::fec::{
    rs_recover, RsGroup, RsParityPacket, MAX_FEC_GROUP, MAX_RS_PARITY, RS_FEC_PAYLOAD_TYPE,
};
use rpav_rtp::jitter::{JitterBuffer, JitterConfig};
use rpav_rtp::nack::{Arrival, Nack, NackConfig, NackGenerator};
use rpav_rtp::packet::{unwrap_seq, RtpPacket};
use rpav_rtp::packetize::{Depacketizer, Packetizer, ReassembledFrame};
use rpav_rtp::report::PathReport;
use rpav_rtp::rfc8888::{Rfc8888Builder, Rfc8888Packet};
use rpav_rtp::rtx::{RtxConfig, RtxSender};
use rpav_rtp::twcc::{TwccFeedback, TwccRecorder};
use rpav_sim::{RngSet, SimDuration, SimTime};
use rpav_uav::{profiles as uav_profiles, Position};
use rpav_video::player::DecodedFrame;
use rpav_video::{quality, Encoder, EncoderConfig, Player, PlayerConfig, SourceVideo};

use crate::cc::{CcEngine, CoupledCc};
use crate::failover::{FailoverConfig, FailoverController};
use crate::health::{HealthClass, HealthConfig, PathHealth};
use crate::metrics::{FrameRecord, HandoverRecord, PathHealthSummary, RunMetrics, SwitchRecord};
use crate::paths;
use crate::scenario::{CcMode, ExperimentConfig, MAX_LEGS};

/// Driver tick.
const TICK: SimDuration = SimDuration::from_millis(1);
/// Post-flight playout drain.
const DRAIN: SimDuration = SimDuration::from_secs(3);
/// Per-leg receiver-report cadence.
const REPORT_INTERVAL: SimDuration = SimDuration::from_millis(50);
/// Standby keep-warm probe cadence (Failover/SelectiveDuplicate).
const PROBE_INTERVAL: SimDuration = SimDuration::from_millis(20);
/// Probe payload size (bytes): enough to exercise the path, negligible
/// against video rates (64 B / 20 ms = 25.6 kbit/s).
const PROBE_BYTES: usize = 64;
/// The probe wire payload — a static zero block, shared by every probe
/// so the keep-warm path allocates nothing per send.
static PROBE_PAYLOAD: [u8; PROBE_BYTES] = [0u8; PROBE_BYTES];
/// Sender must have offered at least this many packets to a leg in a
/// report interval before an unmoving receiver counter reads as loss
/// (below it, the leg may simply have had nothing to carry).
const LOSS_MIN_TX: u64 = 10;
/// SSRC of the media stream (and of the parity stream riding beside it);
/// mirrors the packetizer's.
const MEDIA_SSRC: u32 = 0x2;
/// Bonded reassembly window: recent media packets retained for FEC
/// recovery (bounded; old packets are past their playout deadline).
const MEDIA_WINDOW_CAP: usize = 1024;
/// How long a parity packet waits for its group before being abandoned —
/// the playout deadline (the jitter buffer's 150 ms target): a packet
/// recovered later than this would be dropped as late anyway.
const FEC_RECOVERY_DEADLINE: SimDuration = SimDuration::from_millis(150);
/// Adaptive FEC overhead ratio below which parity is not worth its
/// framing bytes — the controller reads this as "off".
const FEC_MIN_RATIO: f64 = 0.01;
/// Redundancy bump applied while any leg is degraded or dead (elevated
/// blackout risk even before the loss EWMA catches up).
const FEC_RISK_BUMP: f64 = 0.05;
/// Deficit-counter clamp: bounds how much burst credit one leg can bank.
const DEFICIT_CLAMP: f64 = 8.0;
/// Initial NACK hold while the parity layer is armed: a fresh hole is
/// not retransmission-requested until this long after detection, so a
/// parity packet closing the hole's group (group close + cross-leg skew,
/// typically well under this) repairs it without spending the round
/// trip. Holes the parity misses still get NACKed with over half the
/// 150 ms playout budget left.
const FEC_NACK_HOLD: SimDuration = SimDuration::from_millis(40);
/// Per-leg loss-burstiness (EWMA |Δloss| between report samples) per
/// *additional* RS parity shard: a leg alternating 0 ↔ 0.25 interval
/// loss (a Gilbert–Elliott bad-state excursion) reads ≈0.2 and buys the
/// group three extra shards; smooth loss stays at one shard — the XOR
/// overhead point.
const RS_BURST_PER_PARITY: f64 = 0.08;
/// Exploration floor for the bonded scheduler: every live leg's weight
/// is held at no less than this fraction of the strongest leg's. The
/// goodput-proportional weights are a feedback loop — a leg with no
/// traffic measures no goodput and never earns traffic back — so a
/// share of exactly zero is an absorbing state. A guaranteed trickle
/// keeps the starved leg's estimator fed; if the leg can actually
/// carry, the measurements pull its weight back up (and the RTT
/// penalty on saturated legs pushes load over). ≈7 % of stripes at the
/// floor.
const EXPLORE_WEIGHT_FLOOR: f64 = 0.08;

/// How packets are mapped onto the operators' legs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MultipathScheme {
    /// Baseline: only the primary operator is used.
    SinglePath,
    /// Redundant: every packet goes out on both operators; the receiver
    /// keeps the first copy.
    Duplicate,
    /// Active/standby: media on the active leg, probes on the standby,
    /// health-triggered switching.
    Failover,
    /// Failover plus duplication of keyframes and of packets sent while
    /// the active leg's health is impaired.
    SelectiveDuplicate,
    /// Packet-level bonding: a deficit-weighted scheduler stripes each
    /// frame's packets across every Up leg (weights from the per-leg
    /// goodput/RTT/loss EWMAs), with loss- and burst-adaptive
    /// Reed–Solomon parity groups crossing legs; falls back to keyframe
    /// duplication when only one leg is Up.
    Bonded,
}

impl MultipathScheme {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            MultipathScheme::SinglePath => "single-path",
            MultipathScheme::Duplicate => "duplicate",
            MultipathScheme::Failover => "failover",
            MultipathScheme::SelectiveDuplicate => "sel-duplicate",
            MultipathScheme::Bonded => "bonded",
        }
    }

    /// The original four schemes, baseline first — the set the standing
    /// campaign matrices (and their committed baselines) were built on.
    /// Matrices that must stay bit-identical to those baselines enumerate
    /// this; anything that means "every scheme" must use
    /// [`MultipathScheme::all`], which really is all of them.
    pub fn baseline() -> [MultipathScheme; 4] {
        [
            MultipathScheme::SinglePath,
            MultipathScheme::Duplicate,
            MultipathScheme::Failover,
            MultipathScheme::SelectiveDuplicate,
        ]
    }

    /// Every scheme, baseline first. This used to silently omit `Bonded`
    /// (a fixed `[_; 4]` nobody widened when the fifth scheme landed);
    /// new schemes must be appended here so standing "all schemes"
    /// matrices can never drop one unnoticed.
    pub fn all() -> [MultipathScheme; 5] {
        [
            MultipathScheme::SinglePath,
            MultipathScheme::Duplicate,
            MultipathScheme::Failover,
            MultipathScheme::SelectiveDuplicate,
            MultipathScheme::Bonded,
        ]
    }

    /// Whether the standby leg is kept warm with probes.
    fn probes_standby(&self) -> bool {
        matches!(
            self,
            MultipathScheme::Failover | MultipathScheme::SelectiveDuplicate
        )
    }

    /// Whether the failover controller drives the active leg.
    fn switches(&self) -> bool {
        self.probes_standby()
    }
}

/// One operator: radio model, both path directions, sender-side health
/// state and per-leg wire counters.
struct Leg {
    radio: RadioModel,
    uplink: Path,
    downlink: Path,
    health: PathHealth,
    /// RNG stream prefix — `mp.{op}` for legs 0/1 (the committed two-leg
    /// baselines), index-qualified beyond.
    stream_prefix: String,
    /// Sender-side wire sequence on this leg's uplink.
    tx_seq: u64,
    /// Receiver-side wire sequence on this leg's downlink.
    dl_seq: u64,
    /// Media + probe packets the sender offered to this uplink.
    tx_offered: u64,
    /// First-transmission media packets scheduled onto this leg (no
    /// duplicates, probes, parity or retransmissions) — the numerator of
    /// the per-leg tx share.
    tx_media: u64,
    /// `tx_offered` snapshot at the last bonded keep-warm probe check: a
    /// leg whose counter did not move carried nothing and gets probed.
    tx_at_probe: u64,
    // Receiver-side per-leg counters (media and probes alike).
    rx_highest_seq: u64,
    rx_count: u64,
    rx_bytes: u64,
    rx_last_owd_us: u32,
    next_report: SimTime,
    // Sender-side report differencing state.
    last_report: Option<(PathReport, SimTime)>,
    tx_at_last_report: u64,
}

impl Leg {
    fn new(
        op: Operator,
        leg_index: usize,
        base: &ExperimentConfig,
        rngs: &RngSet,
        radio_index: u64,
    ) -> Leg {
        // `radio_index` decorrelates the legs' fading/handover streams
        // (RadioModel draws from fixed stream names, so the legs would
        // otherwise fade and hand over in lockstep — the opposite of the
        // link diversity the rig exists to exploit).
        let profile = NetworkProfile::new(base.environment, op);
        let radio = RadioModel::new(&profile, rngs, radio_index);
        let prefix = paths::leg_stream_prefix(op.name(), leg_index);
        let uplink = paths::uplink_path(rngs, &prefix, base.run_index);
        let downlink = paths::downlink_path(rngs, &format!("{prefix}.dl"), base.run_index);
        Leg {
            radio,
            uplink,
            downlink,
            stream_prefix: prefix,
            health: PathHealth::new(HealthConfig::default()),
            tx_seq: 0,
            dl_seq: 0,
            tx_offered: 0,
            tx_media: 0,
            tx_at_probe: 0,
            rx_highest_seq: 0,
            rx_count: 0,
            rx_bytes: 0,
            rx_last_owd_us: 0,
            next_report: SimTime::ZERO,
            last_report: None,
            tx_at_last_report: 0,
        }
    }

    /// Offer one wire payload to this leg's uplink.
    fn send_up(&mut self, now: SimTime, payload: bytes::Bytes, kind: PacketKind) {
        self.tx_seq += 1;
        self.tx_offered += 1;
        self.uplink
            .enqueue(now, Packet::new(self.tx_seq, payload, kind, now));
    }

    /// Attach a scripted fault campaign to both directions (the shape of
    /// a true link blackout: coverage loss kills media and reports alike).
    fn attach_script(&mut self, script: FaultScript, rngs: &RngSet, run_index: u64) {
        let prefix = self.stream_prefix.clone();
        if script.has_reorder() {
            self.uplink.set_reorder(
                ReorderConfig::default(),
                rngs.stream_indexed(&format!("{prefix}.reorder"), run_index),
            );
        }
        self.uplink.set_script(
            script.clone(),
            rngs.stream_indexed(&format!("{prefix}.script"), run_index),
        );
        self.downlink.set_script(
            script,
            rngs.stream_indexed(&format!("{prefix}.dl.script"), run_index),
        );
    }

    /// Fold an arrived `PathReport` into this leg's health estimate.
    fn on_report(&mut self, now: SimTime, report: PathReport, report_sent_at: SimTime) {
        if let Some((prev, prev_at)) = self.last_report {
            let dh = report.highest_seq.saturating_sub(prev.highest_seq);
            let dr = report.received.saturating_sub(prev.received);
            let db = report.received_bytes.saturating_sub(prev.received_bytes);
            let dt = now.saturating_since(prev_at).as_secs_f64();
            let offered = self.tx_offered.saturating_sub(self.tx_at_last_report);
            let loss = if dh > 0 {
                Some(1.0 - (dr.min(dh)) as f64 / dh as f64)
            } else if offered >= LOSS_MIN_TX {
                // We kept sending but the receiver's counters froze: the
                // uplink is eating everything.
                Some(1.0)
            } else {
                None
            };
            if let Some(loss) = loss {
                let rtt_ms = f64::from(report.newest_owd_us) / 1_000.0
                    + now.saturating_since(report_sent_at).as_millis_f64();
                let goodput = if dt > 0.0 { db as f64 * 8.0 / dt } else { 0.0 };
                self.health.on_report(now, rtt_ms, loss, goodput);
            } else {
                // No evidence either way — still counts as a live report
                // stream for the starvation watchdog.
                self.health.keepalive(now);
            }
        } else {
            self.health.keepalive(now);
        }
        self.last_report = Some((report, now));
        self.tx_at_last_report = self.tx_offered;
    }
}

/// Deficit-scheduler weight of one leg: the smoothed goodput estimate
/// derated by loss and penalized by RTT. A Dead leg weighs nothing.
/// Unmeasured legs get optimistic priors — a fresh leg must be
/// schedulable, not invisible, or it never produces the traffic that
/// would measure it.
fn bonded_weight(health: &PathHealth, now: SimTime) -> f64 {
    if health.class(now) == HealthClass::Dead {
        return 0.0;
    }
    let goodput = health.goodput_bps().unwrap_or(5e6).max(1e5);
    let loss = health.loss().unwrap_or(0.0).clamp(0.0, 1.0);
    let rtt = health.rtt_ms().unwrap_or(50.0).max(1.0);
    goodput * (1.0 - loss).max(0.05) / (1.0 + rtt / 100.0)
}

/// Loss-adaptive FEC overhead ratio: ~2× the worst leg's loss EWMA plus a
/// flat bump while any leg is impaired (blackout risk), clamped to the
/// configured cap. Below [`FEC_MIN_RATIO`] the redundancy layer is off.
fn fec_ratio(cap: f64, legs: &[Leg], now: SimTime) -> f64 {
    if cap <= 0.0 {
        return 0.0;
    }
    let mut ratio = 0.0f64;
    for leg in legs.iter() {
        ratio = ratio.max(2.0 * leg.health.loss().unwrap_or(0.0));
        if leg.health.class(now) != HealthClass::Healthy {
            ratio = ratio.max(FEC_RISK_BUMP);
        }
    }
    ratio.min(cap)
}

/// Burst-adaptive parity-shard count: one shard covers independent
/// single losses (the XOR operating point); each
/// [`RS_BURST_PER_PARITY`] of the worst leg's loss-swing EWMA — the
/// Gilbert–Elliott bad-state signature — buys another, up to
/// [`MAX_RS_PARITY`]. Bursts erase *runs* of a striped group, and only
/// multi-shard Reed–Solomon groups survive runs.
fn rs_parity_target(legs: &[Leg]) -> usize {
    let mut burst = 0.0f64;
    for leg in legs.iter() {
        burst = burst.max(leg.health.loss_burstiness());
    }
    (1 + (burst / RS_BURST_PER_PARITY) as usize).min(MAX_RS_PARITY)
}

/// Deficit-weighted leg pick for one packet. Each participating
/// (positive-weight) leg accrues credit in proportion to its normalized
/// weight; the richest account (ties toward the lowest index) pays for
/// the packet. With zero participants the caller keeps offering to leg 0
/// rather than dropping at the sender; a single participant takes the
/// packet without touching the deficit state (so the arithmetic — and
/// every committed two-leg baseline — is bit-identical to the historical
/// hard-coded two-leg expressions).
fn pick_bonded_leg(w: &[f64; MAX_LEGS], deficit: &mut [f64; MAX_LEGS], n: usize) -> usize {
    let mut wsum = 0.0f64;
    let mut live = 0usize;
    let mut last_live = 0usize;
    for (i, &wi) in w.iter().enumerate().take(n) {
        if wi > 0.0 {
            wsum += wi;
            live += 1;
            last_live = i;
        }
    }
    match live {
        0 => 0,
        1 => last_live,
        _ => {
            for i in 0..n {
                if w[i] > 0.0 {
                    deficit[i] += w[i] / wsum;
                }
            }
            let mut p = 0usize;
            for i in 1..n {
                if w[p] <= 0.0 || (w[i] > 0.0 && deficit[i] > deficit[p]) {
                    p = i;
                }
            }
            deficit[p] -= 1.0;
            for i in 0..n {
                if w[i] > 0.0 {
                    deficit[i] = deficit[i].clamp(-DEFICIT_CLAMP, DEFICIT_CLAMP);
                }
            }
            p
        }
    }
}

/// Close the accumulating RS group and spread its parity shards across
/// the legs that carried the fewest of the group's members (maximal leg
/// diversity: parity should not share fate with the packets it
/// protects), preferring Up legs; distinct shards of one group land on
/// distinct legs whenever enough legs exist. `parity_buf` is a reusable
/// scratch vector.
#[allow(clippy::too_many_arguments)]
fn emit_rs_parity(
    t: SimTime,
    group: &mut RsGroup,
    group_tx: &mut [u64; MAX_LEGS],
    fec_seq: &mut u16,
    up: &[bool; MAX_LEGS],
    legs: &mut [Leg],
    parity_buf: &mut Vec<RsParityPacket>,
    metrics: &mut RunMetrics,
) {
    parity_buf.clear();
    group.build_into(parity_buf);
    let n = legs.len();
    if !parity_buf.is_empty() {
        // Candidate legs ordered by (members carried, index), Up legs
        // only — unless none is Up, in which case all legs stand in
        // (parity on a down leg mirrors the media path's own fallback).
        let mut order = [0usize; MAX_LEGS];
        let mut cnt = 0usize;
        for (i, &u) in up.iter().enumerate().take(n) {
            if u {
                order[cnt] = i;
                cnt += 1;
            }
        }
        if cnt == 0 {
            for (i, slot) in order.iter_mut().enumerate().take(n) {
                *slot = i;
            }
            cnt = n;
        }
        for a in 0..cnt {
            let mut best = a;
            for b in a + 1..cnt {
                if group_tx[order[b]] < group_tx[order[best]] {
                    best = b;
                }
            }
            order.swap(a, best);
        }
        for (pi, fp) in parity_buf.drain(..).enumerate() {
            *fec_seq = fec_seq.wrapping_add(1);
            let parity = fp.into_rtp(MEDIA_SSRC, *fec_seq);
            let fl = order[pi % cnt];
            metrics.fec_tx += 1;
            legs[fl].send_up(t, parity.serialize(), PacketKind::Media);
        }
    }
    *group_tx = [0; MAX_LEGS];
}

/// The sender's congestion-control plane: one engine for the classic
/// schemes, or per-leg shadow engines behind an aggregate target when
/// `ExperimentConfig::coupled_cc` arms the bonded coupling.
enum CcDriver {
    // Boxed: a full CcEngine is ~30× the coupled handle, and the driver
    // lives on the stack of a deep sim loop.
    Single(Box<CcEngine>),
    Coupled(CoupledCc),
}

impl CcDriver {
    fn start_bitrate_bps(&self) -> f64 {
        match self {
            CcDriver::Single(cc) => cc.start_bitrate_bps(),
            CcDriver::Coupled(cc) => cc.start_bitrate_bps(),
        }
    }

    fn with_twcc(&self) -> bool {
        match self {
            CcDriver::Single(cc) => cc.with_twcc(),
            CcDriver::Coupled(cc) => cc.with_twcc(),
        }
    }

    fn feedback_interval(&self) -> Option<SimDuration> {
        match self {
            CcDriver::Single(cc) => cc.feedback_interval(),
            CcDriver::Coupled(cc) => cc.feedback_interval(),
        }
    }

    fn on_tick(&mut self, now: SimTime) -> f64 {
        match self {
            CcDriver::Single(cc) => cc.on_tick(now),
            CcDriver::Coupled(cc) => cc.on_tick(now),
        }
    }

    fn target_bps(&self) -> f64 {
        match self {
            CcDriver::Single(cc) => cc.target_bps(),
            CcDriver::Coupled(cc) => cc.target_bps(),
        }
    }

    fn watchdog_stats(&self) -> Option<rpav_sim::WatchdogStats> {
        match self {
            CcDriver::Single(cc) => cc.watchdog_stats(),
            CcDriver::Coupled(cc) => cc.watchdog_stats(),
        }
    }

    fn scream_stats(&self) -> Option<rpav_scream::ScreamStats> {
        match self {
            CcDriver::Single(cc) => cc.scream_stats(),
            CcDriver::Coupled(cc) => cc.scream_stats(),
        }
    }
}

/// Run the multipath experiment over the flight of `base`, under
/// `base.cc`, with the chosen scheme. `base.n_legs` modems participate:
/// even legs ride `base.operator`, odd legs the other one.
pub fn run_multipath(base: &ExperimentConfig, scheme: MultipathScheme) -> RunMetrics {
    run_multipath_legs(base, scheme, Vec::new())
}

/// [`run_multipath`] with scripted fault campaigns on the first two legs
/// — the historical two-leg entry point, kept for every existing caller.
pub fn run_multipath_scripted(
    base: &ExperimentConfig,
    scheme: MultipathScheme,
    primary_script: Option<FaultScript>,
    secondary_script: Option<FaultScript>,
) -> RunMetrics {
    run_multipath_legs(base, scheme, vec![primary_script, secondary_script])
}

/// [`run_multipath`] with a per-leg scripted fault campaign: entry `i`
/// of `leg_scripts` (missing entries mean unscripted) hits both
/// directions of leg `i` — a true link blackout. Correlated cross-leg
/// failures are expressed by giving several legs scripts with
/// overlapping windows. Leg 0's blackout windows become per-outage
/// recovery records; scripts beyond `base.n_legs` are ignored.
pub fn run_multipath_legs(
    base: &ExperimentConfig,
    scheme: MultipathScheme,
    leg_scripts: Vec<Option<FaultScript>>,
) -> RunMetrics {
    let rngs = RngSet::new(base.seed);
    let plan = uav_profiles::paper_flight(Position::ground(0.0, 0.0), base.hold);
    let secondary_op = base.secondary_operator();
    let n = base.n_legs.clamp(1, MAX_LEGS);
    let mut legs: Vec<Leg> = (0..n)
        .map(|li| {
            let op = if li % 2 == 0 {
                base.operator
            } else {
                secondary_op
            };
            Leg::new(op, li, base, &rngs, base.run_index ^ ((li as u64) << 32))
        })
        .collect();
    let mut outage_windows = Vec::new();
    for (li, script) in leg_scripts.into_iter().take(n).enumerate() {
        if let Some(script) = script {
            if li == 0 {
                outage_windows.extend(script.blackout_windows());
            }
            legs[li].attach_script(script, &rngs, base.run_index);
        }
    }

    let source = SourceVideo::new(base.seed ^ 0x5EED);
    // The bonded coupled mode runs one shadow CC per leg behind an
    // aggregate target; every other configuration keeps the single
    // engine (and its bit-exact committed baselines).
    let coupled = scheme == MultipathScheme::Bonded && base.coupled_cc;
    let mut cc = if coupled {
        CcDriver::Coupled(CoupledCc::new(base.cc, base.watchdog, n))
    } else {
        CcDriver::Single(Box::new(CcEngine::new(base.cc, base.watchdog)))
    };
    let mut encoder = Encoder::new(EncoderConfig::default(), source, cc.start_bitrate_bps());
    let mut packetizer = Packetizer::new(0x2, cc.with_twcc());
    let ack_span = match base.cc {
        CcMode::Scream { ack_span } => ack_span,
        _ => 64,
    };

    // Receiver state.
    let mut jitter = JitterBuffer::new(JitterConfig::default());
    let mut depack = Depacketizer::new();
    let mut player = Player::new(PlayerConfig::default());
    let mut twcc_rec = TwccRecorder::new();
    let mut ccfb = Rfc8888Builder::new(ack_span);
    // Coupled mode keeps CC feedback per leg: each shadow engine only
    // ever sees its own leg's arrivals, so cross-leg delay variance
    // cannot masquerade as congestion.
    let mut leg_twcc: Vec<TwccRecorder> = (0..if coupled { n } else { 0 })
        .map(|_| TwccRecorder::new())
        .collect();
    let mut leg_ccfb: Vec<Rfc8888Builder> = (0..if coupled { n } else { 0 })
        .map(|_| Rfc8888Builder::new(ack_span))
        .collect();
    let mut next_cc_feedback = SimTime::ZERO;
    // First-copy-wins accounting across legs: the first arrival of an RTP
    // (sequence, timestamp) identity feeds metrics/jitter/CC; later copies
    // only count as duplicates.
    let mut seen: HashSet<u64> = HashSet::new();
    // CC feedback rides the leg of the most recent accepted media arrival.
    let mut last_media_leg = 0usize;
    // Bonded cross-leg reassembly: a bounded window of recent media
    // packets (fuel for FEC recovery), pending parity packets with their
    // playout deadline, and the unwrapped-highest sequence for reorder
    // accounting.
    let mut media_window: VecDeque<RtpPacket> = VecDeque::new();
    let mut rs_pending: VecDeque<(SimTime, RsParityPacket)> = VecDeque::new();
    let mut highest_useq: Option<u64> = None;
    // Loss-repair plumbing, active only when `base.repair` is set so the
    // stock runs stay bit-identical.
    // With bonded FEC armed, hold fresh NACKs long enough for parity to
    // land: the retransmission path only chases holes FEC missed.
    let fec_armed = scheme == MultipathScheme::Bonded && base.fec_cap > FEC_MIN_RATIO;
    let mut nack_gen = base.repair.then(|| {
        NackGenerator::new(NackConfig {
            initial_hold: if fec_armed {
                FEC_NACK_HOLD
            } else {
                SimDuration::ZERO
            },
            ..Default::default()
        })
    });
    let mut rtx = base.repair.then(|| RtxSender::new(RtxConfig::default()));

    // Sender-side failover state.
    let mut controller = FailoverController::new(FailoverConfig::default());
    let mut next_probe = SimTime::ZERO;
    // RTP sequences belonging to keyframes, for selective duplication and
    // the bonded single-leg fallback.
    let mut keyframe_seqs: HashSet<u16> = HashSet::new();
    // Bonded sender state: per-leg deficit counters, the accumulating RS
    // group with its per-leg tx split, the parity sequence counter, and
    // the reusable parity scratch buffer.
    let mut deficit = [0.0f64; MAX_LEGS];
    let mut rs_group = RsGroup::new();
    let mut rs_group_tx = [0u64; MAX_LEGS];
    let mut fec_seq: u16 = 0;
    let mut parity_buf: Vec<RsParityPacket> = Vec::with_capacity(MAX_RS_PARITY);
    // Caller-owned scratch reused every tick: reassembled frames drained
    // from the depacketizer, frames popped from the player, and the
    // per-leg admission batches for the coupled controller. Each is grown
    // once and recycled (the drain-style enqueue keeps the capacity here).
    let mut drained_scratch: Vec<ReassembledFrame> = Vec::new();
    let mut played_scratch = Vec::new();
    let mut pkt_scratch: Vec<RtpPacket> = Vec::new();
    let mut per_leg_scratch: Vec<Vec<RtpPacket>> = (0..legs.len()).map(|_| Vec::new()).collect();
    // Reusable feedback values for the receiver's build path (the report
    // vectors inside keep their capacity across feedback intervals).
    let mut twcc_fb_scratch = TwccFeedback::empty();
    let mut ccfb_scratch = Rfc8888Packet::empty();

    let mut metrics = RunMetrics::default();
    let mut ref_intact = true;
    let mut last_to_player: Option<u64> = None;
    let mut next_radio = SimTime::ZERO;
    let flight_end = SimTime::ZERO + plan.duration();
    let end = flight_end + DRAIN;
    let mut t = SimTime::ZERO;

    while t < end {
        // 1. Radio tick: re-rate links, pause through handovers, feed the
        // health estimators their radio-layer signals. Handover records
        // keep the single-path semantics: primary leg only.
        if t >= next_radio {
            next_radio = t + legs[0].radio.tick();
            let pos = plan.position_at(t);
            for (li, leg) in legs.iter_mut().enumerate() {
                leg.uplink.set_position(pos.x, pos.y, pos.z);
                leg.downlink.set_position(pos.x, pos.y, pos.z);
                let s = leg.radio.step(t, &pos);
                let mut up_bps = s.uplink_capacity_bps;
                if let Some((cap0, cap1)) = base.leg_cap_bps {
                    up_bps = up_bps.min(if li == 0 { cap0 } else { cap1 });
                }
                leg.uplink.set_rate_bps(t, up_bps.max(50e3));
                leg.downlink
                    .set_rate_bps(t, s.downlink_capacity_bps.max(50e3));
                leg.uplink.set_extra_delay(s.retx_delay);
                leg.downlink.set_extra_delay(s.retx_delay);
                if let Some(sig) = s.health_signal() {
                    leg.health.on_signal(sig);
                }
                if let Some(ho) = s.handover {
                    leg.uplink.pause_until(t, ho.complete_at);
                    leg.downlink.pause_until(t, ho.complete_at);
                    if li == 0 {
                        metrics.handovers.push(HandoverRecord {
                            at: ho.at,
                            het: ho.het(),
                            kind: ho.kind,
                            from: ho.from.0,
                            to: ho.to.0,
                        });
                    }
                }
            }
        }

        // 2. Sender-side health clocks and the switch decision.
        for leg in legs.iter_mut() {
            leg.health.on_tick(t);
        }
        if scheme.switches() && legs.len() >= 2 {
            let mut hrefs: [&PathHealth; MAX_LEGS] = [&legs[0].health; MAX_LEGS];
            for (i, leg) in legs.iter().enumerate() {
                hrefs[i] = &leg.health;
            }
            if let Some(d) = controller.on_tick(t, &hrefs[..legs.len()]) {
                metrics.switches.push(SwitchRecord {
                    at: t,
                    from_leg: d.from as u8,
                    to_leg: d.to as u8,
                    cause: d.cause,
                });
            }
        }
        let active = if scheme.switches() {
            controller.active()
        } else {
            0
        };

        // Bonded scheduler inputs, read only from health clocks: per-leg
        // liveness and weights, the loss-adaptive FEC ratio, and the
        // burst-adaptive parity depth. Computed before admission so the
        // coupled mode can stripe packets as they enter their shadow CCs.
        let mut bonded_up = [false; MAX_LEGS];
        let mut bonded_w = [0.0f64; MAX_LEGS];
        for (li, leg) in legs.iter().enumerate() {
            bonded_up[li] = leg.health.class(t) != HealthClass::Dead;
            if scheme == MultipathScheme::Bonded {
                bonded_w[li] = bonded_weight(&leg.health, t);
            }
        }
        if scheme == MultipathScheme::Bonded {
            let wmax = bonded_w[..n].iter().fold(0.0f64, |a, &b| a.max(b));
            if wmax > 0.0 {
                for li in 0..n {
                    if bonded_up[li] {
                        bonded_w[li] = bonded_w[li].max(EXPLORE_WEIGHT_FLOOR * wmax);
                    }
                }
            }
        }
        let up_count = bonded_up[..n].iter().filter(|&&u| u).count();
        let ratio = if scheme == MultipathScheme::Bonded {
            fec_ratio(base.fec_cap, &legs, t)
        } else {
            0.0
        };
        // Cross-leg parity needs at least two legs worth of diversity;
        // with one survivor the redundancy budget moves to keyframe
        // duplication instead.
        let fec_on = ratio >= FEC_MIN_RATIO && up_count >= 2;
        let rs_parity = if fec_on { rs_parity_target(&legs) } else { 1 };
        let group_target = if fec_on {
            ((rs_parity as f64 / ratio).round() as usize)
                .clamp(rs_parity.max(2), usize::from(MAX_FEC_GROUP))
        } else {
            usize::from(MAX_FEC_GROUP)
        };

        // 3. Encoder → packetizer → CC staging. The coupled mode pins
        // each packet to a leg here (deficit-weighted, in sequence order
        // so RS groups stay consecutive) and hands it to that leg's
        // shadow engine; the single-engine path stages as before.
        if t < flight_end {
            while let Some(frame) = encoder.poll(t) {
                packetizer.packetize_into(frame.meta, frame.meta.encode_time, &mut pkt_scratch);
                if frame.meta.keyframe
                    && matches!(
                        scheme,
                        MultipathScheme::SelectiveDuplicate | MultipathScheme::Bonded
                    )
                {
                    keyframe_seqs.extend(pkt_scratch.iter().map(|p| p.sequence));
                    if keyframe_seqs.len() > 10_000 {
                        keyframe_seqs.clear(); // stale u16 identities
                    }
                }
                match &mut cc {
                    CcDriver::Single(c) => c.enqueue_drain(t, &mut pkt_scratch),
                    CcDriver::Coupled(c) => {
                        for rtp in pkt_scratch.drain(..) {
                            let pick = pick_bonded_leg(&bonded_w, &mut deficit, n);
                            if fec_on {
                                rs_group.push(&rtp, rs_parity);
                                rs_group_tx[pick] += 1;
                                if usize::from(rs_group.len()) >= group_target {
                                    emit_rs_parity(
                                        t,
                                        &mut rs_group,
                                        &mut rs_group_tx,
                                        &mut fec_seq,
                                        &bonded_up,
                                        &mut legs,
                                        &mut parity_buf,
                                        &mut metrics,
                                    );
                                }
                            }
                            per_leg_scratch[pick].push(rtp);
                        }
                        for (li, pkts) in per_leg_scratch.iter_mut().enumerate() {
                            if !pkts.is_empty() {
                                c.enqueue_leg_drain(li, t, pkts);
                            }
                        }
                    }
                }
            }
        }

        // 4. CC-gated transmission: bonded deficit-weighted striping, or
        // the active leg plus scheme-driven duplication onto the others.
        let target = cc.on_tick(t);
        encoder.set_target_bitrate(target);
        if let Some(r) = rtx.as_mut() {
            r.refill(t, cc.target_bps());
        }
        if !fec_on && !rs_group.is_empty() {
            // The redundancy window closed mid-group (a leg died, or loss
            // calmed down): emit the partial parity rather than abandoning
            // the packets already folded in.
            emit_rs_parity(
                t,
                &mut rs_group,
                &mut rs_group_tx,
                &mut fec_seq,
                &bonded_up,
                &mut legs,
                &mut parity_buf,
                &mut metrics,
            );
        }
        match &mut cc {
            CcDriver::Single(engine) => {
                while let Some(rtp) = engine.poll_transmit(t) {
                    metrics.media_sent += 1;
                    if let Some(r) = rtx.as_mut() {
                        r.record(&rtp);
                    }
                    let wire = rtp.serialize();
                    if scheme == MultipathScheme::Bonded {
                        let pick = pick_bonded_leg(&bonded_w, &mut deficit, n);
                        legs[pick].tx_media += 1;
                        legs[pick].send_up(t, wire.clone(), PacketKind::Media);
                        if fec_on {
                            rs_group.push(&rtp, rs_parity);
                            rs_group_tx[pick] += 1;
                            if usize::from(rs_group.len()) >= group_target {
                                emit_rs_parity(
                                    t,
                                    &mut rs_group,
                                    &mut rs_group_tx,
                                    &mut fec_seq,
                                    &bonded_up,
                                    &mut legs,
                                    &mut parity_buf,
                                    &mut metrics,
                                );
                            }
                        } else if n >= 2 && up_count == 1 && keyframe_seqs.remove(&rtp.sequence) {
                            // Single-leg fallback on a multi-leg rig:
                            // repeat keyframe packets on the surviving
                            // leg — time diversity where leg diversity is
                            // gone. (A one-modem rig is plain single-path;
                            // nothing degraded, nothing to compensate.)
                            metrics.dup_tx_packets += 1;
                            metrics.dup_tx_bytes += wire.len() as u64;
                            legs[pick].send_up(t, wire, PacketKind::Media);
                        }
                    } else {
                        let dup = match scheme {
                            MultipathScheme::SinglePath | MultipathScheme::Failover => false,
                            MultipathScheme::Duplicate => true,
                            MultipathScheme::SelectiveDuplicate => {
                                keyframe_seqs.remove(&rtp.sequence)
                                    || legs[active].health.class(t) != HealthClass::Healthy
                            }
                            // Handled by the branch above; never reaches here.
                            MultipathScheme::Bonded => false,
                        };
                        legs[active].tx_media += 1;
                        legs[active].send_up(t, wire.clone(), PacketKind::Media);
                        if dup && legs.len() >= 2 {
                            match scheme {
                                MultipathScheme::Duplicate => {
                                    // Full duplication fans out to every
                                    // other leg.
                                    for (li, leg) in legs.iter_mut().enumerate().take(n) {
                                        if li != active {
                                            metrics.dup_tx_packets += 1;
                                            metrics.dup_tx_bytes += wire.len() as u64;
                                            leg.send_up(t, wire.clone(), PacketKind::Media);
                                        }
                                    }
                                }
                                _ => {
                                    // Selective duplication buys one copy:
                                    // the lowest-indexed standby.
                                    let li = usize::from(active == 0);
                                    metrics.dup_tx_packets += 1;
                                    metrics.dup_tx_bytes += wire.len() as u64;
                                    legs[li].send_up(t, wire, PacketKind::Media);
                                }
                            }
                        }
                    }
                }
            }
            CcDriver::Coupled(engine) => {
                // Packets were pinned to legs at admission; each shadow
                // engine paces its own leg. Parity already emitted there.
                for (li, leg) in legs.iter_mut().enumerate().take(n) {
                    while let Some(rtp) = engine.poll_transmit_leg(li, t) {
                        metrics.media_sent += 1;
                        if let Some(r) = rtx.as_mut() {
                            r.record(&rtp);
                        }
                        let wire = rtp.serialize();
                        leg.tx_media += 1;
                        leg.send_up(t, wire.clone(), PacketKind::Media);
                        if !fec_on && n >= 2 && up_count == 1 && keyframe_seqs.remove(&rtp.sequence)
                        {
                            metrics.dup_tx_packets += 1;
                            metrics.dup_tx_bytes += wire.len() as u64;
                            leg.send_up(t, wire, PacketKind::Media);
                        }
                    }
                }
            }
        }

        // 5. Keep-warm probes: a leg's health is only as fresh as the
        // traffic crossing it. Failover schemes probe the standby; bonded
        // probes any leg the scheduler left idle since the last check
        // (Dead legs especially — without traffic they could never
        // recover).
        if scheme.probes_standby() && t >= next_probe {
            next_probe = t + PROBE_INTERVAL;
            for (li, leg) in legs.iter_mut().enumerate() {
                if li != active {
                    metrics.probes_sent += 1;
                    leg.send_up(t, Bytes::from_static(&PROBE_PAYLOAD), PacketKind::Probe);
                }
            }
        } else if scheme == MultipathScheme::Bonded && n >= 2 && t >= next_probe {
            // One-modem rigs have no idle leg to keep warm — the media
            // flow itself is the health traffic, exactly as single-path.
            next_probe = t + PROBE_INTERVAL;
            for leg in legs.iter_mut() {
                if leg.tx_offered == leg.tx_at_probe {
                    metrics.probes_sent += 1;
                    leg.send_up(t, Bytes::from_static(&PROBE_PAYLOAD), PacketKind::Probe);
                }
                leg.tx_at_probe = leg.tx_offered;
            }
        }

        // 6. Uplink arrivals at the server: per-leg wire accounting first
        // (reports count everything that crossed the leg), then the media
        // pipeline for first copies only.
        for (li, leg) in legs.iter_mut().enumerate() {
            while let Some(pkt) = leg.uplink.poll(t) {
                if pkt.corrupted {
                    metrics.corrupted_arrivals += 1;
                }
                leg.rx_highest_seq = leg.rx_highest_seq.max(pkt.seq);
                leg.rx_count += 1;
                leg.rx_bytes += pkt.payload.len() as u64;
                let owd = t.saturating_since(pkt.sent_at);
                leg.rx_last_owd_us = owd.as_micros().min(u64::from(u32::MAX)) as u32;
                if pkt.kind == PacketKind::Probe {
                    continue;
                }
                let Ok(rtp) = RtpPacket::parse(pkt.payload.clone()) else {
                    metrics.malformed_packets += 1;
                    continue;
                };
                if scheme == MultipathScheme::Bonded && rtp.payload_type == RS_FEC_PAYLOAD_TYPE {
                    // Parity stream: queued against the playout deadline,
                    // never enters the media pipeline itself.
                    match RsParityPacket::parse_payload(rtp.payload.clone()) {
                        Ok(fp) => rs_pending.push_back((t + FEC_RECOVERY_DEADLINE, fp)),
                        Err(_) => metrics.malformed_packets += 1,
                    }
                    continue;
                }
                if !seen.insert(u64::from(rtp.sequence) | (u64::from(rtp.timestamp) << 16)) {
                    metrics.duplicate_packets += 1;
                    continue;
                }
                if let Some(ng) = nack_gen.as_mut() {
                    match ng.on_packet(t, rtp.sequence) {
                        Arrival::Stale => {
                            metrics.duplicate_packets += 1;
                            continue;
                        }
                        Arrival::Late => metrics.late_packets += 1,
                        _ => {}
                    }
                    ng.set_rtt_hint(SimDuration::from_micros(
                        (owd.as_millis_f64() * 2_000.0) as u64,
                    ));
                }
                metrics.media_received += 1;
                metrics.media_received_bytes += rtp.payload.len() as u64;
                metrics.owd.push((t, owd.as_millis_f64()));
                last_media_leg = li;
                match base.cc {
                    CcMode::Gcc => {
                        if let Some(ts) = rtp.transport_seq {
                            if coupled {
                                leg_twcc[li].on_packet(ts, t);
                            } else {
                                twcc_rec.on_packet(ts, t);
                            }
                        }
                    }
                    CcMode::Scream { .. } => {
                        if coupled {
                            leg_ccfb[li].on_packet(rtp.sequence, t);
                        } else {
                            ccfb.on_packet(rtp.sequence, t);
                        }
                    }
                    CcMode::Static { .. } => {}
                }
                if scheme == MultipathScheme::Bonded {
                    // Cross-leg reorder accounting on the unwrapped
                    // sequence, then into the bounded reassembly window.
                    match highest_useq {
                        None => highest_useq = Some(u64::from(rtp.sequence)),
                        Some(h) => {
                            let u = unwrap_seq(h, rtp.sequence);
                            if u < h {
                                metrics.reorder_buffered += 1;
                            } else {
                                highest_useq = Some(u);
                            }
                        }
                    }
                    media_window.push_back(rtp.clone());
                    if media_window.len() > MEDIA_WINDOW_CAP {
                        media_window.pop_front();
                    }
                }
                jitter.push(t, rtp);
            }
        }

        // 6b. FEC recovery: each pending group's parity shards are
        // pooled and redeemed against the reassembly window — a group
        // missing up to as many members as it has shards on hand is
        // rebuilt in one solve, before the NACK/RTX path ever spends a
        // round trip on the holes. Cascades to fixpoint (a recovered
        // packet can complete another group); deadline-expired parity is
        // dropped first.
        if scheme == MultipathScheme::Bonded && !rs_pending.is_empty() {
            rs_pending.retain(|(deadline, _)| *deadline >= t);
            loop {
                let mut recovered_any = false;
                let mut i = 0;
                while i < rs_pending.len() {
                    // Gather every shard of the group anchored at `i`
                    // (later arrivals of the same group sit further down
                    // the deque) into a fixed scratch array.
                    let mut remove_idx = [0usize; MAX_RS_PARITY];
                    let (recs, remove_cnt) = {
                        let first = &rs_pending[i].1;
                        let mut refs: [&RsParityPacket; MAX_RS_PARITY] = [first; MAX_RS_PARITY];
                        remove_idx[0] = i;
                        let mut cnt = 1usize;
                        for (j, (_, p)) in rs_pending.iter().enumerate().skip(i + 1) {
                            if cnt < MAX_RS_PARITY
                                && p.sn_base == first.sn_base
                                && p.count == first.count
                                && p.parity_count == first.parity_count
                            {
                                refs[cnt] = p;
                                remove_idx[cnt] = j;
                                cnt += 1;
                            }
                        }
                        (
                            rs_recover(&refs[..cnt], media_window.iter(), MEDIA_SSRC),
                            cnt,
                        )
                    };
                    let Some(recs) = recs else {
                        // Still short of survivors (or damaged shards):
                        // leave the group pending for the next arrivals.
                        i += 1;
                        continue;
                    };
                    for k in (0..remove_cnt).rev() {
                        rs_pending.remove(remove_idx[k]);
                    }
                    if recs.is_empty() {
                        // Nothing was missing; the group retires unused.
                        continue;
                    }
                    recovered_any = true;
                    let multi = recs.len() >= 2;
                    for rec in recs {
                        if !seen.insert(u64::from(rec.sequence) | (u64::from(rec.timestamp) << 16))
                        {
                            // The original landed after all (late copy or
                            // an RTX won the race): nothing left to repair.
                            continue;
                        }
                        metrics.fec_recovered += 1;
                        if multi {
                            // XOR could never have repaired this packet:
                            // its group lost more than one member.
                            metrics.fec_multi_recovered += 1;
                        }
                        metrics.media_received += 1;
                        metrics.media_received_bytes += rec.payload.len() as u64;
                        if let Some(ng) = nack_gen.as_mut() {
                            // Cancels any pending retransmission request
                            // for this sequence.
                            ng.on_packet(t, rec.sequence);
                        }
                        media_window.push_back(rec.clone());
                        if media_window.len() > MEDIA_WINDOW_CAP {
                            media_window.pop_front();
                        }
                        jitter.push(t, rec);
                    }
                }
                if !recovered_any {
                    break;
                }
            }
        }

        // 7. Receiver timers: per-leg path reports on their own downlink,
        // CC feedback on the last accepted media arrival's leg.
        for (li, leg) in legs.iter_mut().enumerate() {
            if t >= leg.next_report {
                leg.next_report = t + REPORT_INTERVAL;
                let report = PathReport {
                    leg: li as u8,
                    highest_seq: leg.rx_highest_seq,
                    received: leg.rx_count,
                    received_bytes: leg.rx_bytes,
                    newest_owd_us: leg.rx_last_owd_us,
                };
                leg.dl_seq += 1;
                leg.downlink.enqueue(
                    t,
                    Packet::new(leg.dl_seq, report.serialize(), PacketKind::Feedback, t),
                );
            }
        }
        if let Some(interval) = cc.feedback_interval() {
            if t >= next_cc_feedback {
                next_cc_feedback = t + interval;
                if coupled {
                    // Per-leg feedback on that leg's own downlink: each
                    // shadow engine hears only about its own packets.
                    for (li, leg) in legs.iter_mut().enumerate() {
                        let wire = match base.cc {
                            CcMode::Gcc => leg_twcc[li]
                                .build_feedback_into(&mut twcc_fb_scratch)
                                .then(|| twcc_fb_scratch.serialize()),
                            CcMode::Scream { .. } => leg_ccfb[li]
                                .build_into(t, &mut ccfb_scratch)
                                .then(|| ccfb_scratch.serialize()),
                            CcMode::Static { .. } => None,
                        };
                        if let Some(wire) = wire {
                            leg.dl_seq += 1;
                            leg.downlink
                                .enqueue(t, Packet::new(leg.dl_seq, wire, PacketKind::Feedback, t));
                        }
                    }
                } else {
                    let wire = match base.cc {
                        CcMode::Gcc => twcc_rec
                            .build_feedback_into(&mut twcc_fb_scratch)
                            .then(|| twcc_fb_scratch.serialize()),
                        CcMode::Scream { .. } => ccfb
                            .build_into(t, &mut ccfb_scratch)
                            .then(|| ccfb_scratch.serialize()),
                        CcMode::Static { .. } => None,
                    };
                    if let Some(wire) = wire {
                        let leg = &mut legs[last_media_leg];
                        leg.dl_seq += 1;
                        leg.downlink
                            .enqueue(t, Packet::new(leg.dl_seq, wire, PacketKind::Feedback, t));
                    }
                }
            }
        } else {
            next_cc_feedback = SimTime::MAX;
        }
        if let Some(ng) = nack_gen.as_mut() {
            if let Some(nack) = ng.poll(t) {
                // Repair requests follow the CC feedback convention: ride
                // the leg that last delivered media.
                let leg = &mut legs[last_media_leg];
                leg.dl_seq += 1;
                leg.downlink.enqueue(
                    t,
                    Packet::new(leg.dl_seq, nack.serialize(), PacketKind::Feedback, t),
                );
            }
        }

        // 8. Downlink arrivals at the sender: path reports feed health,
        // everything else is offered to the CC (each leg's feedback to
        // its own shadow engine in coupled mode).
        for (li, leg) in legs.iter_mut().enumerate() {
            while let Some(pkt) = leg.downlink.poll(t) {
                if pkt.corrupted {
                    metrics.corrupted_arrivals += 1;
                }
                if let Ok(report) = PathReport::parse(pkt.payload.clone()) {
                    metrics.path_reports_received += 1;
                    leg.on_report(t, report, pkt.sent_at);
                    continue;
                }
                if let Some(r) = rtx.as_mut() {
                    if let Ok(nack) = Nack::parse(pkt.payload.clone()) {
                        // Retransmissions ride the leg whose feedback
                        // carried the request — known to be delivering.
                        for p in r.on_nack(&nack) {
                            leg.send_up(t, p.serialize(), PacketKind::Media);
                        }
                        continue;
                    }
                }
                let accepted = match &mut cc {
                    CcDriver::Single(c) => c.on_feedback(pkt.payload.clone(), t),
                    CcDriver::Coupled(c) => c.on_feedback_leg(li, pkt.payload.clone(), t),
                };
                if !accepted {
                    metrics.malformed_packets += 1;
                }
            }
        }

        // 9. Jitter buffer → depacketizer → SSIM → player.
        while let Some((playout, rtp)) = jitter.pop_due(t) {
            depack.push(&rtp, playout);
        }
        if let Some(highest) = depack.highest_frame() {
            depack.drain_into(highest.saturating_sub(2), &mut drained_scratch);
            for frame in drained_scratch.drain(..) {
                let n = frame.meta.frame_number;
                if let Some(last) = last_to_player {
                    if n > last.saturating_add(1) {
                        ref_intact = false;
                    }
                }
                last_to_player = Some(n);
                let ssim = quality::frame_ssim(
                    &source,
                    n,
                    frame.meta.frame_bytes,
                    frame.received_fraction(),
                    ref_intact,
                );
                if frame.is_complete() && frame.meta.keyframe {
                    ref_intact = true;
                } else if !frame.is_complete() {
                    ref_intact = false;
                }
                player.push(DecodedFrame {
                    frame_number: n,
                    encode_time: frame.meta.encode_time,
                    ssim,
                });
            }
        }
        player.poll_into(t, &mut played_scratch);
        for ev in played_scratch.drain(..) {
            metrics.frames.push(FrameRecord {
                number: ev.frame_number,
                display_at: ev.display_time,
                latency_ms: ev.latency.map(|l| l.as_millis_f64()),
                ssim: ev.ssim,
                displayed: ev.displayed,
            });
        }
        t += TICK;
    }

    metrics.duration = plan.duration();
    let pstats = player.stats();
    metrics.stalls = pstats.stalls;
    metrics.stalled_time = pstats.stalled_time;
    metrics.frames_late_discarded = pstats.late_discarded;
    metrics.distinct_cells = legs[0].radio.distinct_cells();
    metrics.forced_keyframes = encoder.forced_keyframes();
    metrics.duplicate_packets += jitter.stats().duplicates;
    if let Some(ss) = cc.scream_stats() {
        metrics.sender_discarded = ss.queue_discarded;
        metrics.span_skipped = ss.span_skipped;
    }
    if let Some(w) = cc.watchdog_stats() {
        metrics.watchdog_activations = w.activations;
        metrics.watchdog_recoveries = w.recoveries;
        metrics.watchdog_last_ramp = w.last_ramp;
    }
    if let Some(ng) = &nack_gen {
        let ns = ng.stats();
        metrics.nacks_sent = ns.nacks_sent;
        metrics.nack_seqs_requested = ns.seqs_requested;
        metrics.rtx_recovered = ns.recovered;
        metrics.rtx_late = ns.late_recovered;
        metrics.nack_abandoned = ns.abandoned;
    }
    if let Some(r) = &rtx {
        let rs = r.stats();
        metrics.rtx_sent = rs.retransmitted;
        metrics.rtx_bytes = rs.bytes_retransmitted;
        metrics.rtx_budget_exhausted = rs.budget_exhausted;
        metrics.rtx_not_in_history = rs.not_in_history;
    }
    for (li, leg) in legs.iter().enumerate() {
        let (healthy, degraded, dead) = leg.health.time_in_class();
        metrics.path_health.push(PathHealthSummary {
            leg: li as u8,
            time_healthy: healthy,
            time_degraded: degraded,
            time_dead: dead,
            reports: leg.health.reports(),
            final_rtt_ms: leg.health.rtt_ms(),
            final_loss: leg.health.loss(),
            tx_packets: leg.tx_media,
        });
        metrics.script_dropped += leg.uplink.script_stats().map(|s| s.dropped()).unwrap_or(0)
            + leg
                .downlink
                .script_stats()
                .map(|s| s.dropped())
                .unwrap_or(0);
    }
    metrics.record_outages(&outage_windows);
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::stats;
    use rpav_lte::Environment;
    use rpav_netem::FaultScript;

    fn base() -> ExperimentConfig {
        ExperimentConfig::builder()
            .cc(CcMode::paper_static(Environment::Rural))
            .seed(0xD0A1)
            .hold_secs(1)
            .build()
    }

    #[test]
    fn duplicate_path_improves_latency_tail() {
        let cfg = base();
        let single = run_multipath(&cfg, MultipathScheme::SinglePath);
        let dual = run_multipath(&cfg, MultipathScheme::Duplicate);
        // Same offered load either way (duplicates are accounted apart).
        assert_eq!(single.media_sent, dual.media_sent);
        assert_eq!(dual.dup_tx_packets, dual.media_sent);
        // Reliability: the duplicate scheme must not lose more...
        assert!(dual.per() <= single.per() + 1e-9);
        // ...and its latency tail must improve (one path's stall is
        // covered by the other).
        let p99_single = stats::quantile(&single.owd_ms(), 0.99);
        let p99_dual = stats::quantile(&dual.owd_ms(), 0.99);
        assert!(
            p99_dual < p99_single,
            "duplicate p99 {p99_dual:.0} ms !< single {p99_single:.0} ms"
        );
        // Playback budget compliance improves too.
        assert!(
            dual.playback_within(300.0) >= single.playback_within(300.0),
            "dual {:.2} vs single {:.2}",
            dual.playback_within(300.0),
            single.playback_within(300.0)
        );
    }

    #[test]
    fn schemes_have_names() {
        for s in MultipathScheme::all() {
            assert!(!s.name().is_empty());
        }
        assert_eq!(MultipathScheme::SinglePath.name(), "single-path");
        assert_eq!(MultipathScheme::Failover.name(), "failover");
        assert_eq!(MultipathScheme::Bonded.name(), "bonded");
    }

    #[test]
    fn baseline_is_all_minus_bonded() {
        let all = MultipathScheme::all();
        let baseline = MultipathScheme::baseline();
        assert_eq!(all.len(), baseline.len() + 1);
        assert_eq!(&all[..baseline.len()], &baseline[..]);
        assert!(!baseline.contains(&MultipathScheme::Bonded));
        assert_eq!(all[all.len() - 1], MultipathScheme::Bonded);
    }

    #[test]
    fn quiet_run_never_switches() {
        let m = run_multipath(&base(), MultipathScheme::Failover);
        assert!(
            m.switches.is_empty(),
            "spurious switches on a healthy run: {:?}",
            m.switches
        );
        assert!(m.probes_sent > 0);
        assert_eq!(m.path_health.len(), 2);
        // Both legs were monitored the whole run.
        assert!(m.path_health.iter().all(|p| p.reports > 50));
    }

    #[test]
    fn blackout_triggers_exactly_one_failover() {
        let cfg = base();
        let fault_at = SimTime::ZERO + SimDuration::from_secs(5);
        let fault_for = SimDuration::from_secs(10);
        let script = || FaultScript::new().blackout(fault_at, fault_for);
        let single =
            run_multipath_scripted(&cfg, MultipathScheme::SinglePath, Some(script()), None);
        let fo = run_multipath_scripted(&cfg, MultipathScheme::Failover, Some(script()), None);
        // Exactly one switch inside the fault window (later radio events
        // elsewhere in the flight may legitimately switch again).
        let in_window: Vec<_> = fo
            .switches
            .iter()
            .filter(|s| s.at >= fault_at && s.at <= fault_at + fault_for)
            .collect();
        assert_eq!(in_window.len(), 1, "{:?}", fo.switches);
        assert_eq!(in_window[0].to_leg, 1);
        assert!(
            fo.stalled_time < single.stalled_time,
            "failover stalled {:?} !< single-path {:?}",
            fo.stalled_time,
            single.stalled_time
        );
        // The primary leg was seen dead for a substantial part of the
        // blackout.
        assert!(fo.path_health[0].time_dead > SimDuration::from_secs(2));
    }

    #[test]
    fn selective_duplicate_copies_only_a_fraction() {
        let mut cfg = base();
        cfg.hold = SimDuration::from_secs(4);
        let sel = run_multipath(&cfg, MultipathScheme::SelectiveDuplicate);
        assert!(sel.dup_tx_packets > 0, "keyframes must be duplicated");
        assert!(
            (sel.dup_tx_packets as f64) < 0.5 * sel.media_sent as f64,
            "selective duplication copied {}/{} packets",
            sel.dup_tx_packets,
            sel.media_sent
        );
    }

    #[test]
    fn leg_report_counter_regression_is_harmless() {
        use rpav_rtp::report::PathReport;
        let cfg = base();
        let rngs = RngSet::new(1);
        let mut leg = Leg::new(cfg.operator, 0, &cfg, &rngs, 0);
        let t0 = SimTime::ZERO + SimDuration::from_millis(50);
        leg.on_report(
            t0,
            PathReport {
                leg: 0,
                highest_seq: 1_000,
                received: 900,
                received_bytes: 1_000_000,
                newest_owd_us: 40_000,
            },
            SimTime::ZERO,
        );
        // Hostile or cross-leg-reordered report: every counter regresses
        // and the timestamps run backwards. Saturating deltas must
        // neither panic nor poison the estimate.
        leg.on_report(
            SimTime::ZERO,
            PathReport {
                leg: 0,
                highest_seq: 10,
                received: 5,
                received_bytes: 100,
                newest_owd_us: u32::MAX,
            },
            t0,
        );
        assert!(leg.health.loss().is_none_or(|l| (0.0..=1.0).contains(&l)));
    }

    #[test]
    fn bonded_splits_media_across_both_legs() {
        let mut cfg = base();
        cfg.hold = SimDuration::from_secs(4);
        let m = run_multipath(&cfg, MultipathScheme::Bonded);
        assert!(m.media_sent > 0);
        let share0 = m.leg_tx_share(0);
        let share1 = m.leg_tx_share(1);
        assert!((share0 + share1 - 1.0).abs() < 1e-9);
        // On two healthy legs the deficit scheduler stripes packets on
        // both — neither leg starves, neither monopolizes.
        assert!(
            (0.15..=0.85).contains(&share0),
            "leg 0 carried {share0:.2} of first transmissions"
        );
        // No parity without a redundancy budget.
        assert_eq!(m.fec_tx, 0);
        assert_eq!(m.fec_recovered, 0);
    }

    #[test]
    fn bonded_goodput_exceeds_best_single_leg_under_asymmetric_caps() {
        let mut cfg = ExperimentConfig::builder()
            .cc(CcMode::paper_static(Environment::Rural))
            .seed(0xD0A1)
            .hold_secs(4)
            .leg_caps(3.0e6, 2.5e6)
            .build();
        let bonded = run_multipath(&cfg, MultipathScheme::Bonded);
        let single_a = run_multipath(&cfg, MultipathScheme::SinglePath);
        // Best single leg: run single-path on the other leg by swapping
        // the caps (single-path always rides leg 0).
        cfg.leg_cap_bps = Some((2.5e6, 3.0e6));
        let single_b = run_multipath(&cfg, MultipathScheme::SinglePath);
        let best_single = single_a
            .media_received_bytes
            .max(single_b.media_received_bytes);
        assert!(
            bonded.media_received_bytes > best_single,
            "bonded {} B !> best single leg {} B",
            bonded.media_received_bytes,
            best_single
        );
    }

    #[test]
    fn bonded_fec_recovers_losses_before_nack() {
        let cfg = ExperimentConfig::builder()
            .cc(CcMode::paper_static(Environment::Rural))
            .seed(0xD0A1)
            .hold_secs(4)
            .fec_cap(0.25)
            .repair(true)
            .build();
        let window_end = SimDuration::from_secs(30);
        let script = || {
            FaultScript::new().burst_loss_window(
                SimTime::ZERO,
                window_end,
                0.05,
                0.3,
                0.5,
                Some(PacketKind::Media),
            )
        };
        let m = run_multipath_scripted(
            &cfg,
            MultipathScheme::Bonded,
            Some(script()),
            Some(script()),
        );
        assert!(m.script_dropped > 0, "burst script never dropped anything");
        assert!(m.fec_tx > 0, "adaptive ratio never turned FEC on");
        assert!(
            m.fec_recovered > 0,
            "no packet recovered ({} parity tx, {} dropped)",
            m.fec_tx,
            m.script_dropped
        );
    }

    #[test]
    fn bonded_falls_back_to_keyframe_duplication_on_one_leg() {
        let cfg = ExperimentConfig::builder()
            .cc(CcMode::paper_static(Environment::Rural))
            .seed(0xD0A1)
            .hold_secs(4)
            .build();
        // Secondary dies just after its health stream starts (a leg that
        // never reported keeps its startup grace and is never declared
        // dead): bonding degenerates to a single leg, where the
        // redundancy budget buys keyframe repeats.
        let blackout = FaultScript::new().blackout(
            SimTime::ZERO + SimDuration::from_secs(1),
            SimDuration::from_secs(120),
        );
        let m = run_multipath_scripted(&cfg, MultipathScheme::Bonded, None, Some(blackout));
        assert!(m.dup_tx_packets > 0, "no keyframe repeats on the lone leg");
        assert!(
            (m.dup_tx_packets as f64) < 0.5 * m.media_sent as f64,
            "fallback duplicated {}/{} packets",
            m.dup_tx_packets,
            m.media_sent
        );
        assert_eq!(m.fec_tx, 0, "cross-leg parity with one leg down");
        // Essentially everything after the first second first-flew on the
        // surviving leg.
        assert!(m.leg_tx_share(0) > 0.8, "share {}", m.leg_tx_share(0));
    }

    #[test]
    fn bonded_deterministic_replay_bit_identical() {
        let cfg = ExperimentConfig::builder()
            .cc(CcMode::paper_static(Environment::Rural))
            .seed(0xD0A1)
            .hold_secs(2)
            .fec_cap(0.25)
            .repair(true)
            .build();
        let script = || {
            FaultScript::new().burst_loss_window(
                SimTime::ZERO + SimDuration::from_secs(1),
                SimDuration::from_secs(10),
                0.05,
                0.3,
                0.5,
                Some(PacketKind::Media),
            )
        };
        let run = || {
            run_multipath_scripted(
                &cfg,
                MultipathScheme::Bonded,
                Some(script()),
                Some(script()),
            )
        };
        assert_eq!(run().to_bytes(), run().to_bytes());
    }

    #[test]
    fn deterministic_replay_per_seed() {
        let cfg = base();
        let run = || {
            run_multipath_scripted(
                &cfg,
                MultipathScheme::Failover,
                Some(FaultScript::new().blackout(
                    SimTime::ZERO + SimDuration::from_secs(3),
                    SimDuration::from_secs(4),
                )),
                None,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.media_sent, b.media_sent);
        assert_eq!(a.media_received, b.media_received);
        assert_eq!(a.probes_sent, b.probes_sent);
        assert_eq!(a.switches.len(), b.switches.len());
        for (x, y) in a.switches.iter().zip(&b.switches) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.cause, y.cause);
        }
        assert_eq!(a.frames.len(), b.frames.len());
    }

    #[test]
    fn one_leg_bonded_degenerates_to_single_path() {
        // With a single modem there is nothing to stripe, no cross-leg
        // parity, and no fallback duplication (nothing ever *went* down
        // to trigger it): the bonded scheduler must reduce to plain
        // single-path delivery on leg 0.
        let mut cfg = base();
        cfg.n_legs = 1;
        cfg.hold = SimDuration::from_secs(4);
        let bonded = run_multipath(&cfg, MultipathScheme::Bonded);
        let single = run_multipath(&cfg, MultipathScheme::SinglePath);
        assert_eq!(bonded.path_health.len(), 1);
        assert_eq!(bonded.fec_tx, 0, "cross-leg parity with one leg");
        assert_eq!(bonded.media_sent, single.media_sent);
        assert_eq!(bonded.media_received, single.media_received);
        assert_eq!(bonded.media_received_bytes, single.media_received_bytes);
        assert_eq!(bonded.frames.len(), single.frames.len());
    }

    #[test]
    fn three_leg_bonded_stripes_across_all_legs() {
        let mut cfg = base();
        cfg.n_legs = 3;
        cfg.hold = SimDuration::from_secs(4);
        let m = run_multipath(&cfg, MultipathScheme::Bonded);
        assert_eq!(m.path_health.len(), 3);
        let shares: Vec<f64> = (0..3).map(|li| m.leg_tx_share(li)).collect();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // The goodput-proportional weights need not split evenly — the
        // slower operator's leg settles well below 1/3 — but every leg
        // must carry real traffic and none may monopolize the flow.
        for (li, s) in shares.iter().enumerate() {
            assert!(
                (0.02..=0.90).contains(s),
                "leg {li} carried {s:.2} of first transmissions"
            );
        }
        // The health plane only counts a report once an interval offers
        // enough packets to measure (LOSS_MIN_TX); a starved leg can
        // keepalive through every interval and finish at zero. The busy
        // legs must still produce real loss/goodput samples.
        assert!(m.path_health.iter().filter(|p| p.reports > 0).count() >= 2);
    }

    #[test]
    fn three_leg_bonded_survives_correlated_two_leg_burst() {
        // Two legs share a synchronized burst-loss window (same cell, say)
        // while the third stays clean: bonded delivery with RS parity must
        // beat the same fault hitting a two-leg rig, and repair groups
        // that lost more than one member (beyond any XOR code).
        let cfg3 = {
            let mut c = ExperimentConfig::builder()
                .cc(CcMode::paper_static(Environment::Rural))
                .seed(0xD0A1)
                .hold_secs(4)
                .fec_cap(0.25)
                .repair(true)
                .build();
            c.n_legs = 3;
            c
        };
        let burst = || {
            FaultScript::new().burst_loss_window(
                SimTime::ZERO + SimDuration::from_secs(1),
                SimDuration::from_secs(25),
                0.08,
                0.25,
                0.6,
                Some(PacketKind::Media),
            )
        };
        let m = run_multipath_legs(
            &cfg3,
            MultipathScheme::Bonded,
            vec![Some(burst()), Some(burst()), None],
        );
        assert!(m.script_dropped > 0, "correlated burst never dropped");
        assert!(m.fec_tx > 0, "adaptive ratio never turned FEC on");
        assert!(m.fec_recovered > 0, "no packet recovered");
        assert!(
            m.fec_multi_recovered > 0,
            "no multi-loss group repaired ({} single repairs)",
            m.fec_recovered
        );
    }
}
