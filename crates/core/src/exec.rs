//! The parallel deterministic campaign engine.
//!
//! The paper aggregates ≈130 runs over ≈90 flights (urban/rural × two
//! operators × three CCs × air/ground); reproducing that cross-product
//! used to mean five hand-rolled nested loops, all strictly sequential.
//! Every seeded run is independent, so this module factors the loops into
//! one engine:
//!
//! * [`MatrixSpec`] — a declarative cross-product of scenario axes
//!   (environment × operator × mobility × CC × scheme × fault script ×
//!   repair × run index) that [expands](MatrixSpec::expand) into
//!   independent [`Cell`]s in a fixed, documented order.
//! * [`CampaignEngine`] — a bounded `std::thread` pool (no external deps)
//!   pulling cells off an atomic work queue and posting results back over
//!   an `mpsc` channel into **submission-ordered** slots.
//! * Per-cell result caching keyed by a [stable hash](Cell::key) of the
//!   fully-expanded configuration: in-memory always, plus an opt-in
//!   on-disk layer under `target/rpav-cache` (salted by the crate
//!   version, so a rebuilt crate never replays stale metrics).
//!
//! # Determinism contract
//!
//! A cell's result is a pure function of its expanded configuration:
//! every simulation draws from `RngSet::new(config.seed)` streams keyed
//! by purpose and run index, never from wall-clock, thread identity, or
//! global state. Workers race only for *which* cell to run next; the
//! result lands in `results[cell.index]` regardless of completion order.
//! Therefore `jobs = N` is bit-identical to `jobs = 1` — asserted over
//! the canonical [`RunMetrics::to_bytes`] encoding by the engine tests —
//! and cached results are byte-equal to fresh ones.
//!
//! # Environment knobs
//!
//! * `RPAV_JOBS` — worker count override (default: available
//!   parallelism).
//! * `RPAV_CACHE` — set to enable the on-disk cache (`1` → the default
//!   `target/rpav-cache`, any other value → that directory).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use rpav_lte::{Environment, Operator};
use rpav_netem::{FaultClause, FaultScript, PacketKind};

use crate::codec::ByteWriter;
use crate::metrics::RunMetrics;
use crate::multipath::{run_multipath_legs, MultipathScheme};
use crate::pipeline::Simulation;
use crate::runner::CampaignResult;
use crate::scenario::{CcMode, ExperimentConfig, Mobility};

/// How a cell's media flow is mapped onto the radio link(s).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunScheme {
    /// The single-operator sender/receiver pipeline ([`Simulation`]).
    Pipeline,
    /// The two-modem multipath experiment under the given scheme.
    Multipath(MultipathScheme),
}

impl RunScheme {
    /// Display name ("pipeline", or the multipath scheme's name).
    pub fn name(&self) -> &'static str {
        match self {
            RunScheme::Pipeline => "pipeline",
            RunScheme::Multipath(s) => s.name(),
        }
    }

    fn tag(&self) -> u8 {
        match self {
            RunScheme::Pipeline => 0,
            RunScheme::Multipath(MultipathScheme::SinglePath) => 1,
            RunScheme::Multipath(MultipathScheme::Duplicate) => 2,
            RunScheme::Multipath(MultipathScheme::Failover) => 3,
            RunScheme::Multipath(MultipathScheme::SelectiveDuplicate) => 4,
            RunScheme::Multipath(MultipathScheme::Bonded) => 5,
        }
    }
}

/// A named fault campaign applied to one cell.
///
/// For [`RunScheme::Pipeline`], `uplink`/`downlink` script the two
/// directions of the single operator's link. For
/// [`RunScheme::Multipath`], `uplink` scripts leg 0, `secondary` leg 1,
/// and `extra` any further legs (each script hits both directions of
/// its leg, matching [`run_multipath_legs`]); `downlink` is unused.
#[derive(Clone, Debug, Default)]
pub struct CellFault {
    /// Short name, part of the cell label (empty = no fault).
    pub name: String,
    /// Pipeline uplink / multipath primary-leg script.
    pub uplink: Option<FaultScript>,
    /// Pipeline downlink script.
    pub downlink: Option<FaultScript>,
    /// Multipath standby-leg script.
    pub secondary: Option<FaultScript>,
    /// Multipath scripts for legs 2+ (entry `i` hits leg `i + 2`); rigs
    /// beyond two modems only. Scripts past `ExperimentConfig::n_legs`
    /// are ignored by the driver.
    pub extra: Vec<Option<FaultScript>>,
}

impl CellFault {
    /// The unimpaired cell.
    pub fn none() -> Self {
        CellFault::default()
    }

    /// One script on both directions of the (single) link — the
    /// `with_link_script` idiom of the chaos campaigns.
    pub fn link(name: impl Into<String>, script: FaultScript) -> Self {
        CellFault {
            name: name.into(),
            uplink: Some(script.clone()),
            downlink: Some(script),
            secondary: None,
            extra: Vec::new(),
        }
    }

    /// Script on the uplink (media direction) only.
    pub fn uplink(name: impl Into<String>, script: FaultScript) -> Self {
        CellFault {
            name: name.into(),
            uplink: Some(script),
            downlink: None,
            secondary: None,
            extra: Vec::new(),
        }
    }

    /// Script on the downlink (feedback direction) only.
    pub fn downlink(name: impl Into<String>, script: FaultScript) -> Self {
        CellFault {
            name: name.into(),
            uplink: None,
            downlink: Some(script),
            secondary: None,
            extra: Vec::new(),
        }
    }

    /// Multipath faults: `primary` hits the primary leg, `secondary` the
    /// standby leg.
    pub fn legs(
        name: impl Into<String>,
        primary: Option<FaultScript>,
        secondary: Option<FaultScript>,
    ) -> Self {
        CellFault {
            name: name.into(),
            uplink: primary,
            downlink: None,
            secondary,
            extra: Vec::new(),
        }
    }

    /// Multipath faults for an N-leg rig: entry `i` of `scripts` hits
    /// leg `i` (missing / `None` entries leave that leg unscripted).
    /// Correlated cross-leg failures are several entries with
    /// overlapping windows.
    pub fn per_leg(name: impl Into<String>, mut scripts: Vec<Option<FaultScript>>) -> Self {
        let uplink = if scripts.is_empty() {
            None
        } else {
            scripts.remove(0)
        };
        let secondary = if scripts.is_empty() {
            None
        } else {
            scripts.remove(0)
        };
        CellFault {
            name: name.into(),
            uplink,
            downlink: None,
            secondary,
            extra: scripts,
        }
    }

    /// The per-leg script vector the multipath driver consumes: leg 0 =
    /// `uplink`, leg 1 = `secondary`, legs 2+ = `extra`.
    pub fn leg_scripts(&self) -> Vec<Option<FaultScript>> {
        let mut v = Vec::with_capacity(2 + self.extra.len());
        v.push(self.uplink.clone());
        v.push(self.secondary.clone());
        v.extend(self.extra.iter().cloned());
        v
    }

    /// Whether the fault is a no-op.
    pub fn is_none(&self) -> bool {
        self.uplink.is_none()
            && self.downlink.is_none()
            && self.secondary.is_none()
            && self.extra.iter().all(Option::is_none)
    }
}

/// The congestion-control axis of a matrix.
#[derive(Clone, Debug, Default)]
pub enum CcAxis {
    /// Keep the base configuration's CC (a single-cc matrix).
    #[default]
    Base,
    /// Sweep an explicit list.
    List(Vec<CcMode>),
    /// Sweep the paper's three §3.2 workloads, with the Static bitrate
    /// following each cell's *environment* (25 Mbps urban / 8 Mbps
    /// rural) — what every figure binary wants.
    PaperWorkloads,
}

/// A declarative cross-product of scenario axes.
///
/// Empty axes fall back to the base configuration's value, so
/// `MatrixSpec::new(base).runs(5)` is exactly the old
/// `run_campaign(base, 5)` shape. Expansion order is part of the API:
/// environment → operator → mobility → CC → scheme → fault → repair →
/// run index, with the run index innermost (seed-matched cells stay
/// adjacent).
#[derive(Clone, Debug)]
pub struct MatrixSpec {
    base: ExperimentConfig,
    environments: Vec<Environment>,
    operators: Vec<Operator>,
    mobilities: Vec<Mobility>,
    ccs: CcAxis,
    schemes: Vec<RunScheme>,
    faults: Vec<CellFault>,
    repairs: Vec<bool>,
    runs: u64,
}

impl MatrixSpec {
    /// A single-cell matrix of `base`; add axes with the builder methods.
    pub fn new(base: ExperimentConfig) -> Self {
        MatrixSpec {
            base,
            environments: Vec::new(),
            operators: Vec::new(),
            mobilities: Vec::new(),
            ccs: CcAxis::Base,
            schemes: Vec::new(),
            faults: Vec::new(),
            repairs: Vec::new(),
            runs: 1,
        }
    }

    /// Sweep flight environments.
    pub fn environments(mut self, envs: impl IntoIterator<Item = Environment>) -> Self {
        self.environments = envs.into_iter().collect();
        self
    }

    /// Sweep cellular operators.
    pub fn operators(mut self, ops: impl IntoIterator<Item = Operator>) -> Self {
        self.operators = ops.into_iter().collect();
        self
    }

    /// Sweep mobilities. Unless the base overrides `hold` away from its
    /// own mobility's paper default, each cell's hold follows *its*
    /// mobility's paper default (5 s air hover, 45 s ground sweep).
    pub fn mobilities(mut self, mobilities: impl IntoIterator<Item = Mobility>) -> Self {
        self.mobilities = mobilities.into_iter().collect();
        self
    }

    /// Sweep an explicit CC list.
    pub fn ccs(mut self, ccs: impl IntoIterator<Item = CcMode>) -> Self {
        self.ccs = CcAxis::List(ccs.into_iter().collect());
        self
    }

    /// Sweep the paper's three workloads (Static at the per-environment
    /// bitrate, SCReAM, GCC).
    pub fn paper_workloads(mut self) -> Self {
        self.ccs = CcAxis::PaperWorkloads;
        self
    }

    /// Sweep multipath schemes (each becomes [`RunScheme::Multipath`]).
    pub fn multipath_schemes(mut self, schemes: impl IntoIterator<Item = MultipathScheme>) -> Self {
        self.schemes = schemes.into_iter().map(RunScheme::Multipath).collect();
        self
    }

    /// Sweep run schemes explicitly (mix pipeline and multipath cells).
    pub fn schemes(mut self, schemes: impl IntoIterator<Item = RunScheme>) -> Self {
        self.schemes = schemes.into_iter().collect();
        self
    }

    /// Sweep named fault campaigns.
    pub fn faults(mut self, faults: impl IntoIterator<Item = CellFault>) -> Self {
        self.faults = faults.into_iter().collect();
        self
    }

    /// Sweep the NACK/RTX repair switch (e.g. `[false, true]` for the
    /// off/on comparison of the repair matrix).
    pub fn repairs(mut self, repairs: impl IntoIterator<Item = bool>) -> Self {
        self.repairs = repairs.into_iter().collect();
        self
    }

    /// Number of seed-decorrelated runs per cell (run indices
    /// `base.run_index .. base.run_index + runs`).
    pub fn runs(mut self, runs: u64) -> Self {
        self.runs = runs;
        self
    }

    /// The CC list a given environment sweeps.
    fn ccs_for(&self, environment: Environment) -> Vec<CcMode> {
        match &self.ccs {
            CcAxis::Base => vec![self.base.cc],
            CcAxis::List(list) => list.clone(),
            CcAxis::PaperWorkloads => vec![
                CcMode::paper_static(environment),
                CcMode::paper_scream(),
                CcMode::Gcc,
            ],
        }
    }

    /// Expand the cross-product into independent cells, in the documented
    /// axis order (run index innermost).
    pub fn expand(&self) -> Vec<Cell> {
        let environments = or_base(&self.environments, self.base.environment);
        let operators = or_base(&self.operators, self.base.operator);
        let mobilities = or_base(&self.mobilities, self.base.mobility);
        let schemes = or_base(&self.schemes, RunScheme::Pipeline);
        let faults = if self.faults.is_empty() {
            vec![CellFault::none()]
        } else {
            self.faults.clone()
        };
        let repairs = or_base(&self.repairs, self.base.repair);
        // The base hold follows the mobility axis unless it was an
        // explicit override (≠ the base mobility's paper default).
        let hold_is_paper = self.base.hold == ExperimentConfig::paper_hold(self.base.mobility);

        let mut cells = Vec::new();
        for &environment in &environments {
            for &operator in &operators {
                for &mobility in &mobilities {
                    for cc in self.ccs_for(environment) {
                        for &scheme in &schemes {
                            for fault in &faults {
                                for &repair in &repairs {
                                    for r in 0..self.runs {
                                        let mut config = self.base;
                                        config.environment = environment;
                                        config.operator = operator;
                                        config.mobility = mobility;
                                        config.cc = cc;
                                        config.repair = repair;
                                        config.run_index = self.base.run_index + r;
                                        if hold_is_paper {
                                            config.hold = ExperimentConfig::paper_hold(mobility);
                                        }
                                        cells.push(Cell {
                                            index: cells.len(),
                                            config,
                                            scheme,
                                            fault: fault.clone(),
                                            key_cache: OnceLock::new(),
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }
}

fn or_base<T: Clone>(axis: &[T], base: T) -> Vec<T> {
    if axis.is_empty() {
        vec![base]
    } else {
        axis.to_vec()
    }
}

/// One fully-expanded experiment: a configuration plus the scheme and
/// fault campaign it runs under.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Position in the expansion (results are collected in this order).
    pub index: usize,
    /// The expanded configuration.
    pub config: ExperimentConfig,
    /// Pipeline or multipath execution.
    pub scheme: RunScheme,
    /// The fault campaign.
    pub fault: CellFault,
    /// Memoised [`Cell::key`]: the canonical encoding is walked at most
    /// once per cell, however many cache layers consult the key.
    key_cache: OnceLock<u64>,
}

impl Cell {
    /// The campaign-level label: [`ExperimentConfig::label`] plus scheme
    /// and fault discriminants — everything but the run index.
    pub fn campaign_label(&self) -> String {
        let mut label = self.config.label();
        if let RunScheme::Multipath(s) = self.scheme {
            label.push('@');
            label.push_str(s.name());
        }
        if !self.fault.is_none() {
            label.push('!');
            label.push_str(if self.fault.name.is_empty() {
                "fault"
            } else {
                &self.fault.name
            });
        }
        label
    }

    /// The full cell label: campaign label plus `#r<run>`. Unique across
    /// any single matrix expansion (asserted by the engine tests).
    pub fn label(&self) -> String {
        format!("{}#r{}", self.campaign_label(), self.config.run_index)
    }

    /// The stable cache key: an FNV-1a hash over a canonical byte
    /// encoding of every field that influences the simulation, salted
    /// with the crate version so a rebuilt crate invalidates all cached
    /// results. Stable across processes (unlike `DefaultHasher`).
    /// Memoised: the encoding pass runs at most once per cell.
    pub fn key(&self) -> u64 {
        *self.key_cache.get_or_init(|| self.compute_key())
    }

    fn compute_key(&self) -> u64 {
        let mut w = ByteWriter::new();
        w.bytes(env!("CARGO_PKG_VERSION").as_bytes());
        w.u32(crate::codec::FORMAT_VERSION);
        let c = &self.config;
        w.u8(match c.environment {
            Environment::Urban => 0,
            Environment::Rural => 1,
        });
        w.u8(match c.operator {
            Operator::P1 => 0,
            Operator::P2 => 1,
        });
        w.u8(match c.mobility {
            Mobility::Air => 0,
            Mobility::Ground => 1,
        });
        match c.cc {
            CcMode::Static { bitrate_bps } => {
                w.u8(0);
                w.f64(bitrate_bps);
            }
            CcMode::Gcc => w.u8(1),
            CcMode::Scream { ack_span } => {
                w.u8(2);
                w.u64(ack_span as u64);
            }
        }
        w.u64(c.seed);
        w.u64(c.run_index);
        w.duration(c.hold);
        w.u64(c.ground_sweeps as u64);
        w.bool(c.drop_on_latency);
        w.opt(c.hysteresis_override_db, |w, v| w.f64(v));
        w.opt(c.ttt_override_ms, |w, v| w.u64(v));
        w.opt(c.jitter_target_override_ms, |w, v| w.u64(v));
        w.bool(c.watchdog.enabled);
        w.duration(c.watchdog.timeout);
        w.duration(c.watchdog.backoff_interval);
        w.f64(c.watchdog.backoff_factor);
        w.f64(c.watchdog.floor_bps);
        w.f64(c.watchdog.ramp_factor);
        w.bool(c.repair);
        w.opt(c.leg_cap_bps, |w, (a, b)| {
            w.f64(a);
            w.f64(b);
        });
        w.f64(c.fec_cap);
        w.u64(c.n_legs as u64);
        w.bool(c.coupled_cc);
        w.u8(self.scheme.tag());
        for script in [
            &self.fault.uplink,
            &self.fault.downlink,
            &self.fault.secondary,
        ] {
            w.opt(script.as_ref(), write_script);
        }
        w.u64(self.fault.extra.len() as u64);
        for script in &self.fault.extra {
            w.opt(script.as_ref(), write_script);
        }
        fnv1a(&w.into_bytes())
    }

    /// Execute the cell directly (no caching) — also the reference the
    /// bench determinism spot-checks compare engine output against.
    pub fn execute(&self) -> RunMetrics {
        match self.scheme {
            RunScheme::Pipeline => {
                let mut sim = Simulation::new(self.config);
                if let Some(s) = &self.fault.uplink {
                    sim = sim.with_uplink_script(s.clone());
                }
                if let Some(s) = &self.fault.downlink {
                    sim = sim.with_downlink_script(s.clone());
                }
                sim.run()
            }
            RunScheme::Multipath(scheme) => {
                run_multipath_legs(&self.config, scheme, self.fault.leg_scripts())
            }
        }
    }
}

fn write_script(w: &mut ByteWriter, script: &FaultScript) {
    w.u64(script.clauses().len() as u64);
    for clause in script.clauses() {
        match clause {
            FaultClause::Blackout { from, until } => {
                w.u8(0);
                w.time(*from);
                w.time(*until);
            }
            FaultClause::KindBlackout { from, until, kind } => {
                w.u8(1);
                w.time(*from);
                w.time(*until);
                w.u8(kind_tag(*kind));
            }
            FaultClause::Loss {
                from,
                until,
                prob,
                kind,
            } => {
                w.u8(2);
                w.time(*from);
                w.time(*until);
                w.f64(*prob);
                w.opt(*kind, |w, k| w.u8(kind_tag(k)));
            }
            FaultClause::DelaySpike { from, until, extra } => {
                w.u8(3);
                w.time(*from);
                w.time(*until);
                w.duration(*extra);
            }
            FaultClause::Duplicate {
                from,
                until,
                prob,
                kind,
            } => {
                w.u8(4);
                w.time(*from);
                w.time(*until);
                w.f64(*prob);
                w.opt(*kind, |w, k| w.u8(kind_tag(k)));
            }
            FaultClause::Corrupt {
                from,
                until,
                prob,
                kind,
            } => {
                w.u8(5);
                w.time(*from);
                w.time(*until);
                w.f64(*prob);
                w.opt(*kind, |w, k| w.u8(kind_tag(k)));
            }
            FaultClause::Reorder {
                from,
                until,
                prob,
                max_displacement,
            } => {
                w.u8(6);
                w.time(*from);
                w.time(*until);
                w.f64(*prob);
                w.u64(*max_displacement);
            }
            FaultClause::CoverageHole {
                x,
                y,
                radius_m,
                min_alt_m,
            } => {
                w.u8(7);
                w.f64(*x);
                w.f64(*y);
                w.f64(*radius_m);
                w.f64(*min_alt_m);
            }
            FaultClause::BurstLoss {
                from,
                until,
                p_enter,
                p_exit,
                loss_bad,
                kind,
            } => {
                w.u8(8);
                w.time(*from);
                w.time(*until);
                w.f64(*p_enter);
                w.f64(*p_exit);
                w.f64(*loss_bad);
                w.opt(*kind, |w, k| w.u8(kind_tag(k)));
            }
        }
    }
}

fn kind_tag(kind: PacketKind) -> u8 {
    match kind {
        PacketKind::Media => 0,
        PacketKind::Feedback => 1,
        PacketKind::Probe => 2,
    }
}

/// 64-bit FNV-1a: tiny, dependency-free, stable across processes and
/// platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One executed cell.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    /// The cell as expanded.
    pub cell: Cell,
    /// Its metrics, shared with the engine's in-memory cache — a cache
    /// hit hands out another reference instead of deep-copying the
    /// per-frame records.
    pub metrics: Arc<RunMetrics>,
    /// Whether the result was served from cache (no simulation ran).
    pub cached: bool,
}

/// Wall-clock and throughput accounting for one engine invocation.
#[derive(Clone, Copy, Debug)]
pub struct EngineReport {
    /// Cells in the matrix.
    pub cells: usize,
    /// Cells actually simulated.
    pub simulated: usize,
    /// Cells served from cache.
    pub cached: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Wall-clock time of the whole matrix.
    pub wall: Duration,
}

impl EngineReport {
    /// Completed cells per wall-clock second.
    pub fn cells_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.cells as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// One-line summary for bench output.
    pub fn summary(&self) -> String {
        format!(
            "{} cells ({} simulated, {} cached) on {} job(s) in {:.2} s — {:.2} cells/s",
            self.cells,
            self.simulated,
            self.cached,
            self.jobs,
            self.wall.as_secs_f64(),
            self.cells_per_sec()
        )
    }
}

/// The results of one matrix execution, in submission order.
#[derive(Debug)]
pub struct MatrixResult {
    /// Per-cell outcomes, `outcomes[i].cell.index == i`.
    pub outcomes: Vec<CellOutcome>,
    /// Wall-clock/throughput accounting.
    pub report: EngineReport,
}

impl MatrixResult {
    /// Just the metrics, in submission order.
    pub fn metrics(&self) -> impl Iterator<Item = &RunMetrics> {
        self.outcomes.iter().map(|o| o.metrics.as_ref())
    }

    /// Group adjacent same-campaign cells (the run index is the
    /// innermost axis, so each campaign's runs are contiguous) into
    /// [`CampaignResult`]s, in matrix order.
    pub fn campaigns(&self) -> Vec<CampaignResult> {
        let mut campaigns: Vec<CampaignResult> = Vec::new();
        for outcome in &self.outcomes {
            let label = outcome.cell.campaign_label();
            match campaigns.last_mut() {
                Some(c) if c.label == label => c.runs.push((*outcome.metrics).clone()),
                _ => campaigns.push(CampaignResult {
                    label,
                    runs: vec![(*outcome.metrics).clone()],
                }),
            }
        }
        campaigns
    }
}

/// Resolve the worker count: `RPAV_JOBS` if set and positive, else the
/// host's available parallelism.
pub fn default_jobs() -> usize {
    if let Some(n) = std::env::var("RPAV_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolve the on-disk cache directory from `RPAV_CACHE` (unset = no
/// disk cache; `1` = `target/rpav-cache`; anything else = that path).
fn default_cache_dir() -> Option<PathBuf> {
    match std::env::var("RPAV_CACHE") {
        Ok(v) if v == "1" => Some(PathBuf::from("target/rpav-cache")),
        Ok(v) if !v.is_empty() => Some(PathBuf::from(v)),
        _ => None,
    }
}

/// The bounded-thread-pool matrix executor. Create one per binary and
/// reuse it across [`run`](Self::run) calls — the in-memory cache
/// persists on the engine, so re-running a matrix after editing one axis
/// only simulates the changed cells.
pub struct CampaignEngine {
    jobs: usize,
    cache_dir: Option<PathBuf>,
    memory: Mutex<HashMap<u64, Arc<RunMetrics>>>,
    simulated: AtomicU64,
    cache_hits: AtomicU64,
}

impl Default for CampaignEngine {
    fn default() -> Self {
        CampaignEngine::new()
    }
}

impl CampaignEngine {
    /// Engine with the environment-resolved job count and cache policy.
    pub fn new() -> Self {
        CampaignEngine {
            jobs: default_jobs(),
            cache_dir: default_cache_dir(),
            memory: Mutex::new(HashMap::new()),
            simulated: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
        }
    }

    /// Override the worker count (`--jobs`).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Override the on-disk cache directory (`None` disables it).
    pub fn with_cache_dir(mut self, dir: Option<PathBuf>) -> Self {
        self.cache_dir = dir;
        self
    }

    /// The worker count in force.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Total simulations executed over the engine's lifetime (cache hits
    /// excluded) — the counter the zero-resimulation test asserts on.
    pub fn simulations(&self) -> u64 {
        self.simulated.load(Ordering::Relaxed)
    }

    /// Total cache hits (memory or disk) over the engine's lifetime.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Execute every cell of `spec` and collect submission-ordered
    /// results.
    pub fn run(&self, spec: &MatrixSpec) -> MatrixResult {
        self.run_cells(spec.expand())
    }

    /// Execute an explicit cell list (`cells[i].index` must equal `i`,
    /// as [`MatrixSpec::expand`] produces).
    pub fn run_cells(&self, cells: Vec<Cell>) -> MatrixResult {
        let started = Instant::now();
        let n = cells.len();
        let workers = self.jobs.min(n.max(1));
        let mut slots: Vec<Option<CellOutcome>> = (0..n).map(|_| None).collect();
        let simulated_before = self.simulations();

        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Arc<RunMetrics>, bool)>();
        std::thread::scope(|s| {
            let cursor = &cursor;
            let cells = &cells;
            for _ in 0..workers {
                let tx = tx.clone();
                s.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let (metrics, cached) = self.run_cell(&cells[i]);
                    if tx.send((i, metrics, cached)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            // Results arrive in completion order; the index slots them
            // back into submission order — the determinism contract.
            while let Ok((i, metrics, cached)) = rx.recv() {
                slots[i] = Some(CellOutcome {
                    cell: cells[i].clone(),
                    metrics,
                    cached,
                });
            }
        });

        let outcomes: Vec<CellOutcome> = slots
            .into_iter()
            .map(|o| o.expect("worker died before completing its cell"))
            .collect();
        let simulated = (self.simulations() - simulated_before) as usize;
        MatrixResult {
            report: EngineReport {
                cells: n,
                simulated,
                cached: n - simulated,
                jobs: workers,
                wall: started.elapsed(),
            },
            outcomes,
        }
    }

    /// One cell through the cache layers: memory → disk → simulate.
    /// Metrics are stored and returned behind an [`Arc`], so cache hits
    /// and the outcome slots share one allocation per distinct cell.
    fn run_cell(&self, cell: &Cell) -> (Arc<RunMetrics>, bool) {
        let key = cell.key();
        if let Some(m) = self.memory.lock().unwrap().get(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(m), true);
        }
        if let Some(dir) = &self.cache_dir {
            if let Ok(bytes) = std::fs::read(dir.join(format!("{key:016x}.rpav"))) {
                if let Some(m) = RunMetrics::from_bytes(&bytes) {
                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                    let m = Arc::new(m);
                    self.memory.lock().unwrap().insert(key, Arc::clone(&m));
                    return (m, true);
                }
            }
        }
        let metrics = Arc::new(cell.execute());
        self.simulated.fetch_add(1, Ordering::Relaxed);
        if let Some(dir) = &self.cache_dir {
            // Best-effort: a read-only target dir must not fail the run.
            let _ = std::fs::create_dir_all(dir);
            let _ = std::fs::write(dir.join(format!("{key:016x}.rpav")), metrics.to_bytes());
        }
        self.memory
            .lock()
            .unwrap()
            .insert(key, Arc::clone(&metrics));
        (metrics, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpav_sim::{SimDuration, SimTime};
    use std::collections::HashSet;

    fn short_base() -> ExperimentConfig {
        ExperimentConfig::builder().seed(11).hold_secs(1).build()
    }

    #[test]
    fn empty_axes_expand_to_the_base_cell() {
        let cells = MatrixSpec::new(short_base()).expand();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].index, 0);
        assert_eq!(cells[0].scheme, RunScheme::Pipeline);
        assert!(cells[0].fault.is_none());
        assert_eq!(cells[0].label(), "GCC-Rural-P1-Air#r0");
    }

    #[test]
    fn expansion_order_is_run_innermost() {
        let cells = MatrixSpec::new(short_base())
            .ccs([CcMode::Gcc, CcMode::paper_scream()])
            .runs(2)
            .expand();
        assert_eq!(cells.len(), 4);
        let labels: Vec<String> = cells.iter().map(Cell::label).collect();
        assert_eq!(
            labels,
            [
                "GCC-Rural-P1-Air#r0",
                "GCC-Rural-P1-Air#r1",
                "SCReAM-Rural-P1-Air#r0",
                "SCReAM-Rural-P1-Air#r1",
            ]
        );
        assert!(cells.iter().enumerate().all(|(i, c)| c.index == i));
    }

    #[test]
    fn paper_workloads_follow_the_environment() {
        let cells = MatrixSpec::new(short_base())
            .environments([Environment::Urban, Environment::Rural])
            .paper_workloads()
            .expand();
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0].config.cc, CcMode::Static { bitrate_bps: 25e6 });
        assert_eq!(cells[3].config.cc, CcMode::Static { bitrate_bps: 8e6 });
    }

    #[test]
    fn hold_follows_the_mobility_axis_unless_overridden() {
        let paper_base = ExperimentConfig::builder().build();
        let cells = MatrixSpec::new(paper_base)
            .mobilities([Mobility::Air, Mobility::Ground])
            .expand();
        assert_eq!(cells[0].config.hold, SimDuration::from_secs(5));
        assert_eq!(cells[1].config.hold, SimDuration::from_secs(45));
        // An explicit hold override is preserved across the axis.
        let cells = MatrixSpec::new(short_base())
            .mobilities([Mobility::Air, Mobility::Ground])
            .expand();
        assert_eq!(cells[0].config.hold, SimDuration::from_secs(1));
        assert_eq!(cells[1].config.hold, SimDuration::from_secs(1));
    }

    #[test]
    fn labels_and_keys_are_unique_over_a_full_expansion() {
        // Every axis at once — the densest matrix any bench assembles:
        // labels (the old silent-collision bug) and cache keys must both
        // discriminate every cell.
        let blackout =
            FaultScript::new().blackout(SimTime::from_secs(10), SimDuration::from_secs(2));
        let cells = MatrixSpec::new(short_base())
            .environments([Environment::Urban, Environment::Rural])
            .operators([Operator::P1, Operator::P2])
            .mobilities([Mobility::Air, Mobility::Ground])
            .paper_workloads()
            .schemes([
                RunScheme::Pipeline,
                RunScheme::Multipath(MultipathScheme::Failover),
            ])
            .faults([
                CellFault::none(),
                CellFault::link("blackout", blackout.clone()),
                CellFault::uplink("ul-blackout", blackout),
            ])
            .repairs([false, true])
            .runs(2)
            .expand();
        assert_eq!(cells.len(), 2 * 2 * 2 * 3 * 2 * 3 * 2 * 2);
        let labels: HashSet<String> = cells.iter().map(Cell::label).collect();
        assert_eq!(labels.len(), cells.len(), "label collision");
        let keys: HashSet<u64> = cells.iter().map(Cell::key).collect();
        assert_eq!(keys.len(), cells.len(), "cache-key collision");
    }

    #[test]
    fn cache_key_is_insensitive_to_cell_index_but_not_to_config() {
        let cells = MatrixSpec::new(short_base()).runs(2).expand();
        let mut moved = cells[0].clone();
        moved.index = 99;
        assert_eq!(moved.key(), cells[0].key());
        assert_ne!(cells[0].key(), cells[1].key());
    }

    #[test]
    fn engine_is_deterministic_across_job_counts_and_caches() {
        // A 4-cell matrix (kept small: these are full simulations) run
        // with jobs=1 and jobs=8 must produce byte-identical metrics,
        // and a warm re-run must simulate nothing.
        let spec = MatrixSpec::new(short_base())
            .ccs([CcMode::Gcc, CcMode::paper_scream()])
            .runs(2);
        let sequential = CampaignEngine::new().with_cache_dir(None).with_jobs(1);
        let parallel = CampaignEngine::new().with_cache_dir(None).with_jobs(8);
        let a = sequential.run(&spec);
        let b = parallel.run(&spec);
        assert_eq!(a.outcomes.len(), 4);
        for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
            assert_eq!(x.cell.label(), y.cell.label());
            assert_eq!(
                x.metrics.to_bytes(),
                y.metrics.to_bytes(),
                "jobs=1 vs jobs=8 diverged at {}",
                x.cell.label()
            );
        }
        assert_eq!(parallel.simulations(), 4);
        let warm = parallel.run(&spec);
        assert_eq!(parallel.simulations(), 4, "warm re-run re-simulated");
        assert_eq!(warm.report.cached, 4);
        assert_eq!(warm.report.simulated, 0);
        for (x, y) in a.outcomes.iter().zip(warm.outcomes.iter()) {
            assert_eq!(x.metrics.to_bytes(), y.metrics.to_bytes());
        }
    }

    #[test]
    fn campaigns_group_adjacent_runs() {
        let spec = MatrixSpec::new(short_base())
            .ccs([CcMode::Gcc, CcMode::paper_scream()])
            .runs(2);
        let result = CampaignEngine::new()
            .with_cache_dir(None)
            .with_jobs(2)
            .run(&spec);
        let campaigns = result.campaigns();
        assert_eq!(campaigns.len(), 2);
        assert_eq!(campaigns[0].label, "GCC-Rural-P1-Air");
        assert_eq!(campaigns[1].label, "SCReAM-Rural-P1-Air");
        assert_eq!(campaigns[0].runs.len(), 2);
        assert_eq!(campaigns[1].runs.len(), 2);
    }
}
