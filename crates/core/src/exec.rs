//! The parallel deterministic campaign engine.
//!
//! The paper aggregates ≈130 runs over ≈90 flights (urban/rural × two
//! operators × three CCs × air/ground); reproducing that cross-product
//! used to mean five hand-rolled nested loops, all strictly sequential.
//! Every seeded run is independent, so this module factors the loops into
//! one engine:
//!
//! * [`MatrixSpec`] — a declarative cross-product of scenario axes
//!   (environment × operator × mobility × CC × scheme × fault script ×
//!   repair × run index) that [expands](MatrixSpec::expand) into
//!   independent [`Cell`]s in a fixed, documented order.
//! * [`CampaignEngine`] — a bounded `std::thread` pool (no external deps)
//!   pulling cells off an atomic work queue and posting results back over
//!   an `mpsc` channel into **submission-ordered** slots.
//! * Per-cell result caching keyed by a [stable hash](Cell::key) of the
//!   fully-expanded configuration: in-memory always, plus an opt-in
//!   on-disk layer under `target/rpav-cache` (salted by the crate
//!   version, so a rebuilt crate never replays stale metrics).
//!
//! # Determinism contract
//!
//! A cell's result is a pure function of its expanded configuration:
//! every simulation draws from `RngSet::new(config.seed)` streams keyed
//! by purpose and run index, never from wall-clock, thread identity, or
//! global state. Workers race only for *which* cell to run next; the
//! result lands in `results[cell.index]` regardless of completion order.
//! Therefore `jobs = N` is bit-identical to `jobs = 1` — asserted over
//! the canonical [`RunMetrics::to_bytes`] encoding by the engine tests —
//! and cached results are byte-equal to fresh ones.
//!
//! # Crash safety
//!
//! Cells execute inside `catch_unwind` with bounded retry; a cell that
//! keeps panicking becomes a typed [`CellOutcome::Failed`] poison record
//! and the rest of the matrix completes. With the disk cache enabled,
//! results are written atomically (tmp + fsync + rename) inside a CRC32
//! envelope, completions are recorded in a per-campaign fsync'd journal,
//! and a `kill -9` mid-campaign costs only the unfinished cells:
//! re-running the identical spec resumes bit-identically. See
//! [`CampaignEngine`] for the full contract.
//!
//! # Environment knobs
//!
//! * `RPAV_JOBS` — worker count override (default: available
//!   parallelism; a set-but-invalid value warns and uses the default).
//! * `RPAV_CACHE` — set to enable the durable on-disk cache (`1` → the
//!   default `target/rpav-cache`, any other value → that directory).
//!   The directory holds sealed `<key>.rpav` records, a
//!   `journal-<spec>.rpavj` completion journal per campaign (the resume
//!   manifest), and a `quarantine/` subdirectory of corrupt files that
//!   were demoted to misses.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use rpav_lte::{Environment, Operator};
use rpav_netem::{FaultClause, FaultScript, PacketKind};

use crate::codec::{fnv1a, ByteWriter};
use crate::journal::CampaignJournal;
use crate::metrics::RunMetrics;
use crate::multipath::{run_multipath_legs, MultipathScheme};
use crate::pipeline::Simulation;
use crate::runner::CampaignResult;
use crate::scenario::{CcMode, ExperimentConfig, Mobility};
use crate::summary::CampaignAggregates;

/// How a cell's media flow is mapped onto the radio link(s).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunScheme {
    /// The single-operator sender/receiver pipeline ([`Simulation`]).
    Pipeline,
    /// The two-modem multipath experiment under the given scheme.
    Multipath(MultipathScheme),
}

impl RunScheme {
    /// Display name ("pipeline", or the multipath scheme's name).
    pub fn name(&self) -> &'static str {
        match self {
            RunScheme::Pipeline => "pipeline",
            RunScheme::Multipath(s) => s.name(),
        }
    }

    fn tag(&self) -> u8 {
        match self {
            RunScheme::Pipeline => 0,
            RunScheme::Multipath(MultipathScheme::SinglePath) => 1,
            RunScheme::Multipath(MultipathScheme::Duplicate) => 2,
            RunScheme::Multipath(MultipathScheme::Failover) => 3,
            RunScheme::Multipath(MultipathScheme::SelectiveDuplicate) => 4,
            RunScheme::Multipath(MultipathScheme::Bonded) => 5,
        }
    }
}

/// A named fault campaign applied to one cell.
///
/// For [`RunScheme::Pipeline`], `uplink`/`downlink` script the two
/// directions of the single operator's link. For
/// [`RunScheme::Multipath`], `uplink` scripts leg 0, `secondary` leg 1,
/// and `extra` any further legs (each script hits both directions of
/// its leg, matching [`run_multipath_legs`]); `downlink` is unused.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CellFault {
    /// Short name, part of the cell label (empty = no fault).
    pub name: String,
    /// Pipeline uplink / multipath primary-leg script.
    pub uplink: Option<FaultScript>,
    /// Pipeline downlink script.
    pub downlink: Option<FaultScript>,
    /// Multipath standby-leg script.
    pub secondary: Option<FaultScript>,
    /// Multipath scripts for legs 2+ (entry `i` hits leg `i + 2`); rigs
    /// beyond two modems only. Scripts past `ExperimentConfig::n_legs`
    /// are ignored by the driver.
    pub extra: Vec<Option<FaultScript>>,
}

impl CellFault {
    /// The unimpaired cell.
    pub fn none() -> Self {
        CellFault::default()
    }

    /// One script on both directions of the (single) link — the
    /// `with_link_script` idiom of the chaos campaigns.
    pub fn link(name: impl Into<String>, script: FaultScript) -> Self {
        CellFault {
            name: name.into(),
            uplink: Some(script.clone()),
            downlink: Some(script),
            secondary: None,
            extra: Vec::new(),
        }
    }

    /// Script on the uplink (media direction) only.
    pub fn uplink(name: impl Into<String>, script: FaultScript) -> Self {
        CellFault {
            name: name.into(),
            uplink: Some(script),
            downlink: None,
            secondary: None,
            extra: Vec::new(),
        }
    }

    /// Script on the downlink (feedback direction) only.
    pub fn downlink(name: impl Into<String>, script: FaultScript) -> Self {
        CellFault {
            name: name.into(),
            uplink: None,
            downlink: Some(script),
            secondary: None,
            extra: Vec::new(),
        }
    }

    /// Multipath faults: `primary` hits the primary leg, `secondary` the
    /// standby leg.
    pub fn legs(
        name: impl Into<String>,
        primary: Option<FaultScript>,
        secondary: Option<FaultScript>,
    ) -> Self {
        CellFault {
            name: name.into(),
            uplink: primary,
            downlink: None,
            secondary,
            extra: Vec::new(),
        }
    }

    /// Multipath faults for an N-leg rig: entry `i` of `scripts` hits
    /// leg `i` (missing / `None` entries leave that leg unscripted).
    /// Correlated cross-leg failures are several entries with
    /// overlapping windows.
    pub fn per_leg(name: impl Into<String>, mut scripts: Vec<Option<FaultScript>>) -> Self {
        let uplink = if scripts.is_empty() {
            None
        } else {
            scripts.remove(0)
        };
        let secondary = if scripts.is_empty() {
            None
        } else {
            scripts.remove(0)
        };
        CellFault {
            name: name.into(),
            uplink,
            downlink: None,
            secondary,
            extra: scripts,
        }
    }

    /// The per-leg script vector the multipath driver consumes: leg 0 =
    /// `uplink`, leg 1 = `secondary`, legs 2+ = `extra`.
    pub fn leg_scripts(&self) -> Vec<Option<FaultScript>> {
        let mut v = Vec::with_capacity(2 + self.extra.len());
        v.push(self.uplink.clone());
        v.push(self.secondary.clone());
        v.extend(self.extra.iter().cloned());
        v
    }

    /// Whether the fault is a no-op.
    pub fn is_none(&self) -> bool {
        self.uplink.is_none()
            && self.downlink.is_none()
            && self.secondary.is_none()
            && self.extra.iter().all(Option::is_none)
    }
}

/// The congestion-control axis of a matrix.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum CcAxis {
    /// Keep the base configuration's CC (a single-cc matrix).
    #[default]
    Base,
    /// Sweep an explicit list.
    List(Vec<CcMode>),
    /// Sweep the paper's three §3.2 workloads, with the Static bitrate
    /// following each cell's *environment* (25 Mbps urban / 8 Mbps
    /// rural) — what every figure binary wants.
    PaperWorkloads,
}

/// A declarative cross-product of scenario axes.
///
/// Empty axes fall back to the base configuration's value, so
/// `MatrixSpec::new(base).runs(5)` is exactly the old
/// `run_campaign(base, 5)` shape. Expansion order is part of the API:
/// environment → operator → mobility → CC → scheme → fault → repair →
/// run index, with the run index innermost (seed-matched cells stay
/// adjacent).
#[derive(Clone, Debug)]
pub struct MatrixSpec {
    base: ExperimentConfig,
    environments: Vec<Environment>,
    operators: Vec<Operator>,
    mobilities: Vec<Mobility>,
    ccs: CcAxis,
    schemes: Vec<RunScheme>,
    faults: Vec<CellFault>,
    repairs: Vec<bool>,
    runs: u64,
}

impl MatrixSpec {
    /// A single-cell matrix of `base`; add axes with the builder methods.
    pub fn new(base: ExperimentConfig) -> Self {
        MatrixSpec {
            base,
            environments: Vec::new(),
            operators: Vec::new(),
            mobilities: Vec::new(),
            ccs: CcAxis::Base,
            schemes: Vec::new(),
            faults: Vec::new(),
            repairs: Vec::new(),
            runs: 1,
        }
    }

    /// Sweep flight environments.
    pub fn environments(mut self, envs: impl IntoIterator<Item = Environment>) -> Self {
        self.environments = envs.into_iter().collect();
        self
    }

    /// Sweep cellular operators.
    pub fn operators(mut self, ops: impl IntoIterator<Item = Operator>) -> Self {
        self.operators = ops.into_iter().collect();
        self
    }

    /// Sweep mobilities. Unless the base overrides `hold` away from its
    /// own mobility's paper default, each cell's hold follows *its*
    /// mobility's paper default (5 s air hover, 45 s ground sweep).
    pub fn mobilities(mut self, mobilities: impl IntoIterator<Item = Mobility>) -> Self {
        self.mobilities = mobilities.into_iter().collect();
        self
    }

    /// Sweep an explicit CC list.
    pub fn ccs(mut self, ccs: impl IntoIterator<Item = CcMode>) -> Self {
        self.ccs = CcAxis::List(ccs.into_iter().collect());
        self
    }

    /// Sweep the paper's three workloads (Static at the per-environment
    /// bitrate, SCReAM, GCC).
    pub fn paper_workloads(mut self) -> Self {
        self.ccs = CcAxis::PaperWorkloads;
        self
    }

    /// Sweep multipath schemes (each becomes [`RunScheme::Multipath`]).
    pub fn multipath_schemes(mut self, schemes: impl IntoIterator<Item = MultipathScheme>) -> Self {
        self.schemes = schemes.into_iter().map(RunScheme::Multipath).collect();
        self
    }

    /// Sweep run schemes explicitly (mix pipeline and multipath cells).
    pub fn schemes(mut self, schemes: impl IntoIterator<Item = RunScheme>) -> Self {
        self.schemes = schemes.into_iter().collect();
        self
    }

    /// Sweep named fault campaigns.
    pub fn faults(mut self, faults: impl IntoIterator<Item = CellFault>) -> Self {
        self.faults = faults.into_iter().collect();
        self
    }

    /// Sweep the NACK/RTX repair switch (e.g. `[false, true]` for the
    /// off/on comparison of the repair matrix).
    pub fn repairs(mut self, repairs: impl IntoIterator<Item = bool>) -> Self {
        self.repairs = repairs.into_iter().collect();
        self
    }

    /// Number of seed-decorrelated runs per cell (run indices
    /// `base.run_index .. base.run_index + runs`).
    pub fn runs(mut self, runs: u64) -> Self {
        self.runs = runs;
        self
    }

    /// The CC list a given environment sweeps.
    fn ccs_for(&self, environment: Environment) -> Vec<CcMode> {
        match &self.ccs {
            CcAxis::Base => vec![self.base.cc],
            CcAxis::List(list) => list.clone(),
            CcAxis::PaperWorkloads => vec![
                CcMode::paper_static(environment),
                CcMode::paper_scream(),
                CcMode::Gcc,
            ],
        }
    }

    /// The number of cells [`expand`](Self::expand) would produce, without
    /// allocating them: the checked product of every axis length. `None`
    /// means the cross-product overflows `u64` — callers gating on a cap
    /// must treat that as "too many".
    pub fn cell_count(&self) -> Option<u64> {
        let axis = |len: usize| if len == 0 { 1u64 } else { len as u64 };
        let ccs = match &self.ccs {
            CcAxis::Base => 1u64,
            // `ccs_for` returns the list verbatim, so an empty list really
            // does expand to zero cells.
            CcAxis::List(list) => list.len() as u64,
            CcAxis::PaperWorkloads => 3u64,
        };
        axis(self.environments.len())
            .checked_mul(axis(self.operators.len()))?
            .checked_mul(axis(self.mobilities.len()))?
            .checked_mul(ccs)?
            .checked_mul(axis(self.schemes.len()))?
            .checked_mul(axis(self.faults.len()))?
            .checked_mul(axis(self.repairs.len()))?
            .checked_mul(self.runs)
    }

    /// Expand the cross-product into independent cells, in the documented
    /// axis order (run index innermost).
    pub fn expand(&self) -> Vec<Cell> {
        let environments = or_base(&self.environments, self.base.environment);
        let operators = or_base(&self.operators, self.base.operator);
        let mobilities = or_base(&self.mobilities, self.base.mobility);
        let schemes = or_base(&self.schemes, RunScheme::Pipeline);
        let faults = if self.faults.is_empty() {
            vec![CellFault::none()]
        } else {
            self.faults.clone()
        };
        let repairs = or_base(&self.repairs, self.base.repair);
        // The base hold follows the mobility axis unless it was an
        // explicit override (≠ the base mobility's paper default).
        let hold_is_paper = self.base.hold == ExperimentConfig::paper_hold(self.base.mobility);

        let mut cells = Vec::new();
        for &environment in &environments {
            for &operator in &operators {
                for &mobility in &mobilities {
                    for cc in self.ccs_for(environment) {
                        for &scheme in &schemes {
                            for fault in &faults {
                                for &repair in &repairs {
                                    for r in 0..self.runs {
                                        let mut config = self.base;
                                        config.environment = environment;
                                        config.operator = operator;
                                        config.mobility = mobility;
                                        config.cc = cc;
                                        config.repair = repair;
                                        config.run_index = self.base.run_index + r;
                                        if hold_is_paper {
                                            config.hold = ExperimentConfig::paper_hold(mobility);
                                        }
                                        cells.push(Cell {
                                            index: cells.len(),
                                            config,
                                            scheme,
                                            fault: fault.clone(),
                                            key_cache: OnceLock::new(),
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }
}

fn or_base<T: Clone>(axis: &[T], base: T) -> Vec<T> {
    if axis.is_empty() {
        vec![base]
    } else {
        axis.to_vec()
    }
}

/// One fully-expanded experiment: a configuration plus the scheme and
/// fault campaign it runs under.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Position in the expansion (results are collected in this order).
    pub index: usize,
    /// The expanded configuration.
    pub config: ExperimentConfig,
    /// Pipeline or multipath execution.
    pub scheme: RunScheme,
    /// The fault campaign.
    pub fault: CellFault,
    /// Memoised [`Cell::key`]: the canonical encoding is walked at most
    /// once per cell, however many cache layers consult the key.
    key_cache: OnceLock<u64>,
}

impl Cell {
    /// The campaign-level label: [`ExperimentConfig::label`] plus scheme
    /// and fault discriminants — everything but the run index.
    pub fn campaign_label(&self) -> String {
        let mut label = self.config.label();
        if let RunScheme::Multipath(s) = self.scheme {
            label.push('@');
            label.push_str(s.name());
        }
        if !self.fault.is_none() {
            label.push('!');
            label.push_str(if self.fault.name.is_empty() {
                "fault"
            } else {
                &self.fault.name
            });
        }
        label
    }

    /// The full cell label: campaign label plus `#r<run>`. Unique across
    /// any single matrix expansion (asserted by the engine tests).
    pub fn label(&self) -> String {
        format!("{}#r{}", self.campaign_label(), self.config.run_index)
    }

    /// The stable cache key: an FNV-1a hash over a canonical byte
    /// encoding of every field that influences the simulation, salted
    /// with the crate version so a rebuilt crate invalidates all cached
    /// results. Stable across processes (unlike `DefaultHasher`).
    /// Memoised: the encoding pass runs at most once per cell.
    pub fn key(&self) -> u64 {
        *self.key_cache.get_or_init(|| self.compute_key())
    }

    fn compute_key(&self) -> u64 {
        let mut w = ByteWriter::new();
        w.bytes(env!("CARGO_PKG_VERSION").as_bytes());
        w.u32(crate::codec::FORMAT_VERSION);
        let c = &self.config;
        w.u8(match c.environment {
            Environment::Urban => 0,
            Environment::Rural => 1,
        });
        w.u8(match c.operator {
            Operator::P1 => 0,
            Operator::P2 => 1,
        });
        w.u8(match c.mobility {
            Mobility::Air => 0,
            Mobility::Ground => 1,
        });
        match c.cc {
            CcMode::Static { bitrate_bps } => {
                w.u8(0);
                w.f64(bitrate_bps);
            }
            CcMode::Gcc => w.u8(1),
            CcMode::Scream { ack_span } => {
                w.u8(2);
                w.u64(ack_span as u64);
            }
        }
        w.u64(c.seed);
        w.u64(c.run_index);
        w.duration(c.hold);
        w.u64(c.ground_sweeps as u64);
        w.bool(c.drop_on_latency);
        w.opt(c.hysteresis_override_db, |w, v| w.f64(v));
        w.opt(c.ttt_override_ms, |w, v| w.u64(v));
        w.opt(c.jitter_target_override_ms, |w, v| w.u64(v));
        w.bool(c.watchdog.enabled);
        w.duration(c.watchdog.timeout);
        w.duration(c.watchdog.backoff_interval);
        w.f64(c.watchdog.backoff_factor);
        w.f64(c.watchdog.floor_bps);
        w.f64(c.watchdog.ramp_factor);
        w.bool(c.repair);
        w.opt(c.leg_cap_bps, |w, (a, b)| {
            w.f64(a);
            w.f64(b);
        });
        w.f64(c.fec_cap);
        w.u64(c.n_legs as u64);
        w.bool(c.coupled_cc);
        w.u8(self.scheme.tag());
        for script in [
            &self.fault.uplink,
            &self.fault.downlink,
            &self.fault.secondary,
        ] {
            w.opt(script.as_ref(), write_script);
        }
        w.u64(self.fault.extra.len() as u64);
        for script in &self.fault.extra {
            w.opt(script.as_ref(), write_script);
        }
        fnv1a(&w.into_bytes())
    }

    /// Execute the cell directly (no caching) — also the reference the
    /// bench determinism spot-checks compare engine output against.
    /// Scheduler choice follows `RPAV_REFERENCE_TICK`; the engine resolves
    /// that knob once via [`EngineOptions`] and calls
    /// [`execute_with`](Self::execute_with) instead.
    pub fn execute(&self) -> RunMetrics {
        self.execute_with(EngineOptions::env_reference_tick())
    }

    /// Execute with an explicit scheduler choice: `reference_tick = true`
    /// runs the unconditional 1 ms oracle loop, `false` the adaptive
    /// deadline scheduler (byte-identical by the perf-equivalence tests).
    pub fn execute_with(&self, reference_tick: bool) -> RunMetrics {
        match self.scheme {
            RunScheme::Pipeline => {
                let mut sim = Simulation::new(self.config);
                if let Some(s) = &self.fault.uplink {
                    sim = sim.with_uplink_script(s.clone());
                }
                if let Some(s) = &self.fault.downlink {
                    sim = sim.with_downlink_script(s.clone());
                }
                if reference_tick {
                    sim.run_reference()
                } else {
                    sim.run_fast()
                }
            }
            RunScheme::Multipath(scheme) => {
                run_multipath_legs(&self.config, scheme, self.fault.leg_scripts())
            }
        }
    }
}

fn write_script(w: &mut ByteWriter, script: &FaultScript) {
    w.u64(script.clauses().len() as u64);
    for clause in script.clauses() {
        match clause {
            FaultClause::Blackout { from, until } => {
                w.u8(0);
                w.time(*from);
                w.time(*until);
            }
            FaultClause::KindBlackout { from, until, kind } => {
                w.u8(1);
                w.time(*from);
                w.time(*until);
                w.u8(kind_tag(*kind));
            }
            FaultClause::Loss {
                from,
                until,
                prob,
                kind,
            } => {
                w.u8(2);
                w.time(*from);
                w.time(*until);
                w.f64(*prob);
                w.opt(*kind, |w, k| w.u8(kind_tag(k)));
            }
            FaultClause::DelaySpike { from, until, extra } => {
                w.u8(3);
                w.time(*from);
                w.time(*until);
                w.duration(*extra);
            }
            FaultClause::Duplicate {
                from,
                until,
                prob,
                kind,
            } => {
                w.u8(4);
                w.time(*from);
                w.time(*until);
                w.f64(*prob);
                w.opt(*kind, |w, k| w.u8(kind_tag(k)));
            }
            FaultClause::Corrupt {
                from,
                until,
                prob,
                kind,
            } => {
                w.u8(5);
                w.time(*from);
                w.time(*until);
                w.f64(*prob);
                w.opt(*kind, |w, k| w.u8(kind_tag(k)));
            }
            FaultClause::Reorder {
                from,
                until,
                prob,
                max_displacement,
            } => {
                w.u8(6);
                w.time(*from);
                w.time(*until);
                w.f64(*prob);
                w.u64(*max_displacement);
            }
            FaultClause::CoverageHole {
                x,
                y,
                radius_m,
                min_alt_m,
            } => {
                w.u8(7);
                w.f64(*x);
                w.f64(*y);
                w.f64(*radius_m);
                w.f64(*min_alt_m);
            }
            FaultClause::BurstLoss {
                from,
                until,
                p_enter,
                p_exit,
                loss_bad,
                kind,
            } => {
                w.u8(8);
                w.time(*from);
                w.time(*until);
                w.f64(*p_enter);
                w.f64(*p_exit);
                w.f64(*loss_bad);
                w.opt(*kind, |w, k| w.u8(kind_tag(k)));
            }
        }
    }
}

fn kind_tag(kind: PacketKind) -> u8 {
    match kind {
        PacketKind::Media => 0,
        PacketKind::Feedback => 1,
        PacketKind::Probe => 2,
    }
}

/// One executed cell: either its metrics, or a poison record describing
/// why it kept panicking. A poisoned cell never aborts the matrix — the
/// failure is typed data the caller inspects.
#[derive(Clone, Debug)]
pub enum CellOutcome {
    /// The cell completed (simulated or cache-served).
    Done {
        /// The cell as expanded.
        cell: Cell,
        /// Its metrics, shared with the engine's in-memory cache — a
        /// cache hit hands out another reference instead of deep-copying
        /// the per-frame records.
        metrics: Arc<RunMetrics>,
        /// Whether the result was served from cache (no simulation ran).
        cached: bool,
        /// Execution attempts consumed (0 for a cache hit, ≥ 2 when a
        /// retry recovered a transient panic).
        attempts: u32,
    },
    /// Every attempt panicked; the cell is poisoned.
    Failed {
        /// The cell as expanded.
        cell: Cell,
        /// The final attempt's panic payload, rendered.
        panic_msg: String,
        /// Attempts consumed (== the engine's `max_attempts`).
        attempts: u32,
    },
}

impl CellOutcome {
    /// The cell this outcome belongs to.
    pub fn cell(&self) -> &Cell {
        match self {
            CellOutcome::Done { cell, .. } | CellOutcome::Failed { cell, .. } => cell,
        }
    }

    /// The metrics of a completed cell.
    ///
    /// # Panics
    /// On a poisoned cell, with its recorded panic message — callers that
    /// tolerate failures use [`try_metrics`](Self::try_metrics).
    pub fn metrics(&self) -> &Arc<RunMetrics> {
        match self {
            CellOutcome::Done { metrics, .. } => metrics,
            CellOutcome::Failed {
                cell, panic_msg, ..
            } => panic!("cell {} was poisoned: {panic_msg}", cell.label()),
        }
    }

    /// The metrics, or `None` for a poisoned cell.
    pub fn try_metrics(&self) -> Option<&Arc<RunMetrics>> {
        match self {
            CellOutcome::Done { metrics, .. } => Some(metrics),
            CellOutcome::Failed { .. } => None,
        }
    }

    /// Whether the result was served from cache (`false` for failures).
    pub fn cached(&self) -> bool {
        matches!(self, CellOutcome::Done { cached: true, .. })
    }

    /// Execution attempts consumed.
    pub fn attempts(&self) -> u32 {
        match self {
            CellOutcome::Done { attempts, .. } | CellOutcome::Failed { attempts, .. } => *attempts,
        }
    }

    /// Whether the cell was poisoned.
    pub fn is_failed(&self) -> bool {
        matches!(self, CellOutcome::Failed { .. })
    }

    /// The poison message, if poisoned.
    pub fn panic_msg(&self) -> Option<&str> {
        match self {
            CellOutcome::Failed { panic_msg, .. } => Some(panic_msg),
            CellOutcome::Done { .. } => None,
        }
    }
}

/// A poisoned cell, as surfaced by the streaming API (which retains no
/// [`Cell`] or metrics — just enough to report the failure).
#[derive(Clone, Debug)]
pub struct CellFailure {
    /// The failed cell's label.
    pub label: String,
    /// The final attempt's panic payload, rendered.
    pub panic_msg: String,
    /// Attempts consumed.
    pub attempts: u32,
}

/// Wall-clock, throughput, and resilience accounting for one engine
/// invocation, plus the streaming [`CampaignAggregates`] every completed
/// cell was folded into (in submission order, so the aggregate bytes are
/// deterministic across job counts and kill/resume boundaries).
#[derive(Clone, Debug)]
pub struct EngineReport {
    /// Cells in the matrix.
    pub cells: usize,
    /// Cells actually simulated.
    pub simulated: usize,
    /// Cells served from cache (memory or disk).
    pub cached: usize,
    /// Cells poisoned after exhausting their retry budget.
    pub failed: usize,
    /// Cells a previous (possibly killed) process had already completed
    /// durably, per the campaign journal replayed at start.
    pub resumed: usize,
    /// Corrupt/stale cache files quarantined during this invocation.
    pub quarantined: usize,
    /// Cells flagged by the stuck-cell watchdog (still counted once even
    /// if they eventually completed).
    pub stuck_flagged: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Wall-clock time of the whole matrix.
    pub wall: Duration,
    /// Streaming aggregates over every completed cell.
    pub aggregates: CampaignAggregates,
}

impl EngineReport {
    /// Completed cells per wall-clock second.
    pub fn cells_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.cells as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// One-line summary for bench output.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} cells ({} simulated, {} cached) on {} job(s) in {:.2} s — {:.2} cells/s",
            self.cells,
            self.simulated,
            self.cached,
            self.jobs,
            self.wall.as_secs_f64(),
            self.cells_per_sec()
        );
        if self.failed > 0 {
            s.push_str(&format!(" [{} poisoned]", self.failed));
        }
        if self.resumed > 0 {
            s.push_str(&format!(" [resumed {}]", self.resumed));
        }
        if self.quarantined > 0 {
            s.push_str(&format!(" [{} quarantined]", self.quarantined));
        }
        if self.stuck_flagged > 0 {
            s.push_str(&format!(" [{} flagged stuck]", self.stuck_flagged));
        }
        s
    }
}

/// The results of one matrix execution, in submission order.
#[derive(Debug)]
pub struct MatrixResult {
    /// Per-cell outcomes, `outcomes[i].cell().index == i`.
    pub outcomes: Vec<CellOutcome>,
    /// Wall-clock/throughput accounting.
    pub report: EngineReport,
}

/// What a streaming execution retains: the report (with its flat-memory
/// aggregates) and the poison records — never the per-cell metrics.
#[derive(Debug)]
pub struct StreamSummary {
    /// Wall-clock/throughput accounting plus streaming aggregates.
    pub report: EngineReport,
    /// Poisoned cells, in submission order.
    pub failures: Vec<CellFailure>,
}

impl MatrixResult {
    /// Just the metrics, in submission order.
    ///
    /// # Panics
    /// If any cell was poisoned (legacy contract: every caller written
    /// before poison records existed assumes complete results). Check
    /// [`report.failed`](EngineReport::failed) or use
    /// [`failures`](Self::failures) first when failures are expected.
    pub fn metrics(&self) -> impl Iterator<Item = &RunMetrics> {
        self.outcomes.iter().map(|o| o.metrics().as_ref())
    }

    /// The poisoned outcomes, in submission order (empty on a clean run).
    pub fn failures(&self) -> impl Iterator<Item = &CellOutcome> {
        self.outcomes.iter().filter(|o| o.is_failed())
    }

    /// Group adjacent same-campaign cells (the run index is the
    /// innermost axis, so each campaign's runs are contiguous) into
    /// [`CampaignResult`]s, in matrix order. Poisoned cells are skipped —
    /// a campaign whose every run failed is absent.
    pub fn campaigns(&self) -> Vec<CampaignResult> {
        let mut campaigns: Vec<CampaignResult> = Vec::new();
        for outcome in &self.outcomes {
            let Some(metrics) = outcome.try_metrics() else {
                continue;
            };
            let label = outcome.cell().campaign_label();
            match campaigns.last_mut() {
                Some(c) if c.label == label => c.runs.push((**metrics).clone()),
                _ => campaigns.push(CampaignResult {
                    label,
                    runs: vec![(**metrics).clone()],
                }),
            }
        }
        campaigns
    }
}

/// Every engine behaviour knob, as one typed value.
///
/// This is the single place environment variables are parsed: call
/// [`EngineOptions::from_env`] once at a binary's edge and construct
/// everything else explicitly. The daemon builds one per campaign from the
/// spec document; bench bins build one in `main`. Invalid env values warn
/// on stderr and fall back to the default — they never silently change a
/// campaign's shape.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineOptions {
    /// Worker threads (`None` = the host's available parallelism).
    pub jobs: Option<usize>,
    /// Cells claimed per worker dispatch (`None` = auto-size from the
    /// matrix: big enough to amortise claim overhead and keep the
    /// per-worker scratch warm, small enough that the tail stays
    /// balanced). Purely a throughput knob — the submission-order result
    /// frontier makes aggregates byte-identical for every batch size.
    pub batch: Option<usize>,
    /// Durable on-disk cache directory (`None` disables the disk layer,
    /// the journal, and resume).
    pub cache_dir: Option<PathBuf>,
    /// Execution attempts per cell before it is poisoned (≥ 1).
    pub max_attempts: u32,
    /// Wall-clock budget after which the watchdog flags a cell as stuck.
    pub stuck_budget: Duration,
    /// Run cells under the unconditional 1 ms reference scheduler instead
    /// of the adaptive deadline scheduler (the perf-equivalence oracle;
    /// byte-identical output, much slower).
    pub reference_tick: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            jobs: None,
            batch: None,
            cache_dir: None,
            max_attempts: 2,
            stuck_budget: Duration::from_secs(120),
            reference_tick: false,
        }
    }
}

impl EngineOptions {
    /// Parse the engine's environment knobs, once:
    ///
    /// * `RPAV_JOBS` — worker count (positive integer; a set-but-invalid
    ///   value warns and auto-detects).
    /// * `RPAV_CACHE` — durable cache (`1` → `target/rpav-cache`, any
    ///   other non-empty value → that directory).
    /// * `RPAV_BATCH` — cells claimed per worker dispatch (positive
    ///   integer; invalid values warn and auto-size).
    /// * `RPAV_REFERENCE_TICK` — any value but `0` selects the 1 ms
    ///   reference scheduler.
    pub fn from_env() -> Self {
        let jobs = match std::env::var("RPAV_JOBS") {
            Ok(v) => match v.parse::<usize>() {
                Ok(n) if n > 0 => Some(n),
                _ => {
                    eprintln!("rpav: ignoring invalid RPAV_JOBS={v:?} — using detected core count");
                    None
                }
            },
            Err(_) => None,
        };
        let batch = match std::env::var("RPAV_BATCH") {
            Ok(v) => match v.parse::<usize>() {
                Ok(n) if n > 0 => Some(n),
                _ => {
                    eprintln!("rpav: ignoring invalid RPAV_BATCH={v:?} — auto-sizing batches");
                    None
                }
            },
            Err(_) => None,
        };
        let cache_dir = match std::env::var("RPAV_CACHE") {
            Ok(v) if v == "1" => Some(PathBuf::from("target/rpav-cache")),
            Ok(v) if !v.is_empty() => Some(PathBuf::from(v)),
            _ => None,
        };
        EngineOptions {
            jobs,
            batch,
            cache_dir,
            reference_tick: Self::env_reference_tick(),
            ..EngineOptions::default()
        }
    }

    /// Just the `RPAV_REFERENCE_TICK` knob (no warnings, no other vars) —
    /// the edge parse for direct [`Cell::execute`] /
    /// [`Simulation::run`] callers.
    pub fn env_reference_tick() -> bool {
        std::env::var_os("RPAV_REFERENCE_TICK").is_some_and(|v| v != "0")
    }

    /// The worker count these options resolve to.
    pub fn resolved_jobs(&self) -> usize {
        self.jobs.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
    }

    /// Build a [`CampaignEngine`] executing under these options.
    pub fn engine(&self) -> CampaignEngine {
        CampaignEngine::with_options(self.clone())
    }
}

/// Resolve the worker count: `RPAV_JOBS` if set and a positive integer,
/// else the host's available parallelism. A set-but-invalid value warns
/// on stderr and falls back to the detected core count — it must never
/// silently serialize a campaign.
pub fn default_jobs() -> usize {
    EngineOptions::from_env().resolved_jobs()
}

/// Test-only fault injection: called before each execution attempt with
/// the cell and the 1-based attempt number; returning `true` panics in
/// place of the simulation. Lets the resilience harness exercise the
/// poison/retry machinery without planting bugs in the pipeline.
#[doc(hidden)]
pub type FaultHook = Arc<dyn Fn(&Cell, u32) -> bool + Send + Sync>;

/// Per-worker scratch that survives across the cells of a batch (and
/// across batches — each worker thread owns one for its whole lifetime).
/// Holds the buffers a cell completion needs that would otherwise be
/// allocated per cell: today the durable-cache encode buffer; the
/// thread-local arena pool rides along for free because the worker thread
/// itself persists. Reset after a panicked attempt so a poisoned cell
/// can never leak partial state into the next one.
#[derive(Default)]
pub struct CellScratch {
    /// Recycled encode buffer for [`RunMetrics`] cache serialisation.
    encode: Vec<u8>,
}

impl CellScratch {
    /// Fresh scratch (workers build one each at spawn).
    pub fn new() -> Self {
        CellScratch::default()
    }

    /// Drop any partially written state after a panicked attempt. Keeps
    /// capacity: the point of the scratch is that steady-state batches
    /// never touch the allocator.
    fn reset(&mut self) {
        self.encode.clear();
    }
}

/// Render a panic payload (the `&str`/`String` carried by virtually every
/// `panic!`) for the poison record.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

/// What a worker posts back per cell.
enum WorkerResult {
    Done {
        metrics: Arc<RunMetrics>,
        cached: bool,
        /// Whether the result is known to be durably on disk (a sealed
        /// cache file survived or was just written+renamed) — only such
        /// completions are journaled.
        durable: bool,
        attempts: u32,
    },
    Failed {
        panic_msg: String,
        attempts: u32,
    },
}

/// Sharded on-disk location of one cache entry:
/// `<dir>/<xx>/<key:016x>.rpav`, where `xx` is the key's top byte in hex —
/// a 256-way fan-out so million-entry campaigns never pile every record
/// into one directory. Flat pre-sharding entries at
/// `<dir>/<key:016x>.rpav` are still found and migrated on first read.
pub fn cache_entry_path(dir: &std::path::Path, key: u64) -> PathBuf {
    dir.join(format!("{:02x}", (key >> 56) as u8))
        .join(format!("{key:016x}.rpav"))
}

/// Stable campaign identity: FNV-1a over the cell count and every cell's
/// [key](Cell::key), in submission order. Two processes expanding the
/// same `MatrixSpec` agree on it; any axis edit changes it.
fn spec_hash(cells: &[Cell]) -> u64 {
    let mut w = ByteWriter::new();
    w.u64(cells.len() as u64);
    for cell in cells {
        w.u64(cell.key());
    }
    fnv1a(&w.into_bytes())
}

/// The bounded-thread-pool matrix executor. Create one per binary and
/// reuse it across [`run`](Self::run) calls — the in-memory cache
/// persists on the engine, so re-running a matrix after editing one axis
/// only simulates the changed cells.
///
/// # Crash safety
///
/// Each cell executes inside `catch_unwind`: a panic is retried up to
/// [`with_max_attempts`](Self::with_max_attempts) times (cells are pure,
/// so a deterministic panic fails identically and a transient one — e.g.
/// injected — recovers), then recorded as a typed
/// [`CellOutcome::Failed`] poison record; the rest of the matrix always
/// completes. A wall-clock watchdog flags cells running past
/// [`with_stuck_budget`](Self::with_stuck_budget) on stderr and in
/// [`EngineReport::stuck_flagged`] without killing them.
///
/// With a cache directory, results are durable: sealed (CRC32-framed)
/// records written to a tmp file, fsync'd, and renamed into place, plus a
/// per-campaign fsync'd completion journal. Re-running an identical
/// `MatrixSpec` after `kill -9` resumes from the completed cells and is
/// bit-identical to an uninterrupted run. Corrupt, truncated, or
/// stale-version cache files are quarantined to `<cache>/quarantine/`
/// and treated as misses — never served, never fatal.
pub struct CampaignEngine {
    jobs: usize,
    batch: Option<usize>,
    cache_dir: Option<PathBuf>,
    max_attempts: u32,
    stuck_budget: Duration,
    reference_tick: bool,
    memory: Mutex<HashMap<u64, Arc<RunMetrics>>>,
    simulated: AtomicU64,
    cache_hits: AtomicU64,
    retries: AtomicU64,
    quarantined: AtomicU64,
    stuck_flags: AtomicU64,
    fault_hook: Option<FaultHook>,
}

impl Default for CampaignEngine {
    fn default() -> Self {
        CampaignEngine::new()
    }
}

impl CampaignEngine {
    /// Engine with the environment-resolved job count and cache policy
    /// (one [`EngineOptions::from_env`] parse).
    pub fn new() -> Self {
        EngineOptions::from_env().engine()
    }

    /// Engine executing under explicit, already-parsed [`EngineOptions`] —
    /// the construction path of the daemon and of every binary that takes
    /// its knobs from a spec document instead of the environment.
    pub fn with_options(options: EngineOptions) -> Self {
        CampaignEngine {
            jobs: options.resolved_jobs(),
            batch: options.batch,
            cache_dir: options.cache_dir,
            max_attempts: options.max_attempts.max(1),
            stuck_budget: options.stuck_budget,
            reference_tick: options.reference_tick,
            memory: Mutex::new(HashMap::new()),
            simulated: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            stuck_flags: AtomicU64::new(0),
            fault_hook: None,
        }
    }

    /// Override the worker count (`--jobs`).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Override the per-dispatch cell batch size (`None` auto-sizes).
    /// Aggregates are byte-identical for every value — batching only
    /// changes how work is claimed, never the fold order.
    pub fn with_batch(mut self, batch: Option<usize>) -> Self {
        self.batch = batch.map(|b| b.max(1));
        self
    }

    /// Override the on-disk cache directory (`None` disables it).
    pub fn with_cache_dir(mut self, dir: Option<PathBuf>) -> Self {
        self.cache_dir = dir;
        self
    }

    /// Execution attempts per cell before it is poisoned (≥ 1,
    /// default 2: one retry).
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Wall-clock budget after which a still-running cell is flagged by
    /// the watchdog (default 120 s). Flagging never kills the cell.
    pub fn with_stuck_budget(mut self, budget: Duration) -> Self {
        self.stuck_budget = budget;
        self
    }

    /// Install the test-only fault hook (see [`FaultHook`]).
    #[doc(hidden)]
    pub fn with_fault_hook(mut self, hook: FaultHook) -> Self {
        self.fault_hook = Some(hook);
        self
    }

    /// The worker count in force.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Total simulations executed over the engine's lifetime (cache hits
    /// excluded) — the counter the zero-resimulation test asserts on.
    pub fn simulations(&self) -> u64 {
        self.simulated.load(Ordering::Relaxed)
    }

    /// Total cache hits (memory or disk) over the engine's lifetime.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Total panic retries over the engine's lifetime.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Total cache files quarantined over the engine's lifetime.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Entries currently held by the in-memory result cache — the
    /// flat-memory assertions of the streaming mode read this.
    pub fn memory_entries(&self) -> usize {
        self.memory.lock().unwrap().len()
    }

    /// Execute every cell of `spec` and collect submission-ordered
    /// results.
    pub fn run(&self, spec: &MatrixSpec) -> MatrixResult {
        self.run_cells(spec.expand())
    }

    /// Execute an explicit cell list (`cells[i].index` must equal `i`,
    /// as [`MatrixSpec::expand`] produces).
    pub fn run_cells(&self, cells: Vec<Cell>) -> MatrixResult {
        let mut outcomes = Vec::with_capacity(cells.len());
        let report = self.drive(&cells, true, &mut |o| outcomes.push(o));
        MatrixResult { outcomes, report }
    }

    /// Execute every cell of `spec` without retaining any per-cell
    /// metrics: outcomes are folded into the report's streaming
    /// [`CampaignAggregates`] and dropped, and the in-memory cache is not
    /// populated — peak memory is flat in the cell count (the engine's
    /// 1M-cell mode).
    pub fn run_streaming(&self, spec: &MatrixSpec) -> StreamSummary {
        self.run_cells_streaming(spec.expand())
    }

    /// Streaming execution of an explicit cell list (see
    /// [`run_streaming`](Self::run_streaming)).
    pub fn run_cells_streaming(&self, cells: Vec<Cell>) -> StreamSummary {
        self.run_cells_streaming_observed(cells, &mut |_| {})
    }

    /// Streaming execution of `spec` with a per-cell observer (see
    /// [`run_cells_streaming_observed`](Self::run_cells_streaming_observed)).
    pub fn run_streaming_observed(
        &self,
        spec: &MatrixSpec,
        observe: &mut dyn FnMut(&CellOutcome),
    ) -> StreamSummary {
        self.run_cells_streaming_observed(spec.expand(), observe)
    }

    /// Streaming execution that additionally hands every outcome — in
    /// **submission order**, straight off the reorder frontier — to
    /// `observe` before dropping it. This is the daemon's event feed:
    /// the observer sees exactly the sequence the aggregates folded, so a
    /// subscriber can mirror the fold bit-for-bit. Memory stays flat; the
    /// observer must not retain the outcomes' metrics if it wants to keep
    /// it that way.
    pub fn run_cells_streaming_observed(
        &self,
        cells: Vec<Cell>,
        observe: &mut dyn FnMut(&CellOutcome),
    ) -> StreamSummary {
        let mut failures = Vec::new();
        let report = self.drive(&cells, false, &mut |o| {
            observe(&o);
            if let CellOutcome::Failed {
                cell,
                panic_msg,
                attempts,
            } = o
            {
                failures.push(CellFailure {
                    label: cell.label(),
                    panic_msg,
                    attempts,
                });
            }
        });
        StreamSummary { report, failures }
    }

    /// The engine core: run `cells` on the pool, deliver outcomes to
    /// `sink` in **submission order** (a frontier reorders the
    /// completion-ordered channel), fold aggregates, journal durable
    /// completions, and watch for stuck cells.
    fn drive(
        &self,
        cells: &[Cell],
        store_memory: bool,
        sink: &mut dyn FnMut(CellOutcome),
    ) -> EngineReport {
        let started = Instant::now();
        let n = cells.len();
        let workers = self.jobs.min(n.max(1));
        let simulated_before = self.simulations();
        let quarantined_before = self.quarantined.load(Ordering::Relaxed);
        let stuck_before = self.stuck_flags.load(Ordering::Relaxed);

        let mut journal = self.cache_dir.as_ref().and_then(|dir| {
            match CampaignJournal::open(dir, spec_hash(cells), n) {
                Ok(j) => Some(j),
                Err(e) => {
                    // Resume is an optimisation: a read-only cache dir
                    // degrades to journal-less execution, never failure.
                    eprintln!("rpav: campaign journal unavailable ({e}); running without resume");
                    None
                }
            }
        });
        let resumed = journal.as_ref().map_or(0, |j| j.completed_count());

        let mut aggregates = CampaignAggregates::default();
        let mut failed = 0usize;

        // Cells are claimed in contiguous batches: one cursor bump hands a
        // worker `batch` consecutive cells, which it runs back-to-back on
        // one reusable `CellScratch` (and one warm thread-local arena
        // pool). Auto-sizing keeps at least ~4 dispatches per worker so
        // the tail stays balanced; results still arrive tagged with their
        // submission index, and the frontier below re-sequences them, so
        // aggregates are byte-identical for every batch size and job
        // count.
        let batch = self
            .batch
            .unwrap_or_else(|| (n / (workers * 4)).clamp(1, 8))
            .max(1);
        let cursor = AtomicUsize::new(0);
        let inflight: Mutex<HashMap<usize, Instant>> = Mutex::new(HashMap::new());
        let done = AtomicBool::new(false);
        let (tx, rx) = mpsc::channel::<(usize, WorkerResult)>();
        std::thread::scope(|s| {
            let cursor = &cursor;
            let inflight = &inflight;
            let done = &done;
            for _ in 0..workers {
                let tx = tx.clone();
                s.spawn(move || {
                    let mut scratch = CellScratch::new();
                    'claim: loop {
                        let start = cursor.fetch_add(batch, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + batch).min(n);
                        for (i, cell) in cells.iter().enumerate().take(end).skip(start) {
                            inflight.lock().unwrap().insert(i, Instant::now());
                            let result = self.run_cell_isolated(cell, store_memory, &mut scratch);
                            inflight.lock().unwrap().remove(&i);
                            if tx.send((i, result)).is_err() {
                                break 'claim;
                            }
                        }
                    }
                });
            }
            // Stuck-cell watchdog: scans the in-flight table at a poll
            // interval derived from the budget, flags each offender once,
            // and shuts down in ≤ 10 ms once the matrix completes.
            let budget = self.stuck_budget;
            s.spawn(move || {
                let poll =
                    (budget / 8).clamp(Duration::from_millis(10), Duration::from_millis(500));
                let mut flagged: HashSet<usize> = HashSet::new();
                loop {
                    let mut slept = Duration::ZERO;
                    while slept < poll && !done.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(10));
                        slept += Duration::from_millis(10);
                    }
                    if done.load(Ordering::Relaxed) {
                        break;
                    }
                    for (&i, start) in inflight.lock().unwrap().iter() {
                        if start.elapsed() > budget && flagged.insert(i) {
                            self.stuck_flags.fetch_add(1, Ordering::Relaxed);
                            eprintln!(
                                "rpav: cell {i} ({}) exceeded its {budget:?} wall-clock budget — still running",
                                cells[i].label()
                            );
                        }
                    }
                }
            });
            drop(tx);
            // Completion-ordered arrivals re-sequenced into submission
            // order before folding/journaling/sinking: the pending map
            // holds at most ~`workers` out-of-order results, and the
            // in-order fold makes the aggregates' f64 sums (hence their
            // canonical bytes) independent of job count and of where a
            // previous run was killed.
            let mut pending: BTreeMap<usize, WorkerResult> = BTreeMap::new();
            let mut next = 0usize;
            while let Ok((i, result)) = rx.recv() {
                pending.insert(i, result);
                while let Some(result) = pending.remove(&next) {
                    match result {
                        WorkerResult::Done {
                            metrics,
                            cached,
                            durable,
                            attempts,
                        } => {
                            if durable {
                                if let Some(j) = journal.as_mut() {
                                    // Journal I/O failure only costs
                                    // resume coverage for this cell.
                                    let _ = j.record(next);
                                }
                            }
                            aggregates.fold(&metrics);
                            sink(CellOutcome::Done {
                                cell: cells[next].clone(),
                                metrics,
                                cached,
                                attempts,
                            });
                        }
                        WorkerResult::Failed {
                            panic_msg,
                            attempts,
                        } => {
                            failed += 1;
                            aggregates.fold_failure();
                            sink(CellOutcome::Failed {
                                cell: cells[next].clone(),
                                panic_msg,
                                attempts,
                            });
                        }
                    }
                    next += 1;
                }
            }
            done.store(true, Ordering::Relaxed);
        });

        let simulated = (self.simulations() - simulated_before) as usize;
        EngineReport {
            cells: n,
            simulated,
            cached: n - simulated - failed,
            failed,
            resumed,
            quarantined: (self.quarantined.load(Ordering::Relaxed) - quarantined_before) as usize,
            stuck_flagged: (self.stuck_flags.load(Ordering::Relaxed) - stuck_before) as usize,
            jobs: workers,
            wall: started.elapsed(),
            aggregates,
        }
    }

    /// One cell through the cache layers (memory → durable disk) and, on
    /// miss, `catch_unwind`-isolated execution with bounded retry.
    fn run_cell_isolated(
        &self,
        cell: &Cell,
        store_memory: bool,
        scratch: &mut CellScratch,
    ) -> WorkerResult {
        let key = cell.key();
        if let Some(m) = self.memory.lock().unwrap().get(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return WorkerResult::Done {
                metrics: Arc::clone(m),
                cached: true,
                // The first store already journaled it; don't claim
                // durability we didn't verify here.
                durable: false,
                attempts: 0,
            };
        }
        if let Some(dir) = &self.cache_dir {
            if let Some(m) = self.load_disk(dir, key) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                let m = Arc::new(m);
                if store_memory {
                    self.memory.lock().unwrap().insert(key, Arc::clone(&m));
                }
                return WorkerResult::Done {
                    metrics: m,
                    cached: true,
                    durable: true,
                    attempts: 0,
                };
            }
        }
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if let Some(hook) = &self.fault_hook {
                    if hook(cell, attempts) {
                        panic!("injected fault (attempt {attempts})");
                    }
                }
                cell.execute_with(self.reference_tick)
            }));
            match outcome {
                Ok(metrics) => {
                    self.simulated.fetch_add(1, Ordering::Relaxed);
                    let metrics = Arc::new(metrics);
                    let durable = match &self.cache_dir {
                        Some(dir) => self.store_disk(dir, key, &metrics, scratch),
                        None => false,
                    };
                    if store_memory {
                        self.memory
                            .lock()
                            .unwrap()
                            .insert(key, Arc::clone(&metrics));
                    }
                    return WorkerResult::Done {
                        metrics,
                        cached: false,
                        durable,
                        attempts,
                    };
                }
                Err(payload) => {
                    scratch.reset();
                    let panic_msg = panic_message(payload);
                    if attempts < self.max_attempts {
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        eprintln!(
                            "rpav: cell {} panicked on attempt {attempts}/{}: {panic_msg} — retrying",
                            cell.label(),
                            self.max_attempts
                        );
                        continue;
                    }
                    eprintln!(
                        "rpav: cell {} poisoned after {attempts} attempt(s): {panic_msg}",
                        cell.label()
                    );
                    return WorkerResult::Failed {
                        panic_msg,
                        attempts,
                    };
                }
            }
        }
    }

    /// Read one sealed cache record, consulting the sharded layout first
    /// and falling back to (and transparently migrating) a flat legacy
    /// entry. A file that exists but fails the envelope or the structural
    /// decode is *quarantined*: moved to `<dir>/quarantine/` (deleted if
    /// the move fails) and reported as a miss, so one corrupt file costs
    /// one re-simulation, never the run.
    fn load_disk(&self, dir: &std::path::Path, key: u64) -> Option<RunMetrics> {
        let sharded = cache_entry_path(dir, key);
        let legacy = dir.join(format!("{key:016x}.rpav"));
        let (bytes, path) = match std::fs::read(&sharded) {
            Ok(b) => (b, sharded),
            Err(_) => {
                let b = std::fs::read(&legacy).ok()?;
                // Pre-sharding entry: migrate it into its prefix shard.
                // Migration failing (read-only dir) still serves the bytes.
                let migrated = sharded
                    .parent()
                    .is_some_and(|p| std::fs::create_dir_all(p).is_ok())
                    && std::fs::rename(&legacy, &sharded).is_ok();
                (b, if migrated { sharded } else { legacy })
            }
        };
        match RunMetrics::from_cache_bytes(&bytes) {
            Some(m) => Some(m),
            None => {
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                let qdir = dir.join("quarantine");
                let moved = std::fs::create_dir_all(&qdir).is_ok()
                    && std::fs::rename(&path, qdir.join(format!("{key:016x}.rpav"))).is_ok();
                if !moved {
                    let _ = std::fs::remove_file(&path);
                }
                eprintln!(
                    "rpav: quarantined corrupt cache file {} ({})",
                    path.display(),
                    if moved { "moved" } else { "deleted" }
                );
                None
            }
        }
    }

    /// Durably store one sealed cache record into its prefix shard: tmp
    /// file (pid-suffixed, so concurrent processes never clobber each
    /// other mid-write), write, fsync, rename. Returns whether the record
    /// is durably in place — a kill at any point leaves either the old
    /// state or the complete new file, never a half-written `.rpav`.
    fn store_disk(
        &self,
        dir: &std::path::Path,
        key: u64,
        metrics: &RunMetrics,
        scratch: &mut CellScratch,
    ) -> bool {
        let path = cache_entry_path(dir, key);
        let Some(shard) = path.parent().map(std::path::Path::to_path_buf) else {
            return false;
        };
        if std::fs::create_dir_all(&shard).is_err() {
            return false;
        }
        let tmp = shard.join(format!("{key:016x}.{}.tmp", std::process::id()));
        // Encode into the worker's recycled buffer and stream the sealed
        // envelope straight to the file — no per-cell payload allocation.
        let mut w = ByteWriter::with_buf(std::mem::take(&mut scratch.encode));
        metrics.write_into(&mut w);
        let payload = w.into_bytes();
        let written = (|| -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            crate::codec::seal_to(&payload, &mut f)?;
            f.sync_all()?;
            std::fs::rename(&tmp, &path)
        })();
        scratch.encode = payload;
        if written.is_err() {
            // Best-effort: a read-only target dir must not fail the run.
            let _ = std::fs::remove_file(&tmp);
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpav_sim::{SimDuration, SimTime};
    use std::collections::HashSet;

    fn short_base() -> ExperimentConfig {
        ExperimentConfig::builder().seed(11).hold_secs(1).build()
    }

    #[test]
    fn empty_axes_expand_to_the_base_cell() {
        let cells = MatrixSpec::new(short_base()).expand();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].index, 0);
        assert_eq!(cells[0].scheme, RunScheme::Pipeline);
        assert!(cells[0].fault.is_none());
        assert_eq!(cells[0].label(), "GCC-Rural-P1-Air#r0");
    }

    #[test]
    fn expansion_order_is_run_innermost() {
        let cells = MatrixSpec::new(short_base())
            .ccs([CcMode::Gcc, CcMode::paper_scream()])
            .runs(2)
            .expand();
        assert_eq!(cells.len(), 4);
        let labels: Vec<String> = cells.iter().map(Cell::label).collect();
        assert_eq!(
            labels,
            [
                "GCC-Rural-P1-Air#r0",
                "GCC-Rural-P1-Air#r1",
                "SCReAM-Rural-P1-Air#r0",
                "SCReAM-Rural-P1-Air#r1",
            ]
        );
        assert!(cells.iter().enumerate().all(|(i, c)| c.index == i));
    }

    #[test]
    fn paper_workloads_follow_the_environment() {
        let cells = MatrixSpec::new(short_base())
            .environments([Environment::Urban, Environment::Rural])
            .paper_workloads()
            .expand();
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0].config.cc, CcMode::Static { bitrate_bps: 25e6 });
        assert_eq!(cells[3].config.cc, CcMode::Static { bitrate_bps: 8e6 });
    }

    #[test]
    fn hold_follows_the_mobility_axis_unless_overridden() {
        let paper_base = ExperimentConfig::builder().build();
        let cells = MatrixSpec::new(paper_base)
            .mobilities([Mobility::Air, Mobility::Ground])
            .expand();
        assert_eq!(cells[0].config.hold, SimDuration::from_secs(5));
        assert_eq!(cells[1].config.hold, SimDuration::from_secs(45));
        // An explicit hold override is preserved across the axis.
        let cells = MatrixSpec::new(short_base())
            .mobilities([Mobility::Air, Mobility::Ground])
            .expand();
        assert_eq!(cells[0].config.hold, SimDuration::from_secs(1));
        assert_eq!(cells[1].config.hold, SimDuration::from_secs(1));
    }

    #[test]
    fn labels_and_keys_are_unique_over_a_full_expansion() {
        // Every axis at once — the densest matrix any bench assembles:
        // labels (the old silent-collision bug) and cache keys must both
        // discriminate every cell.
        let blackout =
            FaultScript::new().blackout(SimTime::from_secs(10), SimDuration::from_secs(2));
        let cells = MatrixSpec::new(short_base())
            .environments([Environment::Urban, Environment::Rural])
            .operators([Operator::P1, Operator::P2])
            .mobilities([Mobility::Air, Mobility::Ground])
            .paper_workloads()
            .schemes([
                RunScheme::Pipeline,
                RunScheme::Multipath(MultipathScheme::Failover),
            ])
            .faults([
                CellFault::none(),
                CellFault::link("blackout", blackout.clone()),
                CellFault::uplink("ul-blackout", blackout),
            ])
            .repairs([false, true])
            .runs(2)
            .expand();
        assert_eq!(cells.len(), 2 * 2 * 2 * 3 * 2 * 3 * 2 * 2);
        let labels: HashSet<String> = cells.iter().map(Cell::label).collect();
        assert_eq!(labels.len(), cells.len(), "label collision");
        let keys: HashSet<u64> = cells.iter().map(Cell::key).collect();
        assert_eq!(keys.len(), cells.len(), "cache-key collision");
    }

    #[test]
    fn cache_key_is_insensitive_to_cell_index_but_not_to_config() {
        let cells = MatrixSpec::new(short_base()).runs(2).expand();
        let mut moved = cells[0].clone();
        moved.index = 99;
        assert_eq!(moved.key(), cells[0].key());
        assert_ne!(cells[0].key(), cells[1].key());
    }

    #[test]
    fn engine_is_deterministic_across_job_counts_and_caches() {
        // A 4-cell matrix (kept small: these are full simulations) run
        // with jobs=1 and jobs=8 must produce byte-identical metrics,
        // and a warm re-run must simulate nothing.
        let spec = MatrixSpec::new(short_base())
            .ccs([CcMode::Gcc, CcMode::paper_scream()])
            .runs(2);
        let sequential = CampaignEngine::new()
            .with_cache_dir(None)
            .with_jobs(1)
            .with_batch(Some(4));
        let parallel = CampaignEngine::new()
            .with_cache_dir(None)
            .with_jobs(8)
            .with_batch(Some(1));
        let a = sequential.run(&spec);
        let b = parallel.run(&spec);
        assert_eq!(a.outcomes.len(), 4);
        for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
            assert_eq!(x.cell().label(), y.cell().label());
            assert_eq!(
                x.metrics().to_bytes(),
                y.metrics().to_bytes(),
                "jobs=1 vs jobs=8 diverged at {}",
                x.cell().label()
            );
        }
        // The streaming aggregates fold in submission order, so they are
        // bit-identical across job counts too.
        assert_eq!(
            a.report.aggregates.to_bytes(),
            b.report.aggregates.to_bytes(),
            "aggregates diverged across job counts"
        );
        assert_eq!(parallel.simulations(), 4);
        let warm = parallel.run(&spec);
        assert_eq!(parallel.simulations(), 4, "warm re-run re-simulated");
        assert_eq!(warm.report.cached, 4);
        assert_eq!(warm.report.simulated, 0);
        for (x, y) in a.outcomes.iter().zip(warm.outcomes.iter()) {
            assert_eq!(x.metrics().to_bytes(), y.metrics().to_bytes());
        }
        assert_eq!(
            a.report.aggregates.to_bytes(),
            warm.report.aggregates.to_bytes()
        );
    }

    #[test]
    fn campaigns_group_adjacent_runs() {
        let spec = MatrixSpec::new(short_base())
            .ccs([CcMode::Gcc, CcMode::paper_scream()])
            .runs(2);
        let result = CampaignEngine::new()
            .with_cache_dir(None)
            .with_jobs(2)
            .run(&spec);
        let campaigns = result.campaigns();
        assert_eq!(campaigns.len(), 2);
        assert_eq!(campaigns[0].label, "GCC-Rural-P1-Air");
        assert_eq!(campaigns[1].label, "SCReAM-Rural-P1-Air");
        assert_eq!(campaigns[0].runs.len(), 2);
        assert_eq!(campaigns[1].runs.len(), 2);
    }

    #[test]
    fn injected_panic_poisons_one_cell_not_the_run() {
        let spec = MatrixSpec::new(short_base()).runs(3);
        let engine = CampaignEngine::new()
            .with_cache_dir(None)
            .with_jobs(4)
            .with_max_attempts(2)
            .with_fault_hook(Arc::new(|cell: &Cell, _attempt| {
                cell.config.run_index == 1 // this cell always panics
            }));
        let result = engine.run(&spec);
        assert_eq!(result.outcomes.len(), 3);
        assert_eq!(result.report.failed, 1);
        assert_eq!(result.report.simulated, 2);
        let failures: Vec<&CellOutcome> = result.failures().collect();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].cell().config.run_index, 1);
        assert_eq!(failures[0].attempts(), 2, "retry budget consumed");
        assert!(failures[0].panic_msg().unwrap().contains("injected fault"));
        assert!(failures[0].try_metrics().is_none());
        // The healthy cells completed normally.
        assert!(result.outcomes[0].try_metrics().is_some());
        assert!(result.outcomes[2].try_metrics().is_some());
        // And campaign grouping simply skips the poisoned run.
        let campaigns = result.campaigns();
        assert_eq!(campaigns[0].runs.len(), 2);
    }

    #[test]
    fn retry_recovers_a_transient_panic_bit_identically() {
        let spec = MatrixSpec::new(short_base());
        let engine = CampaignEngine::new()
            .with_cache_dir(None)
            .with_jobs(1)
            .with_max_attempts(3)
            .with_fault_hook(Arc::new(|_cell, attempt| attempt == 1));
        let result = engine.run(&spec);
        assert_eq!(result.report.failed, 0);
        assert_eq!(engine.retries(), 1);
        let outcome = &result.outcomes[0];
        assert_eq!(outcome.attempts(), 2);
        // The retried execution is the same pure function of the config.
        assert_eq!(
            outcome.metrics().to_bytes(),
            outcome.cell().execute().to_bytes()
        );
    }

    #[test]
    fn metrics_iterator_panics_on_poisoned_cells() {
        let engine = CampaignEngine::new()
            .with_cache_dir(None)
            .with_max_attempts(1)
            .with_fault_hook(Arc::new(|_, _| true));
        let result = engine.run(&MatrixSpec::new(short_base()));
        assert_eq!(result.report.failed, 1);
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| result.metrics().count()));
        assert!(caught.is_err(), "metrics() must refuse poisoned results");
    }

    #[test]
    fn streaming_keeps_memory_flat_and_aggregates_identical() {
        let spec = MatrixSpec::new(short_base())
            .ccs([CcMode::Gcc, CcMode::paper_scream()])
            .runs(2);
        let collect = CampaignEngine::new().with_cache_dir(None).with_jobs(4);
        let full = collect.run(&spec);
        assert_eq!(collect.memory_entries(), 4, "collect mode caches in memory");

        let streaming = CampaignEngine::new().with_cache_dir(None).with_jobs(4);
        let summary = streaming.run_streaming(&spec);
        assert_eq!(
            streaming.memory_entries(),
            0,
            "streaming mode must not grow the in-memory cache"
        );
        assert!(summary.failures.is_empty());
        assert_eq!(summary.report.cells, 4);
        assert_eq!(
            summary.report.aggregates.to_bytes(),
            full.report.aggregates.to_bytes(),
            "streaming vs collect aggregates diverged"
        );
        // The sketch footprint is what it is regardless of cell count.
        assert_eq!(
            summary.report.aggregates.retained_bytes(),
            full.report.aggregates.retained_bytes()
        );
    }

    #[test]
    fn stuck_watchdog_flags_but_never_kills() {
        let spec = MatrixSpec::new(short_base()).runs(2);
        let engine = CampaignEngine::new()
            .with_cache_dir(None)
            .with_jobs(1)
            .with_stuck_budget(Duration::from_millis(1));
        let result = engine.run(&spec);
        // Every cell takes ≫ 1 ms, so the watchdog must have fired, and
        // every cell must still have completed.
        assert_eq!(result.report.failed, 0);
        assert_eq!(result.outcomes.len(), 2);
        assert!(
            result.report.stuck_flagged >= 1,
            "a 1 ms budget must flag at least one cell"
        );
    }

    #[test]
    fn default_jobs_warns_and_recovers_from_invalid_env() {
        // Env mutation: run the cases in one test to avoid races with a
        // parallel test harness touching the same variable.
        let detected = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        std::env::set_var("RPAV_JOBS", "not-a-number");
        assert_eq!(default_jobs(), detected, "invalid value must fall back");
        std::env::set_var("RPAV_JOBS", "0");
        assert_eq!(default_jobs(), detected, "zero must fall back");
        std::env::set_var("RPAV_JOBS", "3");
        assert_eq!(default_jobs(), 3);
        std::env::remove_var("RPAV_JOBS");
        assert_eq!(default_jobs(), detected);
    }

    /// Sealed records under the sharded cache layout (`<dir>/<xx>/*.rpav`).
    fn sharded_rpav_files(dir: &std::path::Path) -> Vec<PathBuf> {
        let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.path().is_dir() && e.file_name() != "quarantine")
            .flat_map(|e| {
                std::fs::read_dir(e.path())
                    .unwrap()
                    .filter_map(Result::ok)
                    .map(|f| f.path())
                    .filter(|p| p.extension().is_some_and(|x| x == "rpav"))
                    .collect::<Vec<_>>()
            })
            .collect();
        files.sort();
        files
    }

    #[test]
    fn cache_entries_land_in_prefix_shards_and_flat_legacy_files_migrate() {
        let dir = std::env::temp_dir().join(format!("rpav-exec-shard-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = MatrixSpec::new(short_base()).runs(3);

        let cold = CampaignEngine::new()
            .with_cache_dir(Some(dir.clone()))
            .with_jobs(2)
            .run(&spec);
        assert_eq!(cold.report.simulated, 3);
        let sharded = sharded_rpav_files(&dir);
        assert_eq!(sharded.len(), 3, "every record lands in a shard dir");
        for path in &sharded {
            let key = u64::from_str_radix(path.file_stem().unwrap().to_str().unwrap(), 16).unwrap();
            assert_eq!(
                path.parent()
                    .unwrap()
                    .file_name()
                    .unwrap()
                    .to_str()
                    .unwrap(),
                format!("{:02x}", (key >> 56) as u8),
                "shard dir must be the key's top byte"
            );
            assert_eq!(*path, cache_entry_path(&dir, key));
        }

        // Demote the store to the flat pre-shard layout, journal
        // included (its root location is unchanged across layouts, but a
        // resume would mask the cache path under test).
        for path in &sharded {
            let flat = dir.join(path.file_name().unwrap());
            std::fs::rename(path, &flat).unwrap();
            let _ = std::fs::remove_dir(path.parent().unwrap());
        }
        for entry in std::fs::read_dir(&dir).unwrap().filter_map(Result::ok) {
            if entry.path().extension().is_some_and(|x| x == "rpavj") {
                std::fs::remove_file(entry.path()).unwrap();
            }
        }

        // A fresh engine serves the flat entries as hits and migrates
        // them back into their shards on first read.
        let warm = CampaignEngine::new()
            .with_cache_dir(Some(dir.clone()))
            .with_jobs(2)
            .run(&spec);
        assert_eq!(warm.report.simulated, 0, "legacy entries must be served");
        assert_eq!(warm.report.cached, 3);
        assert_eq!(
            warm.report.aggregates.to_bytes(),
            cold.report.aggregates.to_bytes()
        );
        assert_eq!(
            sharded_rpav_files(&dir).len(),
            3,
            "legacy entries migrate into shard dirs on first read"
        );
        assert!(
            std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(Result::ok)
                .all(|e| e.path().extension().is_none_or(|x| x != "rpav")),
            "no flat entries remain after migration"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_cache_resumes_quarantines_and_stays_bit_identical() {
        use std::io::Write as _;
        let dir = std::env::temp_dir().join(format!("rpav-exec-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = MatrixSpec::new(short_base()).runs(3);

        let first = CampaignEngine::new()
            .with_cache_dir(Some(dir.clone()))
            .with_jobs(2);
        let cold = first.run(&spec);
        assert_eq!(cold.report.simulated, 3);
        assert_eq!(cold.report.resumed, 0);

        // A second process (fresh engine, empty memory cache) resumes
        // everything from the durable store, bit-identically.
        let second = CampaignEngine::new()
            .with_cache_dir(Some(dir.clone()))
            .with_jobs(2);
        let warm = second.run(&spec);
        assert_eq!(warm.report.simulated, 0);
        assert_eq!(warm.report.cached, 3);
        assert_eq!(warm.report.resumed, 3, "journal must report completions");
        assert_eq!(
            warm.report.aggregates.to_bytes(),
            cold.report.aggregates.to_bytes()
        );

        // Corrupt one cache record: it is quarantined, re-simulated, and
        // the run still matches bit-for-bit.
        let victim = sharded_rpav_files(&dir).into_iter().next().unwrap();
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::File::create(&victim)
            .unwrap()
            .write_all(&bytes)
            .unwrap();
        let third = CampaignEngine::new()
            .with_cache_dir(Some(dir.clone()))
            .with_jobs(2);
        let healed = third.run(&spec);
        assert_eq!(healed.report.quarantined, 1);
        assert_eq!(healed.report.simulated, 1, "only the corrupt cell re-runs");
        assert_eq!(
            healed.report.aggregates.to_bytes(),
            cold.report.aggregates.to_bytes()
        );
        assert!(
            dir.join("quarantine").read_dir().unwrap().count() == 1,
            "corrupt file must be moved to quarantine"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
