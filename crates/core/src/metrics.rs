//! Per-run measurement records — the analog of the paper's tcpdump + CC
//! logs + received-video analysis, already joined.

use rpav_lte::HandoverKind;
use rpav_sim::{SimDuration, SimTime};

use crate::failover::SwitchCause;
use crate::stats;

/// One handover occurrence.
#[derive(Clone, Copy, Debug)]
pub struct HandoverRecord {
    /// Execution start (RRCConnectionReconfiguration).
    pub at: SimTime,
    /// Handover execution time.
    pub het: SimDuration,
    /// Trigger type.
    pub kind: HandoverKind,
    /// Source cell.
    pub from: u32,
    /// Target cell.
    pub to: u32,
}

/// One radio-tick snapshot (100 ms cadence, like the modem's reporting).
#[derive(Clone, Copy, Debug)]
pub struct RadioTraceRow {
    /// Timestamp.
    pub t: SimTime,
    /// UAV altitude (m).
    pub altitude_m: f64,
    /// Available uplink capacity (bit/s).
    pub capacity_bps: f64,
    /// Serving-cell RSRP (dBm).
    pub rsrp_dbm: f64,
    /// Serving-cell SINR (dB).
    pub sinr_db: f64,
    /// Whether a handover was executing.
    pub in_handover: bool,
}

/// One played (or skipped) frame.
#[derive(Clone, Copy, Debug)]
pub struct FrameRecord {
    /// Frame number.
    pub number: u64,
    /// Display (or skip) instant.
    pub display_at: SimTime,
    /// Playback latency (ms); `None` for skipped frames.
    pub latency_ms: Option<f64>,
    /// SSIM (0 for skipped frames).
    pub ssim: f64,
    /// Whether it was actually displayed.
    pub displayed: bool,
}

/// Recovery bookkeeping for one scheduled blackout window.
#[derive(Clone, Copy, Debug)]
pub struct OutageRecord {
    /// Blackout window start.
    pub from: SimTime,
    /// Blackout window end.
    pub until: SimTime,
    /// Pre-outage goodput baseline (bps, 5 s window before the blackout).
    pub baseline_bps: f64,
    /// First media packet delivered after the window ended.
    pub first_arrival_after: Option<SimTime>,
    /// First frame displayed after the window ended.
    pub first_frame_after: Option<SimTime>,
    /// When a 1 s goodput window first got back to 50 % of the baseline
    /// (the survival bar: the stream is usable again).
    pub rate_half_recovered_at: Option<SimTime>,
    /// When a 1 s goodput window first got back to 90 % of the baseline
    /// (full recovery; AIMD controllers probe back to this linearly, so
    /// it can trail the 50 % mark by tens of seconds at high rates).
    pub rate_recovered_at: Option<SimTime>,
}

impl OutageRecord {
    /// Time from the end of the blackout to the first displayed frame.
    pub fn time_to_first_frame(&self) -> Option<SimDuration> {
        self.first_frame_after
            .map(|t| t.saturating_since(self.until))
    }

    /// Time from the end of the blackout to 50 % rate recovery.
    pub fn time_to_half_rate_recovery(&self) -> Option<SimDuration> {
        self.rate_half_recovered_at
            .map(|t| t.saturating_since(self.until))
    }

    /// Time from the end of the blackout to 90 % rate recovery.
    pub fn time_to_rate_recovery(&self) -> Option<SimDuration> {
        self.rate_recovered_at
            .map(|t| t.saturating_since(self.until))
    }

    /// Whether the stream survived: frames were displayed again after the
    /// blackout ended.
    pub fn survived(&self) -> bool {
        self.first_frame_after.is_some()
    }
}

/// One failover switch event.
#[derive(Clone, Copy, Debug)]
pub struct SwitchRecord {
    /// When the flow moved.
    pub at: SimTime,
    /// Leg the flow left.
    pub from_leg: u8,
    /// Leg the flow moved to.
    pub to_leg: u8,
    /// What justified the move.
    pub cause: SwitchCause,
}

/// End-of-run health accounting for one network leg.
#[derive(Clone, Copy, Debug, Default)]
pub struct PathHealthSummary {
    /// Leg index (0 = the configured operator, 1 = the secondary).
    pub leg: u8,
    /// Time the estimator classified the leg healthy.
    pub time_healthy: SimDuration,
    /// Time classified degraded.
    pub time_degraded: SimDuration,
    /// Time classified dead.
    pub time_dead: SimDuration,
    /// Path reports folded into the estimate.
    pub reports: u64,
    /// Final smoothed RTT (ms), if any report arrived.
    pub final_rtt_ms: Option<f64>,
    /// Final smoothed loss fraction.
    pub final_loss: Option<f64>,
    /// Media packets this leg carried uplink (first transmissions only;
    /// duplicates and parity are counted by their own counters). The
    /// bonded scheduler's per-leg tx share falls out of these.
    pub tx_packets: u64,
}

/// Everything one run produces.
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    /// Run duration.
    pub duration: SimDuration,
    /// Media packets offered to the network.
    pub media_sent: u64,
    /// Media packets delivered to the receiver.
    pub media_received: u64,
    /// Media payload bytes delivered.
    pub media_received_bytes: u64,
    /// One-way delay samples of delivered media packets: (arrival, ms).
    pub owd: Vec<(SimTime, f64)>,
    /// Handover events.
    pub handovers: Vec<HandoverRecord>,
    /// Radio snapshots.
    pub radio: Vec<RadioTraceRow>,
    /// Frame-level playback records.
    pub frames: Vec<FrameRecord>,
    /// Player stall count (inter-frame gap > 300 ms).
    pub stalls: u64,
    /// Total wall time the player spent above the stall threshold.
    pub stalled_time: SimDuration,
    /// Frames that arrived after the player had skipped past them —
    /// delivered late (a repair that lost its race), not lost.
    pub frames_late_discarded: u64,
    /// Packets the sender-side CC discarded before transmission (SCReAM
    /// queue breaker).
    pub sender_discarded: u64,
    /// SCReAM false losses from the bounded ack span.
    pub span_skipped: u64,
    /// Distinct serving cells seen.
    pub distinct_cells: usize,
    /// PLIs the receiver sent upstream after decode-breaking loss.
    pub plis_sent: u64,
    /// PLIs that survived the feedback path and reached the sender.
    pub plis_received: u64,
    /// IDRs the encoder produced in response to PLIs.
    pub forced_keyframes: u64,
    /// Feedback-starvation watchdog activations (CC entered `Starved`).
    pub watchdog_activations: u64,
    /// Watchdog full recoveries (ramp completed back to the CC target).
    pub watchdog_recoveries: u64,
    /// Duration of the last completed ramp-back (time-to-recover).
    pub watchdog_last_ramp: Option<SimDuration>,
    /// Jitter-target inflations after receiver-observed delivery gaps.
    pub jitter_inflations: u64,
    /// Packets destroyed by scripted fault clauses (both directions).
    pub script_dropped: u64,
    /// Per-scheduled-blackout recovery records.
    pub outages: Vec<OutageRecord>,
    /// Wire packets whose payload failed to parse (typed `ParseError` from
    /// any RTP/RTCP parser, either direction).
    pub malformed_packets: u64,
    /// Media packets that arrived with the corruption flag set (bits were
    /// really flipped in flight; the parsers decide whether they survive).
    pub corrupted_arrivals: u64,
    /// Duplicate media packets discarded by the jitter buffer.
    pub duplicate_packets: u64,
    /// Media packets that arrived after the playout deadline had passed.
    pub late_packets: u64,
    /// Depacketizer-level malformed payloads (parsed RTP, broken `Meta`).
    pub malformed_payloads: u64,
    /// NACK feedback packets the receiver sent.
    pub nacks_sent: u64,
    /// Distinct sequence numbers requested across all NACKs (retries
    /// re-count, as on the wire).
    pub nack_seqs_requested: u64,
    /// Missing packets recovered by retransmission in time for playout.
    pub rtx_recovered: u64,
    /// Retransmissions that arrived after the loss was already abandoned —
    /// wasted repair bytes.
    pub rtx_late: u64,
    /// Missing packets abandoned (retries exhausted or playout deadline
    /// unreachable); these escalate to the PLI path.
    pub nack_abandoned: u64,
    /// Retransmission packets the sender emitted.
    pub rtx_sent: u64,
    /// Wire bytes spent on retransmissions.
    pub rtx_bytes: u64,
    /// NACKed sequences dropped because the repair token bucket was empty.
    pub rtx_budget_exhausted: u64,
    /// NACKed sequences no longer in the sender's retransmission history.
    pub rtx_not_in_history: u64,
    /// Failover switch events (multipath runs; empty on single-path).
    pub switches: Vec<SwitchRecord>,
    /// Per-leg health accounting (multipath runs; empty on single-path).
    pub path_health: Vec<PathHealthSummary>,
    /// Standby keep-warm probe packets sent (Failover/SelectiveDuplicate).
    pub probes_sent: u64,
    /// Media packets transmitted a second time on the other leg
    /// (Duplicate: all; SelectiveDuplicate: keyframes + degraded windows).
    pub dup_tx_packets: u64,
    /// Payload bytes of those duplicate transmissions.
    pub dup_tx_bytes: u64,
    /// Per-path receiver reports the sender parsed.
    pub path_reports_received: u64,
    /// Reed–Solomon parity packets transmitted (Bonded scheme).
    pub fec_tx: u64,
    /// Erased media packets rebuilt from parity before the NACK/RTX path
    /// had to fire (Bonded scheme).
    pub fec_recovered: u64,
    /// Media arrivals accepted out of order by the cross-leg reassembly
    /// buffer (sequence below the highest already seen).
    pub reorder_buffered: u64,
    /// Of [`fec_recovered`](Self::fec_recovered), packets rebuilt from
    /// groups that had lost *more than one* member — repairs a
    /// single-parity XOR code could never have made.
    pub fec_multi_recovered: u64,
}

impl RunMetrics {
    /// Packet error rate of the media stream.
    pub fn per(&self) -> f64 {
        if self.media_sent == 0 {
            return 0.0;
        }
        1.0 - self.media_received as f64 / self.media_sent as f64
    }

    /// Total time any leg's health estimator classified its path dead
    /// (milliseconds, summed over legs; 0 on single-path runs).
    pub fn path_dead_ms(&self) -> f64 {
        self.path_health
            .iter()
            .map(|p| p.time_dead.as_millis_f64())
            .sum()
    }

    /// Fraction of first-transmission media packets carried by `leg`
    /// (0 when the run recorded no per-leg transmissions — single-path
    /// runs, or a bonded run that never sent).
    pub fn leg_tx_share(&self, leg: u8) -> f64 {
        let total: u64 = self.path_health.iter().map(|p| p.tx_packets).sum();
        if total == 0 {
            return 0.0;
        }
        let mine: u64 = self
            .path_health
            .iter()
            .filter(|p| p.leg == leg)
            .map(|p| p.tx_packets)
            .sum();
        mine as f64 / total as f64
    }

    /// Mean goodput over the run (payload bits delivered / duration).
    pub fn goodput_bps(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.media_received_bytes as f64 * 8.0 / secs
    }

    /// Goodput over sliding windows: `(window_end, bps)` series.
    pub fn goodput_timeline(&self, window: SimDuration) -> Vec<(SimTime, f64)> {
        // Recover per-window byte counts from the OWD sample arrival times
        // weighted by mean packet size (samples are per delivered packet).
        if self.owd.is_empty() || self.media_received == 0 {
            return Vec::new();
        }
        let mean_pkt = self.media_received_bytes as f64 / self.media_received as f64;
        let mut out = Vec::new();
        let (Some(last), Some(first)) = (self.owd.last(), self.owd.first()) else {
            return Vec::new();
        };
        let end = last.0;
        let mut t = first.0 + window;
        let mut idx = 0usize;
        while t <= end {
            let start = t - window;
            while idx < self.owd.len() && self.owd[idx].0 < start {
                idx += 1;
            }
            let count = self.owd[idx..].iter().take_while(|(a, _)| *a <= t).count();
            out.push((t, count as f64 * mean_pkt * 8.0 / window.as_secs_f64()));
            t += window;
        }
        out
    }

    /// Handover frequency (events per second of run time).
    pub fn ho_frequency(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.handovers.len() as f64 / secs
    }

    /// HET samples in milliseconds.
    pub fn het_ms(&self) -> Vec<f64> {
        self.handovers
            .iter()
            .map(|h| h.het.as_millis_f64())
            .collect()
    }

    /// One-way latency samples in milliseconds.
    pub fn owd_ms(&self) -> Vec<f64> {
        self.owd.iter().map(|(_, ms)| *ms).collect()
    }

    /// Playback-latency samples (displayed frames only), ms.
    pub fn playback_latency_ms(&self) -> Vec<f64> {
        self.frames.iter().filter_map(|f| f.latency_ms).collect()
    }

    /// SSIM samples (0 entries for skipped frames included, §4.2.3).
    pub fn ssim_samples(&self) -> Vec<f64> {
        self.frames.iter().map(|f| f.ssim).collect()
    }

    /// FPS over sliding 1 s windows.
    pub fn fps_timeline(&self) -> Vec<(SimTime, f64)> {
        let displayed: Vec<SimTime> = self
            .frames
            .iter()
            .filter(|f| f.displayed)
            .map(|f| f.display_at)
            .collect();
        if displayed.is_empty() {
            return Vec::new();
        }
        let window = SimDuration::from_secs(1);
        let mut out = Vec::new();
        let Some(&end) = displayed.last() else {
            return Vec::new();
        };
        let mut t = displayed[0] + window;
        let mut idx = 0usize;
        while t <= end {
            let start = t - window;
            while idx < displayed.len() && displayed[idx] < start {
                idx += 1;
            }
            let count = displayed[idx..].iter().take_while(|d| **d <= t).count();
            out.push((t, count as f64));
            t += SimDuration::from_millis(500);
        }
        out
    }

    /// Fraction of NACK-requested sequences recovered in time for playout
    /// (the repair-efficiency headline; 0 when repair never fired).
    pub fn repair_efficiency(&self) -> f64 {
        if self.nack_seqs_requested == 0 {
            return 0.0;
        }
        self.rtx_recovered as f64 / self.nack_seqs_requested as f64
    }

    /// Stall rate per minute (the §4.2.1 headline metric).
    pub fn stalls_per_minute(&self) -> f64 {
        let mins = self.duration.as_secs_f64() / 60.0;
        if mins <= 0.0 {
            return 0.0;
        }
        self.stalls as f64 / mins
    }

    /// Max/min one-way-latency ratios in the 1 s windows before and after
    /// each handover (Fig. 9). Returns `(before_ratios, after_ratios)`.
    pub fn ho_latency_ratios(&self) -> (Vec<f64>, Vec<f64>) {
        let mut before = Vec::new();
        let mut after = Vec::new();
        let w = SimDuration::from_secs(1);
        for ho in &self.handovers {
            let b: Vec<f64> = self
                .owd
                .iter()
                .filter(|(t, _)| *t >= ho.at - w && *t < ho.at)
                .map(|(_, ms)| *ms)
                .collect();
            let a: Vec<f64> = self
                .owd
                .iter()
                .filter(|(t, _)| *t > ho.at && *t <= ho.at + w)
                .map(|(_, ms)| *ms)
                .collect();
            if b.len() >= 2 {
                let max = b.iter().cloned().fold(f64::MIN, f64::max);
                let min = b.iter().cloned().fold(f64::MAX, f64::min);
                if min > 0.0 {
                    before.push(max / min);
                }
            }
            if a.len() >= 2 {
                let max = a.iter().cloned().fold(f64::MIN, f64::max);
                let min = a.iter().cloned().fold(f64::MAX, f64::min);
                if min > 0.0 {
                    after.push(max / min);
                }
            }
        }
        (before, after)
    }

    /// Fraction of time playback latency was at or below the RP threshold.
    pub fn playback_within(&self, threshold_ms: f64) -> f64 {
        stats::fraction_at_or_below(&self.playback_latency_ms(), threshold_ms)
    }

    /// Derive per-outage recovery records from the scheduled blackout
    /// windows of the run's fault script. Call once, after the run, with
    /// `owd` and `frames` fully populated (both are in arrival order).
    pub fn record_outages(&mut self, windows: &[(SimTime, SimTime)]) {
        let mean_pkt_bits = if self.media_received > 0 {
            self.media_received_bytes as f64 * 8.0 / self.media_received as f64
        } else {
            0.0
        };
        // Count delivered packets in (from, to] via binary search — `owd`
        // is sorted by arrival time.
        let arrivals_in = |from: SimTime, to: SimTime| -> usize {
            let lo = self.owd.partition_point(|(a, _)| *a <= from);
            let hi = self.owd.partition_point(|(a, _)| *a <= to);
            hi - lo
        };
        for &(from, until) in windows {
            let baseline_span = SimDuration::from_secs(5);
            let bstart = if from.saturating_since(SimTime::ZERO) > baseline_span {
                from - baseline_span
            } else {
                SimTime::ZERO
            };
            let bsecs = from.saturating_since(bstart).as_secs_f64();
            let baseline_bps = if bsecs > 0.0 {
                arrivals_in(bstart, from) as f64 * mean_pkt_bits / bsecs
            } else {
                0.0
            };

            let first_arrival_after = {
                let idx = self.owd.partition_point(|(a, _)| *a < until);
                self.owd.get(idx).map(|(a, _)| *a)
            };
            let first_frame_after = self
                .frames
                .iter()
                .find(|f| f.displayed && f.display_at >= until)
                .map(|f| f.display_at);

            // First 1 s windows after the outage whose goodput is back to
            // 50 % / 90 % of the baseline, scanned at 100 ms granularity.
            let mut rate_half_recovered_at = None;
            let mut rate_recovered_at = None;
            if baseline_bps > 0.0 {
                let w = SimDuration::from_secs(1);
                let horizon = self.owd.last().map(|(a, _)| *a).unwrap_or(until);
                let mut t = until + w;
                while t <= horizon {
                    let bps = arrivals_in(t - w, t) as f64 * mean_pkt_bits / w.as_secs_f64();
                    if rate_half_recovered_at.is_none() && bps >= 0.5 * baseline_bps {
                        rate_half_recovered_at = Some(t);
                    }
                    if bps >= 0.9 * baseline_bps {
                        rate_recovered_at = Some(t);
                        break;
                    }
                    t += SimDuration::from_millis(100);
                }
            }

            self.outages.push(OutageRecord {
                from,
                until,
                baseline_bps,
                first_arrival_after,
                first_frame_after,
                rate_half_recovered_at,
                rate_recovered_at,
            });
        }
    }

    /// Whether every scheduled blackout was survived (frames displayed
    /// again after each window). Vacuously true with no scheduled outages.
    pub fn survived_all_outages(&self) -> bool {
        self.outages.iter().all(|o| o.survived())
    }

    /// Ping-pong handovers: a handover back to the cell just left, within
    /// `window` (the §5 discussion: "avoid unnecessary ping-pong HOs …
    /// that we also observed in our rural measurements").
    pub fn ping_pong_count(&self, window: SimDuration) -> usize {
        self.handovers
            .windows(2)
            .filter(|w| w[1].to == w[0].from && w[1].at.saturating_since(w[0].at) <= window)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn sample_metrics() -> RunMetrics {
        RunMetrics {
            duration: SimDuration::from_secs(60),
            media_sent: 1_000,
            media_received: 990,
            media_received_bytes: 990 * 1_200,
            owd: (0..990)
                .map(|i| (t(i * 60), 40.0 + (i % 10) as f64))
                .collect(),
            handovers: vec![HandoverRecord {
                at: t(30_000),
                het: SimDuration::from_millis(30),
                kind: HandoverKind::A3,
                from: 1,
                to: 2,
            }],
            frames: (0..1_800)
                .map(|i| FrameRecord {
                    number: i,
                    display_at: t(i * 33),
                    latency_ms: Some(180.0 + (i % 30) as f64),
                    ssim: 0.9,
                    displayed: true,
                })
                .collect(),
            stalls: 2,
            ..Default::default()
        }
    }

    #[test]
    fn per_and_goodput() {
        let m = sample_metrics();
        assert!((m.per() - 0.01).abs() < 1e-12);
        let expected = 990.0 * 1_200.0 * 8.0 / 60.0;
        assert!((m.goodput_bps() - expected).abs() < 1.0);
    }

    #[test]
    fn ho_frequency_and_het() {
        let m = sample_metrics();
        assert!((m.ho_frequency() - 1.0 / 60.0).abs() < 1e-12);
        assert_eq!(m.het_ms(), vec![30.0]);
    }

    #[test]
    fn stalls_per_minute() {
        let m = sample_metrics();
        assert!((m.stalls_per_minute() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn playback_within_threshold() {
        let m = sample_metrics();
        assert_eq!(m.playback_within(300.0), 1.0);
        assert_eq!(m.playback_within(100.0), 0.0);
    }

    #[test]
    fn ho_latency_ratio_windows() {
        let mut m = sample_metrics();
        // Inject a latency spike just before the handover at 30 s.
        m.owd.push((t(29_500), 400.0));
        m.owd.sort_by_key(|(t, _)| *t);
        let (before, after) = m.ho_latency_ratios();
        assert_eq!(before.len(), 1);
        assert_eq!(after.len(), 1);
        assert!(before[0] > 8.0, "before ratio {}", before[0]);
        assert!(after[0] < 2.0, "after ratio {}", after[0]);
    }

    #[test]
    fn fps_timeline_counts_displayed_frames() {
        let m = sample_metrics();
        let fps = m.fps_timeline();
        assert!(!fps.is_empty());
        // ~30 FPS everywhere (frames every 33 ms).
        for (_, f) in &fps {
            assert!((*f - 30.0).abs() <= 2.0, "fps {f}");
        }
    }

    #[test]
    fn goodput_timeline_matches_mean() {
        let m = sample_metrics();
        let tl = m.goodput_timeline(SimDuration::from_secs(5));
        assert!(!tl.is_empty());
        let avg = tl.iter().map(|(_, b)| *b).sum::<f64>() / tl.len() as f64;
        // Packets every 60 ms of 1 200 B → 160 kbps.
        assert!((avg - 160_000.0).abs() < 16_000.0, "avg {avg}");
    }

    #[test]
    fn outage_records_compute_recovery_times() {
        let mut m = RunMetrics::default();
        // 1 200 B packets every 10 ms, dark from 10 s to 15 s.
        let mut owd = Vec::new();
        for i in 0..3_000u64 {
            let at = t(i * 10);
            if at >= t(10_000) && at < t(15_000) {
                continue;
            }
            owd.push((at, 40.0));
        }
        m.media_received = owd.len() as u64;
        m.media_received_bytes = owd.len() as u64 * 1_200;
        m.owd = owd;
        m.frames = (0..900u64)
            .map(|i| {
                let at = t(i * 33);
                FrameRecord {
                    number: i,
                    display_at: at,
                    latency_ms: Some(200.0),
                    ssim: 0.9,
                    displayed: !(at >= t(10_000) && at < t(15_200)),
                }
            })
            .collect();
        m.record_outages(&[(t(10_000), t(15_000))]);
        assert_eq!(m.outages.len(), 1);
        let o = &m.outages[0];
        assert!(
            (o.baseline_bps - 960_000.0).abs() < 50_000.0,
            "baseline {}",
            o.baseline_bps
        );
        assert!(o.survived());
        assert!(m.survived_all_outages());
        let ff = o.time_to_first_frame().unwrap();
        assert!(
            ff.as_millis() <= 300,
            "first frame {} ms after",
            ff.as_millis()
        );
        let rr = o.time_to_rate_recovery().unwrap();
        assert!(
            rr.as_millis() <= 1_100,
            "rate recovery {} ms",
            rr.as_millis()
        );
        let half = o.time_to_half_rate_recovery().unwrap();
        assert!(half <= rr, "50% mark {half:?} after 90% mark {rr:?}");
    }

    #[test]
    fn unsurvived_outage_is_reported() {
        let mut m = sample_metrics();
        // A blackout scheduled after the last delivered packet/frame.
        m.record_outages(&[(t(70_000), t(75_000))]);
        assert_eq!(m.outages.len(), 1);
        assert!(!m.outages[0].survived());
        assert!(!m.survived_all_outages());
        assert!(m.outages[0].time_to_first_frame().is_none());
    }

    #[test]
    fn empty_metrics_are_safe() {
        let m = RunMetrics::default();
        assert_eq!(m.per(), 0.0);
        assert_eq!(m.goodput_bps(), 0.0);
        assert_eq!(m.ho_frequency(), 0.0);
        assert!(m.goodput_timeline(SimDuration::from_secs(1)).is_empty());
        assert!(m.fps_timeline().is_empty());
        let (b, a) = m.ho_latency_ratios();
        assert!(b.is_empty() && a.is_empty());
    }
}
