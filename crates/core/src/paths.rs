//! Shared network-path construction — one place for the §3.1/§4.1 wire
//! parameters so single-path and multipath runs are parameterised
//! identically.
//!
//! Every access path in the study is the same chain: fault injector
//! (bursty baseline PER) → bottleneck link (radio propagation + eNodeB
//! queue) → WAN delay pipe. The numbers live here once:
//!
//! * baseline loss: Gilbert–Elliott tuned to the measured 0.06–0.07 % PER
//!   with ≈8-packet bursts (§4.1);
//! * radio propagation ≈ 5 ms, WAN ≈ 12.5 ms → lowest RTT ≈ 35 ms (§3.1);
//! * eNodeB uplink buffer deep enough that congestion becomes delay, not
//!   loss (bufferbloat, §4.1).

use rpav_netem::{FaultConfig, GilbertElliott, Path};
use rpav_sim::{RngSet, SimDuration};

/// eNodeB uplink buffer: deep enough that congestion becomes delay, not
/// loss (bufferbloat, §4.1).
pub const UPLINK_QUEUE_BYTES: usize = 6_000_000;
/// Uplink bottleneck placeholder rate; re-rated on the first radio tick.
pub const UPLINK_INITIAL_BPS: f64 = 10e6;
/// Downlink (feedback-direction) rate: effectively uncongested.
pub const DOWNLINK_BPS: f64 = 150e6;
/// Radio propagation delay.
pub const BOTTLENECK_DELAY: SimDuration = SimDuration::from_millis(5);
/// WAN (eNodeB → server) one-way delay.
pub const WAN_DELAY: SimDuration = SimDuration::from_millis(12);
/// WAN jitter.
pub const WAN_JITTER: SimDuration = SimDuration::from_micros(600);

/// Baseline bursty loss process tuned to the paper's measured PER of
/// 0.06–0.07 % with consecutive drops (§4.1): rare events (≈0.2 /s at
/// 25 Mbps), ≈8 packets lost per event.
pub fn baseline_loss() -> GilbertElliott {
    GilbertElliott::new(0.000_08, 0.12, 0.0, 0.8)
}

/// RNG stream prefix for multipath leg `leg_index` riding `operator_name`.
/// Legs 0 and 1 keep the historical `mp.{operator}` prefixes so every
/// committed two-leg baseline stays bit-identical; legs ≥ 2 reuse the
/// same operators (the airframe carries multiple SIMs per carrier) but
/// qualify the prefix with the leg index, making their channel draws
/// statistically independent.
pub fn leg_stream_prefix(operator_name: &str, leg_index: usize) -> String {
    if leg_index < 2 {
        format!("mp.{operator_name}")
    } else {
        format!("mp.{operator_name}.l{leg_index}")
    }
}

/// Build an uplink (media-direction) access path. `stream_prefix` names
/// the RNG streams (`<prefix>.fault`, `<prefix>.wan`), so distinct paths
/// in one run draw from distinct deterministic streams.
pub fn uplink_path(rngs: &RngSet, stream_prefix: &str, run_index: u64) -> Path {
    Path::new(
        FaultConfig {
            burst: baseline_loss(),
            ..Default::default()
        },
        rngs.stream_indexed(&format!("{stream_prefix}.fault"), run_index),
        UPLINK_INITIAL_BPS,
        BOTTLENECK_DELAY,
        UPLINK_QUEUE_BYTES,
        WAN_DELAY,
        WAN_JITTER,
        rngs.stream_indexed(&format!("{stream_prefix}.wan"), run_index),
    )
}

/// Build a downlink (feedback-direction) path: same chain, downlink rate.
pub fn downlink_path(rngs: &RngSet, stream_prefix: &str, run_index: u64) -> Path {
    Path::new(
        FaultConfig {
            burst: baseline_loss(),
            ..Default::default()
        },
        rngs.stream_indexed(&format!("{stream_prefix}.fault"), run_index),
        DOWNLINK_BPS,
        BOTTLENECK_DELAY,
        UPLINK_QUEUE_BYTES,
        WAN_DELAY,
        WAN_JITTER,
        rngs.stream_indexed(&format!("{stream_prefix}.wan"), run_index),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpav_netem::{Packet, PacketKind};
    use rpav_sim::SimTime;

    #[test]
    fn builders_use_distinct_streams_per_prefix() {
        // Same seed, different prefixes → different fault/WAN draws; same
        // prefix → bit-identical path behaviour.
        let drive = |prefix: &str| {
            let rngs = RngSet::new(0xBEEF);
            let mut p = uplink_path(&rngs, prefix, 0);
            let mut arrivals = Vec::new();
            let mut t = SimTime::ZERO;
            for i in 0..5_000u64 {
                p.enqueue(
                    t,
                    Packet::new(
                        i,
                        bytes::Bytes::from(vec![0u8; 1_200]),
                        PacketKind::Media,
                        t,
                    ),
                );
                while let Some(pkt) = p.poll(t) {
                    arrivals.push((pkt.seq, t));
                }
                t += SimDuration::from_millis(1);
            }
            arrivals
        };
        assert_eq!(drive("a"), drive("a"));
        assert_ne!(drive("a"), drive("b"));
    }
}
