//! `rpav-core` — the measurement pipeline of *Analyzing Real-time Video
//! Delivery over Cellular Networks for Remote Piloting Aerial Vehicles*
//! (IMC '22), rebuilt as a deterministic simulation study.
//!
//! The crate wires the substrates together and extracts every metric the
//! paper reports:
//!
//! * [`scenario`] — experiment axes (environment × operator × mobility ×
//!   CC) with the paper's default parameters.
//! * [`pipeline`] — the sender/receiver wiring ([`Simulation`]).
//! * [`metrics`] — per-run records and derived series (goodput, OWD, HET,
//!   FPS, playback latency, SSIM, stalls, HO-latency ratios).
//! * [`stats`] — quantiles, boxplot summaries, CDFs.
//! * [`exec`] — the parallel deterministic matrix engine
//!   ([`MatrixSpec`] → thread pool → cached, submission-ordered results),
//!   crash-safe: panic isolation with poison records, a durable
//!   checksummed result cache, and kill/resume via a completion journal.
//! * [`codec`] — canonical byte encoding of [`RunMetrics`] (cache +
//!   determinism assertions) plus the CRC32 durable-store envelope.
//! * [`journal`] — the per-campaign fsync'd completion manifest behind
//!   kill/resume.
//! * [`json`] — the total-function JSON parser and canonical serializer
//!   behind the daemon wire format.
//! * [`spec`] — [`CampaignSpec`], the versioned canonical external
//!   representation of a campaign (axes + base config + engine options).
//! * [`runner`] — campaign execution across repeated runs.
//! * [`ping`] — the cross-traffic-free RTT workload of Fig. 13.
//! * [`dataset`] — CSV export in the shape of the paper's released dataset.
//! * [`multipath`] — the paper's future-work multipath experiment
//!   (redundant transmission over both operators).
//! * [`trace`] — Fig. 8-style time-series export (CSV).
//! * [`summary`] — the in-text headline statistics.
//!
//! # Quickstart
//!
//! ```
//! use rpav_core::prelude::*;
//!
//! let cfg = ExperimentConfig::builder()
//!     .environment(Environment::Rural)
//!     .cc(CcMode::Gcc)
//!     .seed(42)
//!     .hold_secs(1) // shorten for the doctest
//!     .build();
//! let metrics = Simulation::new(cfg).run();
//! assert!(metrics.goodput_bps() > 1e6);
//! assert!(metrics.per() < 0.05);
//! ```

pub mod cc;
pub mod codec;
pub mod dataset;
pub mod exec;
pub mod failover;
pub mod health;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod multipath;
pub mod paths;
pub mod ping;
pub mod pipeline;
pub mod runner;
pub mod scenario;
pub mod spec;
pub mod stats;
pub mod summary;
pub mod trace;

pub use exec::{CampaignEngine, EngineOptions, MatrixResult, MatrixSpec};
pub use metrics::RunMetrics;
pub use pipeline::Simulation;
#[allow(deprecated)]
pub use runner::run_campaign;
pub use runner::CampaignResult;
pub use scenario::{CcMode, ExperimentConfig, Mobility};
pub use spec::{CampaignSpec, SpecError, MAX_CELLS, SPEC_VERSION};

/// Convenient glob import for examples and benches: the experiment axes,
/// the matrix engine, the campaign spec, and the per-run metrics every
/// binary touches.
pub mod prelude {
    pub use crate::exec::{
        CampaignEngine, CcAxis, Cell, CellFailure, CellFault, CellOutcome, EngineOptions,
        EngineReport, MatrixResult, MatrixSpec, RunScheme, StreamSummary,
    };
    pub use crate::json::{Json, JsonError};
    pub use crate::metrics::RunMetrics;
    pub use crate::multipath::MultipathScheme;
    pub use crate::pipeline::Simulation;
    pub use crate::runner::CampaignResult;
    pub use crate::scenario::{
        CcMode, ExperimentConfig, ExperimentConfigBuilder, Mobility, MAX_LEGS,
    };
    pub use crate::spec::{CampaignSpec, SpecError, MAX_CELLS, SPEC_VERSION};
    pub use crate::stats;
    pub use crate::stats::LogHistogram;
    pub use crate::summary::CampaignAggregates;
    pub use rpav_lte::{Environment, Operator};
}
