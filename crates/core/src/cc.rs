//! The sender-side congestion-control engine, shared by the single-path
//! pipeline and the multipath runner.
//!
//! One [`CcEngine`] wraps the §3.2 workload behaviours behind a uniform
//! enqueue/poll interface:
//!
//! * **Static** — constant target, packets forwarded unpaced;
//! * **GCC** — send-side bandwidth estimation from TWCC feedback, with a
//!   token-bucket pacer at 1.5× the target rate;
//! * **SCReAM** — self-clocked transmission from RFC 8888 feedback.
//!
//! The adaptive controllers embed the shared feedback-starvation watchdog
//! (`rpav-sim`), so a feedback blackout decays the target toward a floor
//! and the ramp back is metered — which is also what makes the CC state
//! *carryable* across a failover switch: the engine is path-agnostic, the
//! starvation watchdog provides the rate cut while the old path is dark,
//! and the metered ramp re-probes the new path once feedback resumes
//! (see DESIGN.md §8 for the switch policy).

use std::collections::VecDeque;

use bytes::Bytes;
use rpav_gcc::{GccConfig, SendSideBwe};
use rpav_rtp::packet::RtpPacket;
use rpav_rtp::rfc8888::Rfc8888Packet;
use rpav_rtp::twcc::TwccFeedback;
use rpav_scream::{ScreamConfig, ScreamSender, ScreamStats};
use rpav_sim::{SimDuration, SimTime, WatchdogConfig, WatchdogStats};

use crate::scenario::CcMode;

/// TWCC feedback interval (GCC).
pub const TWCC_INTERVAL: SimDuration = SimDuration::from_millis(50);
/// RFC 8888 feedback interval (SCReAM library default, §4.2.1: 10 ms).
pub const CCFB_INTERVAL: SimDuration = SimDuration::from_millis(10);
/// Pacer burst cap: at most this many bytes of accumulated send credit.
const PACER_BURST_BYTES: f64 = 60_000.0;
/// Pacer rate factor over the GCC target.
const PACER_FACTOR: f64 = 1.5;
/// Adaptive controllers start probing from this rate.
const ADAPTIVE_START_BPS: f64 = 2e6;
/// Guard subtracted from computed pacer wake times: the wake inverts the
/// forward budget arithmetic in floating point, and the two can disagree
/// by a few ULP. Waking a microsecond early is a no-op; waking late
/// diverges from the reference tick loop.
const WAKE_GUARD: SimDuration = SimDuration::from_micros(1);

/// One congestion-control workload, behind a uniform interface.
pub enum CcEngine {
    /// Constant bitrate; packets pass straight through.
    Static {
        /// The fixed target.
        bitrate_bps: f64,
        /// Pass-through staging queue (drained every tick).
        queue: VecDeque<RtpPacket>,
    },
    /// Google congestion control + token-bucket pacer.
    Gcc {
        /// The delay/loss-based bandwidth estimator.
        bwe: SendSideBwe,
        /// Paced send queue.
        queue: VecDeque<RtpPacket>,
        /// Current send credit (bytes).
        budget_bytes: f64,
        /// Last credit refill instant.
        last_refill: SimTime,
    },
    /// SCReAM self-clocked sender.
    Scream {
        /// The windowed sender (owns its RTP queue).
        sender: ScreamSender,
    },
}

impl CcEngine {
    /// Build the engine for a workload. `watchdog` configures the
    /// feedback-starvation mitigation inside the adaptive controllers.
    pub fn new(mode: CcMode, watchdog: WatchdogConfig) -> CcEngine {
        match mode {
            CcMode::Static { bitrate_bps } => CcEngine::Static {
                bitrate_bps,
                queue: VecDeque::new(),
            },
            CcMode::Gcc => CcEngine::Gcc {
                bwe: SendSideBwe::new(GccConfig {
                    watchdog,
                    ..Default::default()
                }),
                queue: VecDeque::new(),
                budget_bytes: 0.0,
                last_refill: SimTime::ZERO,
            },
            CcMode::Scream { .. } => CcEngine::Scream {
                sender: ScreamSender::new(ScreamConfig {
                    watchdog,
                    ..Default::default()
                }),
            },
        }
    }

    /// The encoder's starting bitrate under this workload.
    pub fn start_bitrate_bps(&self) -> f64 {
        match self {
            CcEngine::Static { bitrate_bps, .. } => *bitrate_bps,
            _ => ADAPTIVE_START_BPS,
        }
    }

    /// Whether media packets need the transport-wide sequence extension.
    pub fn with_twcc(&self) -> bool {
        matches!(self, CcEngine::Gcc { .. })
    }

    /// Receiver feedback cadence; `None` for Static (no feedback stream).
    pub fn feedback_interval(&self) -> Option<SimDuration> {
        match self {
            CcEngine::Static { .. } => None,
            CcEngine::Gcc { .. } => Some(TWCC_INTERVAL),
            CcEngine::Scream { .. } => Some(CCFB_INTERVAL),
        }
    }

    /// The current target bitrate (watchdog cap already applied by the
    /// embedded controllers).
    pub fn target_bps(&self) -> f64 {
        match self {
            CcEngine::Static { bitrate_bps, .. } => *bitrate_bps,
            CcEngine::Gcc { bwe, .. } => bwe.target_bitrate_bps(),
            CcEngine::Scream { sender } => sender.target_bitrate_bps(),
        }
    }

    /// Advance controller timers (feedback-starvation watchdogs included)
    /// and return the target the encoder should follow.
    pub fn on_tick(&mut self, now: SimTime) -> f64 {
        match self {
            CcEngine::Static { bitrate_bps, .. } => *bitrate_bps,
            CcEngine::Gcc { bwe, .. } => {
                bwe.on_tick(now);
                bwe.target_bitrate_bps()
            }
            CcEngine::Scream { sender } => {
                sender.on_tick(now);
                sender.target_bitrate_bps()
            }
        }
    }

    /// Stage freshly packetized media for transmission.
    pub fn enqueue(&mut self, now: SimTime, mut packets: Vec<RtpPacket>) {
        self.enqueue_drain(now, &mut packets);
    }

    /// Drain-style variant of [`enqueue`](Self::enqueue): moves the packets
    /// out but leaves the vector (and its capacity) with the caller, so a
    /// per-frame scratch buffer can be reused indefinitely.
    pub fn enqueue_drain(&mut self, now: SimTime, packets: &mut Vec<RtpPacket>) {
        match self {
            CcEngine::Static { queue, .. } => queue.extend(packets.drain(..)),
            CcEngine::Gcc { queue, .. } => queue.extend(packets.drain(..)),
            CcEngine::Scream { sender } => sender.enqueue_drain(now, packets),
        }
    }

    /// Pop the next packet the controller allows onto the wire right now,
    /// if any. GCC records the departure into its estimator here.
    pub fn poll_transmit(&mut self, now: SimTime) -> Option<RtpPacket> {
        match self {
            CcEngine::Static { queue, .. } => queue.pop_front(),
            CcEngine::Gcc {
                bwe,
                queue,
                budget_bytes,
                last_refill,
            } => {
                // Token-bucket pacer at 1.5× the target rate. Repeated
                // calls within one tick add zero credit (dt = 0).
                let dt = now.saturating_since(*last_refill).as_secs_f64();
                *last_refill = now;
                let rate = bwe.target_bitrate_bps() * PACER_FACTOR;
                *budget_bytes = (*budget_bytes + rate * dt / 8.0).min(PACER_BURST_BYTES);
                let size = queue.front().map(|p| p.wire_size())?;
                if *budget_bytes < size as f64 {
                    return None;
                }
                let p = queue.pop_front()?;
                *budget_bytes -= size as f64;
                if let Some(ts) = p.transport_seq {
                    bwe.on_packet_sent(ts, now, p.wire_size());
                }
                Some(p)
            }
            CcEngine::Scream { sender } => sender.poll_transmit(now),
        }
    }

    /// Earliest future instant the engine needs the driver's attention: a
    /// watchdog edge, a pacer refill that unblocks the queue head, or a
    /// SCReAM window event. `None` when the engine stays idle until new
    /// input (a frame enqueue or a feedback arrival). May be conservative
    /// (at or before the true edge); early polls are no-ops.
    pub fn next_wake(&self, now: SimTime) -> Option<SimTime> {
        match self {
            CcEngine::Static { queue, .. } => (!queue.is_empty()).then_some(now),
            CcEngine::Gcc {
                bwe,
                queue,
                budget_bytes,
                last_refill,
            } => {
                let mut wake = bwe.next_wake();
                if let Some(p) = queue.front() {
                    let need = (p.wire_size() as f64 - *budget_bytes).max(0.0);
                    let rate = bwe.target_bitrate_bps() * PACER_FACTOR;
                    let ready = if rate > 0.0 {
                        *last_refill
                            + SimDuration::from_secs_f64(need * 8.0 / rate)
                                .saturating_sub(WAKE_GUARD)
                    } else {
                        *last_refill
                    };
                    wake = Some(wake.map_or(ready, |w| w.min(ready)));
                }
                wake
            }
            CcEngine::Scream { sender } => [sender.next_wake(), sender.next_tick_wake()]
                .into_iter()
                .flatten()
                .min(),
        }
    }

    /// Offer a feedback payload to the controller. Returns `true` when
    /// the bytes parsed as this workload's dialect and were applied;
    /// `false` otherwise (the caller counts it as malformed — Static has
    /// no feedback dialect, so everything is unexpected there).
    pub fn on_feedback(&mut self, payload: Bytes, now: SimTime) -> bool {
        // Feedback arrives every 10–50 ms per leg; parsing into per-thread
        // scratch values keeps the decode vectors warm instead of
        // allocating one per round (DESIGN.md §15.3).
        thread_local! {
            static TWCC_FB: std::cell::RefCell<TwccFeedback> =
                std::cell::RefCell::new(TwccFeedback::empty());
            static CCFB: std::cell::RefCell<Rfc8888Packet> =
                std::cell::RefCell::new(Rfc8888Packet::empty());
        }
        match self {
            CcEngine::Static { .. } => false,
            CcEngine::Gcc { bwe, .. } => TWCC_FB.with(|cell| {
                let fb = &mut *cell.borrow_mut();
                match TwccFeedback::parse_into(payload, fb) {
                    Ok(()) => {
                        bwe.on_feedback(fb, now);
                        true
                    }
                    Err(_) => false,
                }
            }),
            CcEngine::Scream { sender } => CCFB.with(|cell| {
                let fb = &mut *cell.borrow_mut();
                match Rfc8888Packet::parse_into(payload, fb) {
                    Ok(()) => {
                        sender.on_feedback(fb, now);
                        true
                    }
                    Err(_) => false,
                }
            }),
        }
    }

    /// Feedback-starvation watchdog counters (`None` for Static).
    pub fn watchdog_stats(&self) -> Option<WatchdogStats> {
        match self {
            CcEngine::Static { .. } => None,
            CcEngine::Gcc { bwe, .. } => Some(bwe.watchdog_stats()),
            CcEngine::Scream { sender } => Some(sender.watchdog_stats()),
        }
    }

    /// SCReAM sender counters (`None` for the other workloads).
    pub fn scream_stats(&self) -> Option<ScreamStats> {
        match self {
            CcEngine::Scream { sender } => Some(sender.stats()),
            _ => None,
        }
    }

    /// Debug access to the SCReAM sender (RPAV_DEBUG tracing).
    pub fn scream_sender(&self) -> Option<&ScreamSender> {
        match self {
            CcEngine::Scream { sender } => Some(sender),
            _ => None,
        }
    }
}

/// Per-leg shadow congestion controllers behind one aggregate target —
/// the MPTCP-coupled answer to the DESIGN §11.5 collapse, where a single
/// delay-based CC fed by interleaved cross-leg arrivals reads the slower
/// leg's extra delay as congestion on *both*.
///
/// Each leg runs its own [`CcEngine`] of the same workload: the bonded
/// scheduler assigns every packet to a leg at enqueue time, that leg's
/// shadow engine paces it, and the leg's own feedback stream (recorded
/// per arrival leg at the receiver, returned on that leg's downlink)
/// drives only that engine. The encoder follows the *sum* of the per-leg
/// targets, so one delayed leg costs only its own share of the aggregate
/// — and a dead leg's shadow watchdog decays only that share.
pub struct CoupledCc {
    legs: Vec<CcEngine>,
}

impl CoupledCc {
    /// One shadow engine per leg, all of the same workload.
    pub fn new(mode: CcMode, watchdog: WatchdogConfig, n_legs: usize) -> CoupledCc {
        CoupledCc {
            legs: (0..n_legs.max(1))
                .map(|_| CcEngine::new(mode, watchdog))
                .collect(),
        }
    }

    /// Number of shadow engines.
    pub fn n_legs(&self) -> usize {
        self.legs.len()
    }

    /// The encoder's starting bitrate: the per-leg starts summed (each
    /// leg probes its own share of the aggregate from the beginning).
    pub fn start_bitrate_bps(&self) -> f64 {
        self.legs.iter().map(|cc| cc.start_bitrate_bps()).sum()
    }

    /// Whether media packets need the transport-wide sequence extension.
    pub fn with_twcc(&self) -> bool {
        self.legs.first().is_some_and(|cc| cc.with_twcc())
    }

    /// Receiver feedback cadence; `None` for Static.
    pub fn feedback_interval(&self) -> Option<SimDuration> {
        self.legs.first().and_then(|cc| cc.feedback_interval())
    }

    /// Aggregate target: the sum of the shadow targets.
    pub fn target_bps(&self) -> f64 {
        self.legs.iter().map(|cc| cc.target_bps()).sum()
    }

    /// Advance every shadow engine; returns the aggregate target.
    pub fn on_tick(&mut self, now: SimTime) -> f64 {
        self.legs.iter_mut().map(|cc| cc.on_tick(now)).sum()
    }

    /// Stage packets already assigned to `leg` by the scheduler.
    /// Out-of-range legs drop nothing silently — the packets go to the
    /// last engine (saturating, never a panic on a hostile index).
    pub fn enqueue_leg(&mut self, leg: usize, now: SimTime, mut packets: Vec<RtpPacket>) {
        self.enqueue_leg_drain(leg, now, &mut packets);
    }

    /// Drain-style variant of [`enqueue_leg`](Self::enqueue_leg): the caller
    /// keeps the vector's capacity for reuse on the next frame.
    pub fn enqueue_leg_drain(&mut self, leg: usize, now: SimTime, packets: &mut Vec<RtpPacket>) {
        let last = self.legs.len() - 1;
        self.legs[leg.min(last)].enqueue_drain(now, packets);
    }

    /// Pop the next packet `leg`'s shadow engine releases onto the wire.
    pub fn poll_transmit_leg(&mut self, leg: usize, now: SimTime) -> Option<RtpPacket> {
        self.legs.get_mut(leg)?.poll_transmit(now)
    }

    /// Offer a feedback payload that arrived on `leg`'s downlink to that
    /// leg's shadow engine only.
    pub fn on_feedback_leg(&mut self, leg: usize, payload: Bytes, now: SimTime) -> bool {
        match self.legs.get_mut(leg) {
            Some(cc) => cc.on_feedback(payload, now),
            None => false,
        }
    }

    /// Watchdog counters summed across the shadow engines (`last_ramp`
    /// and `max_feedback_gap` take the slowest leg).
    pub fn watchdog_stats(&self) -> Option<WatchdogStats> {
        let mut agg: Option<WatchdogStats> = None;
        for w in self.legs.iter().filter_map(|cc| cc.watchdog_stats()) {
            let a = agg.get_or_insert_with(WatchdogStats::default);
            a.activations += w.activations;
            a.recoveries += w.recoveries;
            a.starved_time += w.starved_time;
            a.last_ramp = match (a.last_ramp, w.last_ramp) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (x, y) => x.or(y),
            };
            a.max_feedback_gap = a.max_feedback_gap.max(w.max_feedback_gap);
        }
        agg
    }

    /// SCReAM counters summed across the shadow engines.
    pub fn scream_stats(&self) -> Option<ScreamStats> {
        let mut agg: Option<ScreamStats> = None;
        for s in self.legs.iter().filter_map(|cc| cc.scream_stats()) {
            let a = agg.get_or_insert_with(ScreamStats::default);
            a.sent += s.sent;
            a.acked += s.acked;
            a.reported_lost += s.reported_lost;
            a.span_skipped += s.span_skipped;
            a.queue_discarded += s.queue_discarded;
            a.loss_events += s.loss_events;
            a.watchdog_expired += s.watchdog_expired;
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpav_rtp::packetize::{FrameMeta, Packetizer};

    fn packets(n_bytes: u32, with_twcc: bool) -> Vec<RtpPacket> {
        let mut p = Packetizer::new(0x2, with_twcc);
        p.packetize(
            FrameMeta {
                frame_number: 0,
                encode_time: SimTime::ZERO,
                keyframe: true,
                frame_bytes: n_bytes,
            },
            SimTime::ZERO,
        )
    }

    #[test]
    fn static_engine_passes_straight_through() {
        let mut cc = CcEngine::new(
            CcMode::Static { bitrate_bps: 8e6 },
            WatchdogConfig::default(),
        );
        assert!(!cc.with_twcc());
        assert_eq!(cc.feedback_interval(), None);
        assert_eq!(cc.on_tick(SimTime::ZERO), 8e6);
        let sent = packets(30_000, false);
        let n = sent.len();
        cc.enqueue(SimTime::ZERO, sent);
        let mut drained = 0;
        while cc.poll_transmit(SimTime::ZERO).is_some() {
            drained += 1;
        }
        assert_eq!(drained, n);
        // No feedback dialect: everything is unexpected.
        assert!(!cc.on_feedback(Bytes::from(vec![0u8; 20]), SimTime::ZERO));
        assert!(cc.watchdog_stats().is_none());
    }

    #[test]
    fn gcc_engine_paces_to_its_target() {
        let mut cc = CcEngine::new(CcMode::Gcc, WatchdogConfig::default());
        assert!(cc.with_twcc());
        // Stage far more than one tick of credit can cover.
        cc.enqueue(SimTime::ZERO, packets(500_000, true));
        let mut sent_bytes = 0usize;
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            cc.on_tick(t);
            while let Some(p) = cc.poll_transmit(t) {
                sent_bytes += p.wire_size();
            }
            t += SimDuration::from_millis(1);
        }
        // 100 ms at 2 Mbps × 1.5 pacing ≈ 37.5 kB (+ the initial burst
        // allowance); far below the 500 kB staged.
        assert!(sent_bytes > 10_000, "pacer sent nothing: {sent_bytes}");
        assert!(
            sent_bytes < 120_000,
            "pacer failed to meter: {sent_bytes} bytes in 100 ms"
        );
    }

    #[test]
    fn coupled_cc_sums_targets_and_isolates_queues() {
        let mut cc = CoupledCc::new(
            CcMode::Static { bitrate_bps: 3e6 },
            WatchdogConfig::default(),
            3,
        );
        assert_eq!(cc.n_legs(), 3);
        assert_eq!(cc.target_bps(), 9e6);
        assert_eq!(cc.on_tick(SimTime::ZERO), 9e6);
        assert_eq!(cc.start_bitrate_bps(), 9e6);
        // A packet staged on leg 1 only ever leaves through leg 1.
        cc.enqueue_leg(1, SimTime::ZERO, packets(10_000, false));
        assert!(cc.poll_transmit_leg(0, SimTime::ZERO).is_none());
        assert!(cc.poll_transmit_leg(1, SimTime::ZERO).is_some());
        // Hostile indices neither panic nor invent traffic.
        assert!(cc.poll_transmit_leg(7, SimTime::ZERO).is_none());
        assert!(!cc.on_feedback_leg(7, Bytes::from(vec![0u8; 8]), SimTime::ZERO));
        assert!(cc.watchdog_stats().is_none(), "static has no watchdog");
    }

    #[test]
    fn garbage_feedback_is_reported_not_applied() {
        for mode in [CcMode::Gcc, CcMode::Scream { ack_span: 64 }] {
            let mut cc = CcEngine::new(mode, WatchdogConfig::default());
            assert!(!cc.on_feedback(Bytes::from(vec![0xFFu8; 40]), SimTime::ZERO));
        }
    }
}
