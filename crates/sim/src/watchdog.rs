//! Feedback-starvation watchdog shared by the congestion controllers.
//!
//! Both GCC (TWCC feedback) and SCReAM (RFC 8888 feedback) steer the media
//! rate exclusively from receiver reports. When the feedback path goes dark
//! — a link blackout, a coverage hole, an RTCP-only outage — a naive sender
//! keeps pushing at the last negotiated rate into a link that may no longer
//! exist, and on SCReAM the self-clocked window freezes transmission
//! entirely. [`FeedbackWatchdog`] is the controller-agnostic core of the
//! mitigation: it watches the inter-feedback gap, declares *starvation*
//! after a configurable timeout, drives an exponential rate back-off toward
//! a floor while starved, and meters the ramp back up once feedback
//! resumes. Controller-specific actions (cwnd freezing, clearing stale
//! in-flight state) are taken by the embedding controller in response to
//! the [`WatchdogEvent`]s this state machine emits.
//!
//! The watchdog only ever *caps* the controller's own target — it never
//! raises it — so with `enabled = false` the embedding controller behaves
//! exactly as if the watchdog did not exist (the pre-mitigation behaviour:
//! a frozen rate for GCC, a frozen window for SCReAM).

use crate::time::{SimDuration, SimTime};

/// Tunables of the starvation watchdog.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WatchdogConfig {
    /// Master switch. Disabled, the watchdog observes but never caps —
    /// reproducing the stock controllers' frozen-rate outage behaviour.
    pub enabled: bool,
    /// Inter-feedback gap that declares the feedback path dead. Stock
    /// feedback cadences are 10–50 ms, so 500 ms is ≥ 10 missed reports.
    pub timeout: SimDuration,
    /// While starved, the cap is multiplied by `backoff_factor` once per
    /// `backoff_interval`.
    pub backoff_interval: SimDuration,
    /// Multiplicative decay per interval (0 < factor < 1).
    pub backoff_factor: f64,
    /// The cap never decays below this floor: enough rate to keep probing
    /// the link so recovery is observed promptly.
    pub floor_bps: f64,
    /// While recovering, the cap is multiplied by `ramp_factor` on every
    /// feedback packet until it clears the controller's own target.
    pub ramp_factor: f64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            enabled: true,
            timeout: SimDuration::from_millis(500),
            backoff_interval: SimDuration::from_millis(200),
            backoff_factor: 0.7,
            floor_bps: 300e3,
            ramp_factor: 1.3,
        }
    }
}

/// Where the watchdog currently stands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WatchdogState {
    /// Feedback is flowing (or has never flowed); no cap in force.
    Armed,
    /// Feedback starved: the cap is decaying toward the floor.
    Starved,
    /// Feedback resumed: the cap is ramping back toward the target.
    Recovering,
}

/// Transitions the embedding controller may want to react to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WatchdogEvent {
    /// The inter-feedback gap crossed the timeout.
    Starved,
    /// First feedback after starvation arrived; ramp-back begins.
    FeedbackResumed,
    /// The ramp reached the controller's own target; cap released.
    Recovered,
}

/// Counters for analysis.
#[derive(Clone, Copy, Debug, Default)]
pub struct WatchdogStats {
    /// Starvation episodes declared.
    pub activations: u64,
    /// Ramps that completed (cap released).
    pub recoveries: u64,
    /// Cumulative time spent starved.
    pub starved_time: SimDuration,
    /// Duration of the last completed ramp: first feedback after the
    /// outage → cap release. The "time to recover" of the campaign tables.
    pub last_ramp: Option<SimDuration>,
    /// Longest inter-feedback gap observed.
    pub max_feedback_gap: SimDuration,
}

/// The starvation state machine. Embed one per controller, call
/// [`on_tick`](FeedbackWatchdog::on_tick) from the driver loop and
/// [`on_feedback`](FeedbackWatchdog::on_feedback) whenever a feedback
/// packet is processed, and apply [`cap_bps`](FeedbackWatchdog::cap_bps)
/// as an upper bound on the published target rate.
#[derive(Debug)]
pub struct FeedbackWatchdog {
    config: WatchdogConfig,
    state: WatchdogState,
    last_feedback: Option<SimTime>,
    starved_since: Option<SimTime>,
    ramp_since: Option<SimTime>,
    /// Decaying/ramping rate cap while not Armed.
    cap_bps: Option<f64>,
    /// Next instant a back-off step is due.
    next_backoff: SimTime,
    stats: WatchdogStats,
}

impl FeedbackWatchdog {
    /// Create a watchdog (initially [`WatchdogState::Armed`]).
    pub fn new(config: WatchdogConfig) -> Self {
        FeedbackWatchdog {
            config,
            state: WatchdogState::Armed,
            last_feedback: None,
            starved_since: None,
            ramp_since: None,
            cap_bps: None,
            next_backoff: SimTime::ZERO,
            stats: WatchdogStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> WatchdogConfig {
        self.config
    }

    /// Current state.
    pub fn state(&self) -> WatchdogState {
        self.state
    }

    /// Counters.
    pub fn stats(&self) -> WatchdogStats {
        self.stats
    }

    /// The rate cap currently in force, if any.
    pub fn cap_bps(&self) -> Option<f64> {
        self.cap_bps
    }

    /// Apply the cap to the controller's own target.
    pub fn apply(&self, target_bps: f64) -> f64 {
        match self.cap_bps {
            Some(cap) => target_bps.min(cap),
            None => target_bps,
        }
    }

    /// Advance the timers. `target_bps` is the controller's *own* (uncapped)
    /// target: it seeds the decay on starvation and bounds the ramp.
    pub fn on_tick(&mut self, now: SimTime, target_bps: f64) -> Option<WatchdogEvent> {
        if !self.config.enabled {
            return None;
        }
        let Some(last) = self.last_feedback else {
            return None; // startup: nothing to starve from yet
        };
        let gap = now.saturating_since(last);
        self.stats.max_feedback_gap = self.stats.max_feedback_gap.max(gap);
        match self.state {
            WatchdogState::Armed | WatchdogState::Recovering => {
                if gap > self.config.timeout {
                    // A fresh starvation episode (Recovering → Starved means
                    // the feedback path died again mid-ramp).
                    self.state = WatchdogState::Starved;
                    self.starved_since = Some(now);
                    self.ramp_since = None;
                    self.stats.activations += 1;
                    let seed = self.apply(target_bps).max(self.config.floor_bps);
                    self.cap_bps = Some(seed);
                    self.next_backoff = now + self.config.backoff_interval;
                    return Some(WatchdogEvent::Starved);
                }
                None
            }
            WatchdogState::Starved => {
                while now >= self.next_backoff {
                    self.next_backoff += self.config.backoff_interval;
                    let cap = self.cap_bps.unwrap_or(self.config.floor_bps);
                    self.cap_bps =
                        Some((cap * self.config.backoff_factor).max(self.config.floor_bps));
                }
                None
            }
        }
    }

    /// The next instant at which [`on_tick`](Self::on_tick) can do anything
    /// a later call would not reproduce: the starvation edge while
    /// armed/recovering, or the next back-off step while starved. `None`
    /// when disabled or before the first feedback (`on_tick` is a no-op at
    /// any instant then). The returned instant may be conservative (at or
    /// before the true edge); calling `on_tick` early is harmless because
    /// the state machine only acts once `now` actually crosses the edge.
    pub fn next_wake(&self) -> Option<SimTime> {
        if !self.config.enabled {
            return None;
        }
        let last = self.last_feedback?;
        match self.state {
            WatchdogState::Armed | WatchdogState::Recovering => Some(last + self.config.timeout),
            WatchdogState::Starved => Some(self.next_backoff),
        }
    }

    /// Register a processed feedback packet. `target_bps` is the
    /// controller's own (uncapped) target; the ramp releases once the cap
    /// clears it.
    pub fn on_feedback(&mut self, now: SimTime, target_bps: f64) -> Option<WatchdogEvent> {
        self.last_feedback = Some(now);
        if !self.config.enabled {
            return None;
        }
        match self.state {
            WatchdogState::Armed => None,
            WatchdogState::Starved => {
                self.state = WatchdogState::Recovering;
                if let Some(since) = self.starved_since.take() {
                    self.stats.starved_time += now.saturating_since(since);
                }
                self.ramp_since = Some(now);
                Some(WatchdogEvent::FeedbackResumed)
            }
            WatchdogState::Recovering => {
                let cap = self.cap_bps.unwrap_or(self.config.floor_bps) * self.config.ramp_factor;
                if cap >= target_bps {
                    self.state = WatchdogState::Armed;
                    self.cap_bps = None;
                    self.stats.recoveries += 1;
                    self.stats.last_ramp = self.ramp_since.take().map(|s| now.saturating_since(s));
                    Some(WatchdogEvent::Recovered)
                } else {
                    self.cap_bps = Some(cap);
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WatchdogConfig {
        WatchdogConfig::default()
    }

    fn feed_until(wd: &mut FeedbackWatchdog, from_ms: u64, to_ms: u64, target: f64) {
        let mut t = from_ms;
        while t < to_ms {
            wd.on_feedback(SimTime::from_millis(t), target);
            t += 50;
        }
    }

    #[test]
    fn no_feedback_at_startup_never_starves() {
        let mut wd = FeedbackWatchdog::new(cfg());
        for ms in 0..5_000 {
            assert_eq!(wd.on_tick(SimTime::from_millis(ms), 10e6), None);
        }
        assert_eq!(wd.state(), WatchdogState::Armed);
        assert_eq!(wd.stats().activations, 0);
    }

    #[test]
    fn starves_after_timeout_and_decays_to_floor() {
        let mut wd = FeedbackWatchdog::new(cfg());
        feed_until(&mut wd, 0, 1_000, 10e6);
        // Feedback stops at t = 950 ms; timeout (500 ms) expires at 1 450.
        let mut entered = None;
        for ms in 1_000..10_000 {
            if wd.on_tick(SimTime::from_millis(ms), 10e6) == Some(WatchdogEvent::Starved) {
                entered = Some(ms);
            }
        }
        let entered = entered.expect("never starved");
        assert!(
            (1_440..=1_460).contains(&entered),
            "starved at {entered} ms"
        );
        assert_eq!(wd.state(), WatchdogState::Starved);
        // 8.5 s of decay at 0.7 per 200 ms from 10 Mbps: floor reached.
        assert_eq!(wd.cap_bps(), Some(cfg().floor_bps));
        assert_eq!(wd.apply(10e6), cfg().floor_bps);
        assert_eq!(wd.stats().activations, 1);
    }

    #[test]
    fn ramp_back_is_metered_and_releases() {
        let mut wd = FeedbackWatchdog::new(cfg());
        feed_until(&mut wd, 0, 1_000, 10e6);
        for ms in 1_000..6_000 {
            wd.on_tick(SimTime::from_millis(ms), 10e6);
        }
        // Feedback resumes at t = 6 s, every 50 ms.
        let mut resumed = false;
        let mut recovered_at = None;
        let mut caps = Vec::new();
        for i in 0..40u64 {
            let t = SimTime::from_millis(6_000 + i * 50);
            match wd.on_feedback(t, 10e6) {
                Some(WatchdogEvent::FeedbackResumed) => resumed = true,
                Some(WatchdogEvent::Recovered) => {
                    recovered_at = Some(t);
                    break;
                }
                _ => {}
            }
            caps.extend(wd.cap_bps());
        }
        assert!(resumed);
        let recovered_at = recovered_at.expect("ramp never released");
        // 300 kbps → 10 Mbps at 1.3× per 50 ms report ≈ 14 reports ≈ 700 ms.
        let ramp = recovered_at.saturating_since(SimTime::from_millis(6_000));
        assert!(
            ramp >= SimDuration::from_millis(300) && ramp <= SimDuration::from_millis(1_500),
            "ramp took {} ms",
            ramp.as_millis()
        );
        assert!(caps.windows(2).all(|w| w[0] < w[1]), "cap not monotone");
        assert_eq!(wd.cap_bps(), None);
        assert_eq!(wd.state(), WatchdogState::Armed);
        let s = wd.stats();
        assert_eq!(s.recoveries, 1);
        assert_eq!(s.last_ramp, Some(ramp));
        assert!(s.starved_time >= SimDuration::from_secs(4));
    }

    #[test]
    fn disabled_watchdog_never_caps() {
        let mut wd = FeedbackWatchdog::new(WatchdogConfig {
            enabled: false,
            ..cfg()
        });
        feed_until(&mut wd, 0, 1_000, 10e6);
        for ms in 1_000..20_000 {
            assert_eq!(wd.on_tick(SimTime::from_millis(ms), 10e6), None);
        }
        assert_eq!(wd.cap_bps(), None);
        assert_eq!(wd.apply(10e6), 10e6);
        assert_eq!(wd.stats().activations, 0);
    }

    #[test]
    fn restarving_mid_ramp_counts_a_second_activation() {
        let mut wd = FeedbackWatchdog::new(cfg());
        feed_until(&mut wd, 0, 1_000, 10e6);
        for ms in 1_000..4_000 {
            wd.on_tick(SimTime::from_millis(ms), 10e6);
        }
        // One feedback packet, then darkness again.
        wd.on_feedback(SimTime::from_millis(4_000), 10e6);
        assert_eq!(wd.state(), WatchdogState::Recovering);
        let mut events = Vec::new();
        for ms in 4_001..6_000 {
            events.extend(wd.on_tick(SimTime::from_millis(ms), 10e6));
        }
        assert_eq!(events, vec![WatchdogEvent::Starved]);
        assert_eq!(wd.stats().activations, 2);
        // The second seed is the *capped* rate — no rate jump from a
        // half-finished ramp.
        assert!(wd.cap_bps().unwrap() < 1e6);
    }
}
