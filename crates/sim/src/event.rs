//! Deterministic timed event queue.
//!
//! A thin wrapper around [`std::collections::BinaryHeap`] that orders events
//! by their firing time and breaks ties by insertion order (FIFO). The FIFO
//! tie-break is what makes whole-simulation runs reproducible: two events
//! scheduled for the same instant always pop in the order they were pushed,
//! independent of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, within one
        // instant, the first-scheduled) entry is "greatest".
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of `(SimTime, E)` events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next", &self.peek_time())
            .finish()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Remove and return the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Remove and return the earliest event only if it fires at or before
    /// `now`. This is the main driver primitive: components call it in a
    /// loop to drain everything due at the current instant.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= now {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "early");
        q.schedule(SimTime::from_millis(20), "late");
        assert_eq!(q.pop_due(SimTime::from_millis(5)), None);
        assert_eq!(
            q.pop_due(SimTime::from_millis(10)),
            Some((SimTime::from_millis(10), "early"))
        );
        assert_eq!(q.pop_due(SimTime::from_millis(15)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(
            q.pop_due(SimTime::from_millis(25)),
            Some((SimTime::from_millis(20), "late"))
        );
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(2), ());
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 1);
        q.schedule(SimTime::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    proptest! {
        /// Popping must always yield a non-decreasing time sequence, and
        /// within equal times the original insertion order.
        #[test]
        fn prop_pop_order_is_total(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_micros(t), i);
            }
            let mut last_time = SimTime::ZERO;
            let mut last_seq_at_time: Option<usize> = None;
            let mut popped = 0usize;
            while let Some((t, idx)) = q.pop() {
                prop_assert!(t >= last_time);
                // last_seq_at_time is reassigned below every iteration, so
                // it only ever holds the index popped at the previous step —
                // exactly what the equal-timestamp FIFO check needs.
                if t == last_time {
                    if let Some(prev) = last_seq_at_time {
                        prop_assert!(idx > prev, "FIFO violated at equal timestamps");
                    }
                }
                last_time = t;
                last_seq_at_time = Some(idx);
                popped += 1;
            }
            prop_assert_eq!(popped, times.len());
        }
    }
}
