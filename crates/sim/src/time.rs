//! Virtual time types.
//!
//! [`SimTime`] is an absolute instant measured in microseconds since the
//! start of the simulation; [`SimDuration`] is a span between two instants.
//! Microsecond resolution comfortably covers everything the pipeline needs
//! (packet serialisation times at 50 Mbps are ~240 µs for a 1500 B packet)
//! while `u64` gives ~584 000 years of range, so overflow is not a practical
//! concern and arithmetic is unchecked-by-construction via saturation.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in virtual time (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The farthest representable instant; used as "never" for wake-ups.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Construct from fractional seconds since the epoch.
    ///
    /// Negative values clamp to the epoch.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e6).round() as u64)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, or zero if `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked distance to `other` (`None` if `other` is later).
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable span; used as "infinite" timeouts.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional seconds. Negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// Whole microseconds in the span.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds in the span (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds in the span.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional milliseconds in the span.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The shorter of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The longer of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Multiply by a non-negative float, rounding to the nearest microsecond.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration((self.0 as f64 * k.max(0.0)).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`; saturates in
    /// release builds. Use [`SimTime::checked_since`] when ordering is
    /// uncertain.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(
            self.0 >= rhs.0,
            "SimTime subtraction underflow: {self:?} - {rhs:?}"
        );
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(
            self.0 >= rhs.0,
            "SimDuration subtraction underflow: {self:?} - {rhs:?}"
        );
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == SimTime::MAX {
            write!(f, "t=never")
        } else {
            write!(f, "t={:.6}s", self.as_secs_f64())
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(3).as_micros(), 3);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimTime::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimTime::from_secs_f64(-4.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_millis(), 250);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(500);
        assert_eq!(t + d, SimTime::from_micros(10_500_000));
        assert_eq!((t + d) - t, d);
        assert_eq!(t - d, SimTime::from_micros(9_500_000));
    }

    #[test]
    fn saturating_since_handles_future_times() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
        assert_eq!(early.checked_since(late), None);
        assert_eq!(late.checked_since(early), Some(SimDuration::from_secs(1)));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d * 3, SimDuration::from_millis(300));
        assert_eq!(d / 4, SimDuration::from_millis(25));
        assert_eq!(d.mul_f64(2.5), SimDuration::from_millis(250));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let x = SimDuration::from_secs(1);
        let y = SimDuration::from_secs(2);
        assert_eq!(x.min(y), x);
        assert_eq!(x.max(y), y);
    }

    #[test]
    fn never_is_sticky_under_addition() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(7)), "7us");
        assert_eq!(format!("{}", SimDuration::from_millis(7)), "7.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(7)), "7.000s");
        assert_eq!(format!("{}", SimTime::MAX), "t=never");
    }
}
