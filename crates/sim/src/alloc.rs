//! Counting global allocator — shared instrumentation for perf gates.
//!
//! One forwarding allocator serves every consumer that wants allocation
//! telemetry: `rpavd` reports live/peak heap bytes on `GET /metrics`,
//! `perf_matrix` gates allocation *events* per packet, and the
//! steady-state tests assert that hot loops stop allocating once warm.
//! A binary opts in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: rpav_sim::alloc::CountingAlloc = rpav_sim::alloc::CountingAlloc;
//! ```
//!
//! Binaries that don't register it simply read zeros — the counters are
//! process-wide statics, not tied to an instance.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static EVENTS: AtomicU64 = AtomicU64::new(0);

/// Forwarding allocator that tracks live bytes, peak bytes, and the total
/// number of allocation events (alloc + alloc_zeroed + realloc).
pub struct CountingAlloc;

fn on_alloc(size: usize) {
    EVENTS.fetch_add(1, Ordering::Relaxed);
    let now = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(now, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
            on_alloc(new_size);
        }
        p
    }
}

/// Live heap bytes (0 unless [`CountingAlloc`] is the global allocator).
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// High-water heap bytes since process start.
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Total allocation events (alloc, alloc_zeroed, realloc) since process
/// start. The perf harness diffs this around a sweep to compute
/// allocs/packet.
pub fn events() -> u64 {
    EVENTS.load(Ordering::Relaxed)
}
