//! Deterministic discrete-event simulation kernel.
//!
//! This crate provides the foundation every other `rpav` crate builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — virtual time with microsecond
//!   resolution. Library code never reads the wall clock; all timing flows
//!   from the simulation loop.
//! * [`EventQueue`] — a deterministic priority queue of timed events with
//!   FIFO tie-breaking for events scheduled at the same instant.
//! * [`RngSet`] / [`SimRng`] — reproducible random-number streams derived
//!   from a single master seed. Each subsystem draws from its own named
//!   stream so that adding a component (or reordering draws inside one)
//!   never perturbs the randomness observed by another.
//! * [`FeedbackWatchdog`] — the feedback-starvation state machine shared by
//!   the congestion controllers: declares starvation when the feedback path
//!   goes dark, decays a rate cap toward a floor, and meters the ramp back
//!   once feedback resumes.
//! * [`arena`] — the per-thread slab of recycled byte-buffer storage that
//!   the vendored `bytes` shim (and with it every wire serializer) draws
//!   from, driving steady-state allocations on the packet paths to ~0.
//! * [`alloc`] — the shared counting global allocator behind the daemon's
//!   memory telemetry and the perf harness's allocs/packet gate.
//!
//! The design follows the event-driven, poll-based idiom of `smoltcp`:
//! components are plain structs advanced by explicit calls carrying the
//! current [`SimTime`]; there is no global state and no async executor, so
//! every simulation run is bit-reproducible from its seed.
//!
//! # Example
//!
//! ```
//! use rpav_sim::{EventQueue, SimDuration, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::from_millis(10), "b");
//! q.schedule(SimTime::from_millis(5), "a");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (SimTime::from_millis(5), "a"));
//! ```

pub mod alloc;
pub mod arena;
pub mod event;
pub mod rng;
pub mod time;
pub mod watchdog;

pub use event::EventQueue;
pub use rng::{RngSet, SimRng};
pub use time::{SimDuration, SimTime};
pub use watchdog::{FeedbackWatchdog, WatchdogConfig, WatchdogEvent, WatchdogState, WatchdogStats};
