//! Reproducible random-number streams.
//!
//! Every run of a simulation is parameterised by a single master seed.
//! Components obtain their own [`SimRng`] via [`RngSet::stream`], keyed by a
//! stable name such as `"lte.shadowing"` or `"video.encoder"`. Each name
//! maps to an independent PCG stream, so:
//!
//! * adding, removing, or reordering components does not change the draws
//!   any other component sees;
//! * the same `(master_seed, name)` pair always produces the same sequence,
//!   across platforms and across toolchain upgrades (the generator is
//!   implemented here, in full, with no external dependency).
//!
//! The generator is a PCG-64-MCG (128-bit multiplicative congruential state,
//! XSL-RR output) — the same construction as `rand_pcg::Pcg64Mcg`.

/// PCG-64-MCG multiplier (O'Neill, PCG paper §4.1).
const PCG_MUL: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcf_4e35;

/// A deterministic random stream (PCG-64-MCG).
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u128,
}

impl SimRng {
    /// Seed a stream directly. Prefer [`RngSet::stream`] in simulations so
    /// streams stay decoupled.
    pub fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed into 128 bits of state via two rounds of
        // SplitMix64, then force the state odd (an MCG requires it).
        let hi = splitmix64(seed);
        let lo = splitmix64(seed ^ 0xDEAD_BEEF_CAFE_F00D);
        let state = ((hi as u128) << 64 | lo as u128) | 1;
        SimRng { state }
    }

    /// Next raw 64-bit output (XSL-RR on the 128-bit state).
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(PCG_MUL);
        let rot = (self.state >> 122) as u32;
        let xored = ((self.state >> 64) as u64) ^ (self.state as u64);
        xored.rotate_right(rot)
    }

    /// Uniform value in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[lo, hi)`. `lo` must be `< hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        lo + self.uniform() * (hi - lo)
    }

    /// Uniform integer in `[lo, hi)`. `lo` must be `< hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        // Multiply-shift reduction; bias is < 2⁻⁶⁴ per draw.
        lo + ((self.next_u64() as u128 * (hi - lo) as u128) >> 64) as u64
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Standard-normal draw (Box–Muller, cosine branch).
    pub fn std_normal(&mut self) -> f64 {
        let u1 = self.uniform_range(f64::MIN_POSITIVE, 1.0);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    ///
    /// `sigma` must be finite and non-negative.
    pub fn normal(&mut self, mean: f64, sigma: f64) -> f64 {
        mean + sigma * self.std_normal()
    }

    /// Log-normal draw parameterised by the underlying normal's `mu`/`sigma`.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.std_normal()).exp()
    }

    /// Exponential draw with the given mean (`mean > 0`).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = self.uniform_range(f64::MIN_POSITIVE, 1.0);
        -mean * u.ln()
    }
}

/// A factory of independent named [`SimRng`] streams.
#[derive(Clone, Copy, Debug)]
pub struct RngSet {
    master_seed: u64,
}

impl RngSet {
    /// Create a stream factory from a master seed.
    pub fn new(master_seed: u64) -> Self {
        RngSet { master_seed }
    }

    /// The master seed this set was built from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Derive the stream named `name`. The same `(seed, name)` always yields
    /// an identical stream; distinct names yield independent streams.
    pub fn stream(&self, name: &str) -> SimRng {
        SimRng::seed_from_u64(splitmix64(self.master_seed ^ fnv1a(name)))
    }

    /// Derive a stream for the `index`-th instance of a replicated component
    /// (e.g. one stream per flight run).
    pub fn stream_indexed(&self, name: &str, index: u64) -> SimRng {
        SimRng::seed_from_u64(splitmix64(
            self.master_seed ^ fnv1a(name) ^ splitmix64(index.wrapping_add(0x9E37)),
        ))
    }
}

/// FNV-1a over the UTF-8 bytes of `s`.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// SplitMix64 finaliser — decorrelates structurally similar seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let set = RngSet::new(42);
        let a: Vec<f64> = {
            let mut r = set.stream("x");
            (0..16).map(|_| r.uniform()).collect()
        };
        let b: Vec<f64> = {
            let mut r = set.stream("x");
            (0..16).map(|_| r.uniform()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_names_are_independent() {
        let set = RngSet::new(42);
        let mut a = set.stream("x");
        let mut b = set.stream("y");
        let va: Vec<f64> = (0..16).map(|_| a.uniform()).collect();
        let vb: Vec<f64> = (0..16).map(|_| b.uniform()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn indexed_streams_differ() {
        let set = RngSet::new(7);
        let mut a = set.stream_indexed("flight", 0);
        let mut b = set.stream_indexed("flight", 1);
        assert_ne!(a.uniform(), b.uniform());
    }

    #[test]
    fn different_master_seeds_differ() {
        let mut a = RngSet::new(1).stream("x");
        let mut b = RngSet::new(2).stream("x");
        assert_ne!(a.uniform(), b.uniform());
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut r = RngSet::new(3).stream("u");
        for _ in 0..10_000 {
            let v = r.uniform();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniform_u64_covers_range() {
        let mut r = RngSet::new(5).stream("i");
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.uniform_u64(3, 13);
            assert!((3..13).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all values in range drawn");
    }

    #[test]
    fn chance_extremes() {
        let mut r = RngSet::new(3).stream("c");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut r = RngSet::new(11).stream("n");
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean was {mean}");
        assert!((var - 4.0).abs() < 0.2, "var was {var}");
    }

    #[test]
    fn exponential_mean_is_sane() {
        let mut r = RngSet::new(13).stream("e");
        let n = 50_000;
        let mean = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean was {mean}");
        // All draws are positive.
        let mut r2 = RngSet::new(13).stream("e");
        assert!((0..1000).all(|_| r2.exponential(0.001) > 0.0));
    }

    #[test]
    fn log_normal_is_positive() {
        let mut r = RngSet::new(17).stream("ln");
        assert!((0..1000).all(|_| r.log_normal(0.0, 2.0) > 0.0));
    }
}
