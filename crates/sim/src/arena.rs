//! Slab allocator for hot-path byte buffers.
//!
//! Every packet path in the workspace ultimately builds wire images in
//! heap-backed byte buffers (`bytes::BytesMut` → `bytes::Bytes`). Before
//! this module, each buffer was a fresh `Vec<u8>` plus a fresh `Arc` —
//! two allocator round-trips per serialized packet, report, FEC shard and
//! NDJSON event. The arena turns those into recycling: a per-thread slab
//! of uniquely-owned `Arc<Vec<u8>>` storage blocks that are handed out by
//! [`acquire`], and returned whole (refcount box *and* vector capacity)
//! by [`recycle`] when their last owner drops.
//!
//! # Lifetime rules (see DESIGN.md §15)
//!
//! * A block is recycled only when uniquely owned, so holding a `Bytes`
//!   clone across ticks (jitter buffers, RTX history, reassembly windows)
//!   is always safe: the block simply returns to the slab later.
//! * The slab is thread-local. Blocks may migrate between threads (a
//!   buffer acquired on one thread and dropped on another lands in the
//!   dropping thread's slab); that is correct, merely less warm.
//! * The slab is bounded ([`MAX_POOLED_BUFFERS`] blocks of at most
//!   [`MAX_POOLED_CAPACITY`] bytes), so pathological buffers are given
//!   back to the system allocator instead of pinning memory.
//!
//! Determinism: recycling reuses *capacity*, never contents — every
//! [`acquire`] returns a cleared vector, so simulation results cannot
//! depend on what previously occupied a block. The `perf_equivalence`
//! suite and the engine's jobs=N bit-identity tests hold this to account.

use std::cell::RefCell;
use std::sync::Arc;

/// Maximum number of storage blocks kept per thread.
pub const MAX_POOLED_BUFFERS: usize = 256;

/// Blocks larger than this are never pooled (returned to the system).
pub const MAX_POOLED_CAPACITY: usize = 1 << 20;

thread_local! {
    static POOL: RefCell<Vec<Arc<Vec<u8>>>> = const { RefCell::new(Vec::new()) };
    /// Per-thread shared empty block: a refcount-only placeholder for
    /// "no storage" (e.g. a frozen-out `BytesMut`). Thread-local so the
    /// refcount traffic never bounces between cores.
    static EMPTY: Arc<Vec<u8>> = Arc::new(Vec::new());
}

/// A refcount-only empty storage block. Never recycled (capacity 0) and
/// never uniquely owned (the thread keeps one reference), so it is safe
/// to use as a placeholder anywhere a real block is not needed.
pub fn empty() -> Arc<Vec<u8>> {
    EMPTY.with(Arc::clone)
}

/// Take a cleared, uniquely-owned storage block with at least
/// `min_capacity` bytes of capacity, reusing a pooled block when one is
/// available.
pub fn acquire(min_capacity: usize) -> Arc<Vec<u8>> {
    let mut arc = POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_else(|| Arc::new(Vec::new()));
    let v = Arc::get_mut(&mut arc).expect("pooled blocks are uniquely owned");
    v.clear();
    if v.capacity() < min_capacity {
        v.reserve(min_capacity);
    }
    arc
}

/// Return a storage block to the slab. No-ops (plain drop) when the block
/// is still shared, empty, oversized, or the slab is full.
pub fn recycle(mut arc: Arc<Vec<u8>>) {
    if Arc::get_mut(&mut arc).is_none() {
        return;
    }
    let cap = arc.capacity();
    if cap == 0 || cap > MAX_POOLED_CAPACITY {
        return;
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.len() < MAX_POOLED_BUFFERS {
            p.push(arc);
        }
    });
}

/// Blocks currently pooled on this thread (diagnostics/tests).
pub fn pooled_blocks() -> usize {
    POOL.with(|p| p.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_recycle_round_trip_reuses_capacity() {
        // Drain anything earlier tests pooled so the assertions are ours.
        while POOL.with(|p| p.borrow_mut().pop()).is_some() {}
        let a = acquire(4096);
        assert!(a.capacity() >= 4096);
        assert!(a.is_empty());
        let ptr = a.as_ptr();
        recycle(a);
        assert_eq!(pooled_blocks(), 1);
        let b = acquire(1024);
        assert_eq!(b.as_ptr(), ptr, "pooled block must be reused");
        assert!(b.is_empty(), "reused blocks are cleared");
    }

    #[test]
    fn shared_blocks_are_not_recycled() {
        while POOL.with(|p| p.borrow_mut().pop()).is_some() {}
        let a = acquire(16);
        let b = Arc::clone(&a);
        recycle(a); // still shared via `b`
        assert_eq!(pooled_blocks(), 0);
        drop(b);
    }

    #[test]
    fn oversized_and_empty_blocks_are_dropped() {
        while POOL.with(|p| p.borrow_mut().pop()).is_some() {}
        recycle(Arc::new(Vec::new()));
        recycle(Arc::new(Vec::with_capacity(MAX_POOLED_CAPACITY + 1)));
        assert_eq!(pooled_blocks(), 0);
    }

    #[test]
    fn slab_is_bounded() {
        while POOL.with(|p| p.borrow_mut().pop()).is_some() {}
        for _ in 0..(MAX_POOLED_BUFFERS + 8) {
            recycle(Arc::new(Vec::with_capacity(64)));
        }
        assert_eq!(pooled_blocks(), MAX_POOLED_BUFFERS);
    }

    #[test]
    fn empty_placeholder_is_never_unique() {
        let e = empty();
        assert_eq!(e.capacity(), 0);
        assert!(Arc::strong_count(&e) >= 2);
    }
}
