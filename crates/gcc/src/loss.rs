//! Loss-based controller — the second arm of GCC.
//!
//! From Carlucci et al. §4: every rate-update interval, with smoothed loss
//! fraction `p`:
//!
//! * `p > 10 %` → multiplicative decrease `A ← A·(1 − 0.5 p)`;
//! * `p < 2 %`  → gentle probe `A ← 1.05·A`;
//! * otherwise hold.
//!
//! Over cellular links loss is rare (deep buffers), so in this study the
//! loss arm mostly rides above the delay arm — exactly why the paper's
//! bitrate drops are delay-driven.

use rpav_sim::{SimDuration, SimTime};

/// Minimum spacing between rate updates.
pub const UPDATE_INTERVAL: SimDuration = SimDuration::from_millis(1_000);
/// Upper loss bound for probing.
pub const LOW_LOSS: f64 = 0.02;
/// Lower loss bound for decreasing.
pub const HIGH_LOSS: f64 = 0.10;

/// The controller.
#[derive(Debug)]
pub struct LossController {
    rate_bps: f64,
    min_bps: f64,
    max_bps: f64,
    /// Exponentially smoothed loss fraction.
    smoothed_loss: f64,
    last_update: Option<SimTime>,
}

impl LossController {
    /// Create a controller; starts above the delay arm so it only binds
    /// under real loss.
    pub fn new(start_bps: f64, min_bps: f64, max_bps: f64) -> Self {
        LossController {
            rate_bps: (start_bps * 1.5).clamp(min_bps, max_bps),
            min_bps,
            max_bps,
            smoothed_loss: 0.0,
            last_update: None,
        }
    }

    /// Current loss-arm rate.
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    /// Smoothed loss fraction.
    pub fn loss_fraction(&self) -> f64 {
        self.smoothed_loss
    }

    /// Report feedback-window loss statistics.
    pub fn on_feedback(&mut self, now: SimTime, lost: usize, total: usize) {
        if total > 0 {
            let p = lost as f64 / total as f64;
            self.smoothed_loss = 0.7 * self.smoothed_loss + 0.3 * p;
        }
        let due = match self.last_update {
            None => true,
            Some(last) => now.saturating_since(last) >= UPDATE_INTERVAL,
        };
        if !due {
            return;
        }
        self.last_update = Some(now);
        let p = self.smoothed_loss;
        if p > HIGH_LOSS {
            self.rate_bps *= 1.0 - 0.5 * p;
        } else if p < LOW_LOSS {
            self.rate_bps *= 1.05;
        }
        self.rate_bps = self.rate_bps.clamp(self.min_bps, self.max_bps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn probes_up_when_loss_is_low() {
        let mut c = LossController::new(10e6, 1e6, 50e6);
        let start = c.rate_bps();
        for i in 0..10 {
            c.on_feedback(t(i), 0, 100);
        }
        assert!(c.rate_bps() > start);
    }

    #[test]
    fn decreases_under_heavy_loss() {
        let mut c = LossController::new(10e6, 1e6, 50e6);
        let start = c.rate_bps();
        for i in 0..10 {
            c.on_feedback(t(i), 30, 100);
        }
        assert!(c.rate_bps() < start * 0.6);
        assert!(c.loss_fraction() > 0.25);
    }

    #[test]
    fn holds_in_the_dead_band() {
        let mut c = LossController::new(10e6, 1e6, 50e6);
        // Prime smoothed loss into (2 %, 10 %).
        for i in 0..20 {
            c.on_feedback(t(i), 5, 100);
        }
        let rate = c.rate_bps();
        for i in 20..30 {
            c.on_feedback(t(i), 5, 100);
        }
        assert_eq!(c.rate_bps(), rate);
    }

    #[test]
    fn rate_updates_throttled_to_interval() {
        let mut c = LossController::new(10e6, 1e6, 50e6);
        let start = c.rate_bps();
        // Many feedbacks within one interval: at most one probe applied
        // (the first one, timer unset).
        for i in 0..50 {
            c.on_feedback(SimTime::from_millis(i * 10), 0, 100);
        }
        assert!(c.rate_bps() <= start * 1.05 + 1.0);
    }

    #[test]
    fn respects_bounds() {
        let mut c = LossController::new(10e6, 5e6, 12e6);
        for i in 0..100 {
            c.on_feedback(t(i), 90, 100);
        }
        assert!(c.rate_bps() >= 5e6);
        let mut c = LossController::new(10e6, 5e6, 12e6);
        for i in 0..100 {
            c.on_feedback(t(i), 0, 100);
        }
        assert!(c.rate_bps() <= 12e6);
    }
}
