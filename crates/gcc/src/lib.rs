//! Google Congestion Control (GCC) — send-side bandwidth estimation.
//!
//! Implements the algorithm of Carlucci et al., *Analysis and Design of the
//! Google Congestion Control for Web Real-Time Communication* (MMSys '16),
//! in its modern send-side form: the sender timestamps every outgoing
//! packet, the receiver echoes per-packet arrival times through
//! transport-wide RTCP feedback (`rpav-rtp::twcc`), and the sender runs
//!
//! ```text
//! feedback ─► inter-arrival grouping ─► trendline estimator (delay
//! gradient) ─► adaptive-threshold over-use detector ─► AIMD rate
//! controller ─┐
//! feedback ─► loss statistics ─► loss-based controller ─┘
//!                                        target = min(delay, loss)
//! ```
//!
//! The paper (§3.2) runs exactly this stack over LTE and observes its
//! conservative ramp-up (≈12 s to 25 Mbps, §4.2.1) and its strong latency
//! control at high bitrates (§4.2.2) — both properties reproduced by this
//! implementation and exercised in the `fig06`/`fig07` experiments.

pub mod aimd;
pub mod arrival;
pub mod bwe;
pub mod detector;
pub mod loss;
pub mod trendline;

pub use aimd::{AimdRateControl, RateControlState};
pub use bwe::{GccConfig, SendSideBwe};
pub use detector::{BandwidthUsage, OveruseDetector};
pub use trendline::TrendlineEstimator;
