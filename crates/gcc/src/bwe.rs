//! The assembled send-side bandwidth estimator.

use std::collections::{BTreeMap, VecDeque};

use rpav_rtp::packet::unwrap_seq;
use rpav_rtp::twcc::TwccFeedback;
use rpav_sim::{SimDuration, SimTime};

use crate::aimd::AimdRateControl;
use crate::arrival::{InterArrival, PacketTiming};
use crate::detector::OveruseDetector;
use crate::loss::LossController;
use crate::trendline::TrendlineEstimator;

/// Configuration of the estimator.
#[derive(Clone, Copy, Debug)]
pub struct GccConfig {
    /// Initial target (the paper's pipeline starts near the bottom of the
    /// 2–25 Mbps encoder range).
    pub start_bitrate_bps: f64,
    /// Floor.
    pub min_bitrate_bps: f64,
    /// Ceiling (25 Mbps — the top encoder operating point, §3.2).
    pub max_bitrate_bps: f64,
}

impl Default for GccConfig {
    fn default() -> Self {
        GccConfig {
            start_bitrate_bps: 2e6,
            min_bitrate_bps: 300e3,
            max_bitrate_bps: 25e6,
        }
    }
}

/// Sliding-window throughput meter over acked packets.
#[derive(Debug, Default)]
struct AckedBitrate {
    samples: VecDeque<(SimTime, usize)>,
}

/// Acked-bitrate window length.
const ACKED_WINDOW: SimDuration = SimDuration::from_millis(800);

impl AckedBitrate {
    fn on_acked(&mut self, arrival: SimTime, size: usize) {
        self.samples.push_back((arrival, size));
        let cutoff = arrival - ACKED_WINDOW;
        while let Some((t, _)) = self.samples.front() {
            if *t < cutoff {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    fn bitrate_bps(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let first = self.samples.front().unwrap().0;
        let last = self.samples.back().unwrap().0;
        let span = last.saturating_since(first).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        let bits: usize = self.samples.iter().map(|(_, s)| s * 8).sum();
        bits as f64 / span
    }

    fn avg_packet_bits(&self) -> f64 {
        if self.samples.is_empty() {
            return 1_200.0 * 8.0;
        }
        let bits: usize = self.samples.iter().map(|(_, s)| s * 8).sum();
        bits as f64 / self.samples.len() as f64
    }
}

/// Send-side GCC bandwidth estimator.
#[derive(Debug)]
pub struct SendSideBwe {
    config: GccConfig,
    /// Outstanding sent packets keyed by unwrapped transport sequence.
    sent: BTreeMap<u64, (SimTime, usize)>,
    last_sent_unwrapped: Option<u64>,
    last_fb_unwrapped: Option<u64>,
    inter_arrival: InterArrival,
    trendline: TrendlineEstimator,
    detector: OveruseDetector,
    aimd: AimdRateControl,
    loss: LossController,
    acked: AckedBitrate,
}

impl SendSideBwe {
    /// Create an estimator.
    pub fn new(config: GccConfig) -> Self {
        SendSideBwe {
            config,
            sent: BTreeMap::new(),
            last_sent_unwrapped: None,
            last_fb_unwrapped: None,
            inter_arrival: InterArrival::new(),
            trendline: TrendlineEstimator::new(),
            detector: OveruseDetector::new(),
            aimd: AimdRateControl::new(
                config.start_bitrate_bps,
                config.min_bitrate_bps,
                config.max_bitrate_bps,
            ),
            loss: LossController::new(
                config.start_bitrate_bps,
                config.min_bitrate_bps,
                config.max_bitrate_bps,
            ),
            acked: AckedBitrate::default(),
        }
    }

    /// Record a media packet put on the wire.
    pub fn on_packet_sent(&mut self, transport_seq: u16, now: SimTime, size: usize) {
        let unwrapped = match self.last_sent_unwrapped {
            None => transport_seq as u64,
            Some(prev) => unwrap_seq(prev, transport_seq),
        };
        self.last_sent_unwrapped =
            Some(self.last_sent_unwrapped.unwrap_or(unwrapped).max(unwrapped));
        self.sent.insert(unwrapped, (now, size));
        // GC: drop history older than 10 s (feedback will never come).
        let cutoff = now - SimDuration::from_secs(10);
        while let Some((&k, &(t, _))) = self.sent.iter().next() {
            if t < cutoff {
                self.sent.remove(&k);
            } else {
                break;
            }
        }
    }

    /// Process one transport-wide feedback packet.
    pub fn on_feedback(&mut self, feedback: &TwccFeedback, now: SimTime) {
        let base_unwrapped = match self.last_fb_unwrapped {
            None => feedback.base_seq as u64,
            Some(prev) => unwrap_seq(prev, feedback.base_seq),
        };
        self.last_fb_unwrapped = Some(
            self.last_fb_unwrapped
                .unwrap_or(base_unwrapped)
                .max(base_unwrapped + feedback.arrivals.len() as u64),
        );

        let mut lost = 0usize;
        let mut total = 0usize;
        let mut last_state = self.detector.state();
        for (i, arrival) in feedback.arrivals.iter().enumerate() {
            let seq = base_unwrapped + i as u64;
            let Some(&(send_time, size)) = self.sent.get(&seq) else {
                continue;
            };
            total += 1;
            match feedback.arrival_time(i) {
                None => {
                    let _ = arrival;
                    lost += 1;
                }
                Some(arrival_time) => {
                    self.acked.on_acked(arrival_time, size);
                    if let Some(delta) = self.inter_arrival.on_packet(PacketTiming {
                        send_time,
                        arrival_time,
                        size,
                    }) {
                        let trend = self.trendline.update(&delta);
                        last_state = self.detector.update(delta.arrival_time, trend);
                    }
                }
            }
            self.sent.remove(&seq);
        }

        let acked_bps = self.acked.bitrate_bps();
        self.aimd
            .update(now, last_state, acked_bps, self.acked.avg_packet_bits());
        self.loss.on_feedback(now, lost, total);
    }

    /// The current combined target bitrate: the binding arm wins.
    pub fn target_bitrate_bps(&self) -> f64 {
        self.aimd
            .target_bps()
            .min(self.loss.rate_bps())
            .clamp(self.config.min_bitrate_bps, self.config.max_bitrate_bps)
    }

    /// Delay-arm target (diagnostics).
    pub fn delay_based_bps(&self) -> f64 {
        self.aimd.target_bps()
    }

    /// Loss-arm target (diagnostics).
    pub fn loss_based_bps(&self) -> f64 {
        self.loss.rate_bps()
    }

    /// Measured delivery rate over the acked window.
    pub fn acked_bitrate_bps(&self) -> f64 {
        self.acked.bitrate_bps()
    }

    /// Smoothed loss fraction seen in feedback.
    pub fn loss_fraction(&self) -> f64 {
        self.loss.loss_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpav_rtp::twcc::TwccRecorder;

    /// Drive the estimator through a perfect link: every packet arrives
    /// `base_delay` after sending, feedback every 50 ms.
    fn run_clean_link(bwe: &mut SendSideBwe, seconds: u64, rate_limit_bps: f64) -> Vec<f64> {
        let mut rec = TwccRecorder::new();
        let mut targets = Vec::new();
        let mut seq: u16 = 0;
        let mut queue_us: i64 = 0; // bottleneck queue in µs of serialisation
        let base_delay = SimDuration::from_millis(40);
        let tick = SimDuration::from_millis(5);
        let mut t = SimTime::from_secs(1);
        let end = t + SimDuration::from_secs(seconds);
        let mut last_fb = t;
        let mut last_drain = t;
        while t < end {
            // Send at the current target, 1200 B packets.
            let target = bwe.target_bitrate_bps();
            let bytes_per_tick = target * tick.as_secs_f64() / 8.0;
            let pkts = (bytes_per_tick / 1_200.0).round() as usize;
            // Bottleneck: queue drains at rate_limit.
            let drain_us = t.saturating_since(last_drain).as_micros() as i64;
            last_drain = t;
            queue_us -= drain_us;
            queue_us = queue_us.max(0);
            for _ in 0..pkts {
                let ser_us = (1_200.0 * 8.0 / rate_limit_bps * 1e6) as i64;
                queue_us += ser_us;
                let arrival = t + base_delay + SimDuration::from_micros(queue_us as u64);
                bwe.on_packet_sent(seq, t, 1_200);
                rec.on_packet(seq, arrival);
                seq = seq.wrapping_add(1);
            }
            if t.saturating_since(last_fb) >= SimDuration::from_millis(50) {
                last_fb = t;
                if let Some(fb) = rec.build_feedback() {
                    bwe.on_feedback(&fb, t);
                }
            }
            targets.push(bwe.target_bitrate_bps());
            t = t + tick;
        }
        targets
    }

    #[test]
    fn ramps_up_on_uncongested_link() {
        let mut bwe = SendSideBwe::new(GccConfig::default());
        let targets = run_clean_link(&mut bwe, 20, 100e6);
        let last = *targets.last().unwrap();
        assert!(
            last > 6e6,
            "after 20 s on a clean link the target should grow well past start, got {last:.2e}"
        );
        // Monotone-ish growth: no collapse.
        assert!(targets.iter().all(|t| *t >= 1e6));
    }

    #[test]
    fn converges_near_bottleneck_without_runaway() {
        let mut bwe = SendSideBwe::new(GccConfig::default());
        let targets = run_clean_link(&mut bwe, 40, 8e6);
        // Average of the last 10 s should sit in the bottleneck's
        // neighbourhood — neither runaway (queuing) nor collapse.
        let tail = &targets[targets.len() - 2_000..];
        let avg = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(
            (4e6..11e6).contains(&avg),
            "tail average {avg:.2e} not near the 8 Mbps bottleneck"
        );
    }

    #[test]
    fn heavy_loss_engages_loss_arm() {
        let mut bwe = SendSideBwe::new(GccConfig::default());
        let mut rec = TwccRecorder::new();
        let mut t = SimTime::from_secs(1);
        let mut seq: u16 = 0;
        for round in 0..100 {
            for i in 0..20 {
                bwe.on_packet_sent(seq, t, 1_200);
                // 30 % loss.
                if (seq as usize + i) % 10 >= 3 {
                    rec.on_packet(seq, t + SimDuration::from_millis(40));
                }
                seq = seq.wrapping_add(1);
                t = t + SimDuration::from_millis(2);
            }
            if let Some(fb) = rec.build_feedback() {
                bwe.on_feedback(&fb, t);
            }
            let _ = round;
        }
        assert!(bwe.loss_fraction() > 0.15, "loss {}", bwe.loss_fraction());
        assert!(
            bwe.loss_based_bps() < 3e6,
            "loss arm should bind: {:.2e}",
            bwe.loss_based_bps()
        );
        assert!(bwe.target_bitrate_bps() <= bwe.loss_based_bps());
    }

    #[test]
    fn acked_bitrate_tracks_delivery() {
        let mut acked = AckedBitrate::default();
        // 1200 B every 1 ms = 9.6 Mbps.
        for i in 0..500 {
            acked.on_acked(SimTime::from_millis(i), 1_200);
        }
        let est = acked.bitrate_bps();
        assert!((est - 9.6e6).abs() < 0.5e6, "estimate {est:.2e}");
        assert_eq!(acked.avg_packet_bits(), 9_600.0);
    }

    #[test]
    fn target_stays_within_bounds() {
        let cfg = GccConfig {
            start_bitrate_bps: 2e6,
            min_bitrate_bps: 1e6,
            max_bitrate_bps: 10e6,
        };
        let mut bwe = SendSideBwe::new(cfg);
        let targets = run_clean_link(&mut bwe, 60, 100e6);
        assert!(targets.iter().all(|t| (1e6..=10e6).contains(t)));
        // Should saturate at the ceiling on a clean 100 Mbps link.
        assert!(*targets.last().unwrap() >= 9.9e6);
    }
}
