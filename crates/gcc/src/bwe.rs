//! The assembled send-side bandwidth estimator.

use std::collections::VecDeque;

use rpav_rtp::packet::unwrap_seq;
use rpav_rtp::twcc::TwccFeedback;
use rpav_sim::{
    FeedbackWatchdog, SimDuration, SimTime, WatchdogConfig, WatchdogState, WatchdogStats,
};

use crate::aimd::AimdRateControl;
use crate::arrival::{InterArrival, PacketTiming};
use crate::detector::OveruseDetector;
use crate::loss::LossController;
use crate::trendline::TrendlineEstimator;

/// Configuration of the estimator.
#[derive(Clone, Copy, Debug)]
pub struct GccConfig {
    /// Initial target (the paper's pipeline starts near the bottom of the
    /// 2–25 Mbps encoder range).
    pub start_bitrate_bps: f64,
    /// Floor.
    pub min_bitrate_bps: f64,
    /// Ceiling (25 Mbps — the top encoder operating point, §3.2).
    pub max_bitrate_bps: f64,
    /// Feedback-starvation watchdog. Disabled, a TWCC blackout leaves the
    /// estimator frozen at its last target indefinitely (the stock
    /// behaviour).
    pub watchdog: WatchdogConfig,
}

impl Default for GccConfig {
    fn default() -> Self {
        GccConfig {
            start_bitrate_bps: 2e6,
            min_bitrate_bps: 300e3,
            max_bitrate_bps: 25e6,
            watchdog: WatchdogConfig::default(),
        }
    }
}

/// Sliding-window throughput meter over acked packets.
#[derive(Debug, Default)]
struct AckedBitrate {
    samples: VecDeque<(SimTime, usize)>,
}

/// Acked-bitrate window length.
const ACKED_WINDOW: SimDuration = SimDuration::from_millis(800);

impl AckedBitrate {
    fn on_acked(&mut self, arrival: SimTime, size: usize) {
        self.samples.push_back((arrival, size));
        let cutoff = arrival - ACKED_WINDOW;
        while let Some((t, _)) = self.samples.front() {
            if *t < cutoff {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    fn bitrate_bps(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let first = self.samples.front().unwrap().0;
        let last = self.samples.back().unwrap().0;
        let span = last.saturating_since(first).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        let bits: usize = self.samples.iter().map(|(_, s)| s * 8).sum();
        bits as f64 / span
    }

    fn avg_packet_bits(&self) -> f64 {
        if self.samples.is_empty() {
            return 1_200.0 * 8.0;
        }
        let bits: usize = self.samples.iter().map(|(_, s)| s * 8).sum();
        bits as f64 / self.samples.len() as f64
    }
}

/// Outstanding sent packets, keyed by unwrapped transport sequence.
///
/// Transport sequences are handed out consecutively, so a deque indexed by
/// `seq - base` replaces the old `BTreeMap`: insert is a push at the back,
/// lookup is an offset, and removal tombstones the slot (the front pops
/// forward over tombstones). All operations on the per-packet send path
/// are O(1) with no tree nodes to allocate.
#[derive(Debug, Default)]
struct SentHistory {
    base: u64,
    slots: VecDeque<Option<(SimTime, usize)>>,
}

impl SentHistory {
    fn insert(&mut self, seq: u64, value: (SimTime, usize)) {
        if self.slots.is_empty() {
            self.base = seq;
            self.slots.push_back(Some(value));
            return;
        }
        if seq < self.base {
            // Older than everything retained (already GC'd): drop, exactly
            // as a map insert followed by the age-based GC would.
            return;
        }
        let idx = (seq - self.base) as usize;
        while self.slots.len() <= idx {
            self.slots.push_back(None);
        }
        self.slots[idx] = Some(value);
    }

    fn get(&self, seq: u64) -> Option<(SimTime, usize)> {
        let idx = seq.checked_sub(self.base)? as usize;
        self.slots.get(idx).copied().flatten()
    }

    fn remove(&mut self, seq: u64) {
        if let Some(idx) = seq.checked_sub(self.base) {
            if let Some(slot) = self.slots.get_mut(idx as usize) {
                *slot = None;
            }
        }
        self.pop_tombstones();
    }

    /// The oldest live entry, if any.
    fn front(&self) -> Option<(u64, SimTime)> {
        debug_assert!(self.slots.front().is_none_or(Option::is_some));
        self.slots
            .front()
            .copied()
            .flatten()
            .map(|(t, _)| (self.base, t))
    }

    fn pop_front(&mut self) {
        self.slots.pop_front();
        self.base += 1;
        self.pop_tombstones();
    }

    fn pop_tombstones(&mut self) {
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.base += 1;
        }
    }
}

/// Send-side GCC bandwidth estimator.
#[derive(Debug)]
pub struct SendSideBwe {
    config: GccConfig,
    /// Outstanding sent packets keyed by unwrapped transport sequence.
    sent: SentHistory,
    last_sent_unwrapped: Option<u64>,
    last_fb_unwrapped: Option<u64>,
    inter_arrival: InterArrival,
    trendline: TrendlineEstimator,
    detector: OveruseDetector,
    aimd: AimdRateControl,
    loss: LossController,
    acked: AckedBitrate,
    watchdog: FeedbackWatchdog,
    /// While `now` is before this, the estimator treats feedback as
    /// app-limited aftermath of a starvation the watchdog already handled.
    recovery_guard_until: SimTime,
}

/// How long after feedback resumes the estimator stays shielded from the
/// starvation window's aftermath. Two artefacts would otherwise punish the
/// sender twice for an outage it already backed off for: the gap's loss
/// report hits the loss arm (multiplicative cuts, then a ×1.05/s climb),
/// and the acked bitrate — low only because the watchdog throttled the
/// sender to its floor — drags the AIMD target down through its
/// `1.5 × acked` clamp, leaving an 8 %/s recovery from near zero. Guarded,
/// recovery is the watchdog's metered ramp (seconds, not tens of seconds).
const STARVATION_RECOVERY_GUARD: SimDuration = SimDuration::from_secs(2);

impl SendSideBwe {
    /// Create an estimator.
    pub fn new(config: GccConfig) -> Self {
        SendSideBwe {
            config,
            sent: SentHistory::default(),
            last_sent_unwrapped: None,
            last_fb_unwrapped: None,
            inter_arrival: InterArrival::new(),
            trendline: TrendlineEstimator::new(),
            detector: OveruseDetector::new(),
            aimd: AimdRateControl::new(
                config.start_bitrate_bps,
                config.min_bitrate_bps,
                config.max_bitrate_bps,
            ),
            loss: LossController::new(
                config.start_bitrate_bps,
                config.min_bitrate_bps,
                config.max_bitrate_bps,
            ),
            acked: AckedBitrate::default(),
            watchdog: FeedbackWatchdog::new(config.watchdog),
            recovery_guard_until: SimTime::ZERO,
        }
    }

    /// Record a media packet put on the wire.
    pub fn on_packet_sent(&mut self, transport_seq: u16, now: SimTime, size: usize) {
        let unwrapped = match self.last_sent_unwrapped {
            None => transport_seq as u64,
            Some(prev) => unwrap_seq(prev, transport_seq),
        };
        self.last_sent_unwrapped =
            Some(self.last_sent_unwrapped.unwrap_or(unwrapped).max(unwrapped));
        self.sent.insert(unwrapped, (now, size));
        // GC: drop history older than 10 s (feedback will never come).
        let cutoff = now - SimDuration::from_secs(10);
        while let Some((_, t)) = self.sent.front() {
            if t < cutoff {
                self.sent.pop_front();
            } else {
                break;
            }
        }
    }

    /// Process one transport-wide feedback packet.
    pub fn on_feedback(&mut self, feedback: &TwccFeedback, now: SimTime) {
        // This feedback ends a starvation: the watchdog already paid for
        // the outage with its back-off, so shield both estimator arms from
        // the gap's aftermath and let recovery be the watchdog's metered
        // ramp, not a second punishment.
        if self.watchdog.state() == WatchdogState::Starved {
            self.recovery_guard_until = now + STARVATION_RECOVERY_GUARD;
        }
        let guarded = now < self.recovery_guard_until;
        let base_unwrapped = match self.last_fb_unwrapped {
            None => feedback.base_seq as u64,
            Some(prev) => unwrap_seq(prev, feedback.base_seq),
        };
        self.last_fb_unwrapped = Some(
            self.last_fb_unwrapped
                .unwrap_or(base_unwrapped)
                .max(base_unwrapped + feedback.arrivals.len() as u64),
        );

        let mut lost = 0usize;
        let mut total = 0usize;
        let mut last_state = self.detector.state();
        for (i, arrival) in feedback.arrivals.iter().enumerate() {
            let seq = base_unwrapped + i as u64;
            let Some((send_time, size)) = self.sent.get(seq) else {
                continue;
            };
            total += 1;
            match feedback.arrival_time(i) {
                None => {
                    let _ = arrival;
                    lost += 1;
                }
                Some(arrival_time) => {
                    self.acked.on_acked(arrival_time, size);
                    if let Some(delta) = self.inter_arrival.on_packet(PacketTiming {
                        send_time,
                        arrival_time,
                        size,
                    }) {
                        let trend = self.trendline.update(&delta);
                        last_state = self.detector.update(delta.arrival_time, trend);
                    }
                }
            }
            self.sent.remove(seq);
        }

        // Under guard, report the acked bitrate as unknown (app-limited):
        // it reflects the watchdog's floor throttling, not path capacity,
        // and would collapse the AIMD target through its acked clamp.
        let acked_bps = if guarded {
            0.0
        } else {
            self.acked.bitrate_bps()
        };
        self.aimd
            .update(now, last_state, acked_bps, self.acked.avg_packet_bits());
        if !guarded {
            self.loss.on_feedback(now, lost, total);
        }
        self.watchdog.on_feedback(now, self.uncapped_bps());
    }

    /// Advance the feedback-starvation watchdog. Call from the driver loop
    /// (any cadence at or below the feedback interval works); without it a
    /// feedback blackout leaves the target frozen.
    pub fn on_tick(&mut self, now: SimTime) {
        self.watchdog.on_tick(now, self.uncapped_bps());
    }

    /// The next instant [`on_tick`](Self::on_tick) can have an effect
    /// (a watchdog starvation or back-off edge); `None` if no timer is
    /// pending. Between feedback arrivals and this instant, `on_tick` is a
    /// no-op, which is what lets the driver skip idle ticks.
    pub fn next_wake(&self) -> Option<SimTime> {
        self.watchdog.next_wake()
    }

    /// The two estimator arms combined, before the watchdog cap.
    fn uncapped_bps(&self) -> f64 {
        self.aimd
            .target_bps()
            .min(self.loss.rate_bps())
            .clamp(self.config.min_bitrate_bps, self.config.max_bitrate_bps)
    }

    /// The current combined target bitrate: the binding arm wins, bounded
    /// by the starvation watchdog's cap while feedback is dark. The cap's
    /// floor may sit below `min_bitrate_bps` if configured that way.
    pub fn target_bitrate_bps(&self) -> f64 {
        self.watchdog.apply(self.uncapped_bps())
    }

    /// Starvation watchdog state.
    pub fn watchdog_state(&self) -> WatchdogState {
        self.watchdog.state()
    }

    /// Starvation watchdog counters.
    pub fn watchdog_stats(&self) -> WatchdogStats {
        self.watchdog.stats()
    }

    /// Delay-arm target (diagnostics).
    pub fn delay_based_bps(&self) -> f64 {
        self.aimd.target_bps()
    }

    /// Loss-arm target (diagnostics).
    pub fn loss_based_bps(&self) -> f64 {
        self.loss.rate_bps()
    }

    /// Measured delivery rate over the acked window.
    pub fn acked_bitrate_bps(&self) -> f64 {
        self.acked.bitrate_bps()
    }

    /// Smoothed loss fraction seen in feedback.
    pub fn loss_fraction(&self) -> f64 {
        self.loss.loss_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpav_rtp::twcc::TwccRecorder;

    /// Drive the estimator through a perfect link: every packet arrives
    /// `base_delay` after sending, feedback every 50 ms.
    fn run_clean_link(bwe: &mut SendSideBwe, seconds: u64, rate_limit_bps: f64) -> Vec<f64> {
        let mut rec = TwccRecorder::new();
        let mut targets = Vec::new();
        let mut seq: u16 = 0;
        let mut queue_us: i64 = 0; // bottleneck queue in µs of serialisation
        let base_delay = SimDuration::from_millis(40);
        let tick = SimDuration::from_millis(5);
        let mut t = SimTime::from_secs(1);
        let end = t + SimDuration::from_secs(seconds);
        let mut last_fb = t;
        let mut last_drain = t;
        while t < end {
            // Send at the current target, 1200 B packets.
            let target = bwe.target_bitrate_bps();
            let bytes_per_tick = target * tick.as_secs_f64() / 8.0;
            let pkts = (bytes_per_tick / 1_200.0).round() as usize;
            // Bottleneck: queue drains at rate_limit.
            let drain_us = t.saturating_since(last_drain).as_micros() as i64;
            last_drain = t;
            queue_us -= drain_us;
            queue_us = queue_us.max(0);
            for _ in 0..pkts {
                let ser_us = (1_200.0 * 8.0 / rate_limit_bps * 1e6) as i64;
                queue_us += ser_us;
                let arrival = t + base_delay + SimDuration::from_micros(queue_us as u64);
                bwe.on_packet_sent(seq, t, 1_200);
                rec.on_packet(seq, arrival);
                seq = seq.wrapping_add(1);
            }
            if t.saturating_since(last_fb) >= SimDuration::from_millis(50) {
                last_fb = t;
                if let Some(fb) = rec.build_feedback() {
                    bwe.on_feedback(&fb, t);
                }
            }
            targets.push(bwe.target_bitrate_bps());
            t += tick;
        }
        targets
    }

    #[test]
    fn ramps_up_on_uncongested_link() {
        let mut bwe = SendSideBwe::new(GccConfig::default());
        let targets = run_clean_link(&mut bwe, 20, 100e6);
        let last = *targets.last().unwrap();
        assert!(
            last > 6e6,
            "after 20 s on a clean link the target should grow well past start, got {last:.2e}"
        );
        // Monotone-ish growth: no collapse.
        assert!(targets.iter().all(|t| *t >= 1e6));
    }

    #[test]
    fn converges_near_bottleneck_without_runaway() {
        let mut bwe = SendSideBwe::new(GccConfig::default());
        let targets = run_clean_link(&mut bwe, 40, 8e6);
        // Average of the last 10 s should sit in the bottleneck's
        // neighbourhood — neither runaway (queuing) nor collapse.
        let tail = &targets[targets.len() - 2_000..];
        let avg = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(
            (4e6..11e6).contains(&avg),
            "tail average {avg:.2e} not near the 8 Mbps bottleneck"
        );
    }

    #[test]
    fn heavy_loss_engages_loss_arm() {
        let mut bwe = SendSideBwe::new(GccConfig::default());
        let mut rec = TwccRecorder::new();
        let mut t = SimTime::from_secs(1);
        let mut seq: u16 = 0;
        for round in 0..100 {
            for i in 0..20 {
                bwe.on_packet_sent(seq, t, 1_200);
                // 30 % loss.
                if (seq as usize + i) % 10 >= 3 {
                    rec.on_packet(seq, t + SimDuration::from_millis(40));
                }
                seq = seq.wrapping_add(1);
                t += SimDuration::from_millis(2);
            }
            if let Some(fb) = rec.build_feedback() {
                bwe.on_feedback(&fb, t);
            }
            let _ = round;
        }
        assert!(bwe.loss_fraction() > 0.15, "loss {}", bwe.loss_fraction());
        assert!(
            bwe.loss_based_bps() < 3e6,
            "loss arm should bind: {:.2e}",
            bwe.loss_based_bps()
        );
        assert!(bwe.target_bitrate_bps() <= bwe.loss_based_bps());
    }

    #[test]
    fn acked_bitrate_tracks_delivery() {
        let mut acked = AckedBitrate::default();
        // 1200 B every 1 ms = 9.6 Mbps.
        for i in 0..500 {
            acked.on_acked(SimTime::from_millis(i), 1_200);
        }
        let est = acked.bitrate_bps();
        assert!((est - 9.6e6).abs() < 0.5e6, "estimate {est:.2e}");
        assert_eq!(acked.avg_packet_bits(), 9_600.0);
    }

    #[test]
    fn target_stays_within_bounds() {
        let cfg = GccConfig {
            start_bitrate_bps: 2e6,
            min_bitrate_bps: 1e6,
            max_bitrate_bps: 10e6,
            ..Default::default()
        };
        let mut bwe = SendSideBwe::new(cfg);
        let targets = run_clean_link(&mut bwe, 60, 100e6);
        assert!(targets.iter().all(|t| (1e6..=10e6).contains(t)));
        // Should saturate at the ceiling on a clean 100 Mbps link.
        assert!(*targets.last().unwrap() >= 9.9e6);
    }

    /// Drive the estimator at a fixed send rate for `ms`, with the feedback
    /// path either alive (40 ms OWD, report every 50 ms) or dark (packets
    /// vanish, no reports). `on_tick` runs every 5 ms like the driver loop.
    fn drive(
        bwe: &mut SendSideBwe,
        rec: &mut TwccRecorder,
        seq: &mut u16,
        t: &mut SimTime,
        ms: u64,
        feedback_alive: bool,
    ) {
        let end = *t + SimDuration::from_millis(ms);
        let mut last_fb = *t;
        while *t < end {
            for _ in 0..2 {
                bwe.on_packet_sent(*seq, *t, 1_200);
                if feedback_alive {
                    rec.on_packet(*seq, *t + SimDuration::from_millis(40));
                }
                *seq = seq.wrapping_add(1);
            }
            if feedback_alive && t.saturating_since(last_fb) >= SimDuration::from_millis(50) {
                last_fb = *t;
                if let Some(fb) = rec.build_feedback() {
                    bwe.on_feedback(&fb, *t);
                }
            }
            bwe.on_tick(*t);
            *t += SimDuration::from_millis(5);
        }
    }

    #[test]
    fn feedback_starvation_backs_off_to_floor_then_recovers() {
        let mut bwe = SendSideBwe::new(GccConfig::default());
        let mut rec = TwccRecorder::new();
        let mut seq: u16 = 0;
        let mut t = SimTime::from_secs(1);
        drive(&mut bwe, &mut rec, &mut seq, &mut t, 5_000, true);
        let pre = bwe.target_bitrate_bps();
        assert!(pre > 1e6, "pre-outage target {pre:.2e}");
        // 5 s feedback blackout: back-off engages and decays to the floor.
        drive(&mut bwe, &mut rec, &mut seq, &mut t, 5_000, false);
        assert_eq!(bwe.watchdog_state(), WatchdogState::Starved);
        let floor = GccConfig::default().watchdog.floor_bps;
        assert_eq!(bwe.target_bitrate_bps(), floor);
        assert_eq!(bwe.watchdog_stats().activations, 1);
        // Feedback resumes: the cap ramps off and the target climbs back.
        drive(&mut bwe, &mut rec, &mut seq, &mut t, 10_000, true);
        assert_eq!(bwe.watchdog_state(), WatchdogState::Armed);
        let stats = bwe.watchdog_stats();
        assert_eq!(stats.recoveries, 1);
        assert!(stats.last_ramp.is_some());
        assert!(
            bwe.target_bitrate_bps() > 0.5 * pre,
            "post-recovery target {:.2e} still far below pre-outage {pre:.2e}",
            bwe.target_bitrate_bps()
        );
    }

    #[test]
    fn starvation_losses_do_not_poison_the_loss_arm() {
        let mut bwe = SendSideBwe::new(GccConfig::default());
        let mut rec = TwccRecorder::new();
        let mut seq: u16 = 0;
        let mut t = SimTime::from_secs(1);
        drive(&mut bwe, &mut rec, &mut seq, &mut t, 8_000, true);
        let pre = bwe.target_bitrate_bps();
        drive(&mut bwe, &mut rec, &mut seq, &mut t, 3_000, false);
        assert_eq!(bwe.watchdog_state(), WatchdogState::Starved);
        // 5 s of restored feedback: the watchdog ramp releases, and the
        // loss arm — shielded from the gap's loss avalanche — does not
        // hold the target down afterwards (unguarded, the ×1.05/s climb
        // would keep it depressed far longer than this).
        drive(&mut bwe, &mut rec, &mut seq, &mut t, 5_000, true);
        assert_eq!(bwe.watchdog_state(), WatchdogState::Armed);
        let post = bwe.target_bitrate_bps();
        assert!(
            post > 0.7 * pre,
            "post-recovery target {post:.2e} vs pre-outage {pre:.2e}"
        );
    }

    #[test]
    fn watchdog_opt_out_reproduces_frozen_rate() {
        let cfg = GccConfig {
            watchdog: rpav_sim::WatchdogConfig {
                enabled: false,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut bwe = SendSideBwe::new(cfg);
        let mut rec = TwccRecorder::new();
        let mut seq: u16 = 0;
        let mut t = SimTime::from_secs(1);
        drive(&mut bwe, &mut rec, &mut seq, &mut t, 5_000, true);
        let pre = bwe.target_bitrate_bps();
        // 20 s of darkness: the stock estimator just keeps its last target.
        drive(&mut bwe, &mut rec, &mut seq, &mut t, 20_000, false);
        assert_eq!(bwe.target_bitrate_bps(), pre, "rate should stay frozen");
        assert_eq!(bwe.watchdog_stats().activations, 0);
    }
}
