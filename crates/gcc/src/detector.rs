//! Over-use detector with adaptive threshold.
//!
//! Compares the modified trend against a threshold γ that adapts (Carlucci
//! et al. §3.2): γ grows quickly when the trend is outside (k_u) and decays
//! slowly back (k_d), clamped to [6, 600] ms — this prevents starvation
//! against concurrent TCP flows while keeping sensitivity. Over-use is only
//! signalled after it persists (≥ 10 ms and a non-decreasing trend).

use rpav_sim::{SimDuration, SimTime};

/// Detector verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BandwidthUsage {
    /// Queues stable.
    Normal,
    /// Queuing delay increasing — reduce the rate.
    Overusing,
    /// Queues draining — hold and let them empty.
    Underusing,
}

/// Gain when |trend| exceeds the threshold (fast rise).
pub const K_UP: f64 = 0.0087;
/// Gain when |trend| is inside the threshold (slow decay).
pub const K_DOWN: f64 = 0.039;
/// Initial threshold (ms).
pub const INITIAL_THRESHOLD: f64 = 12.5;
/// Threshold clamp range (ms).
pub const THRESHOLD_RANGE: (f64, f64) = (6.0, 600.0);
/// Over-use must persist this long before it is signalled.
pub const OVERUSE_TIME: SimDuration = SimDuration::from_millis(10);

/// The detector.
#[derive(Debug)]
pub struct OveruseDetector {
    threshold: f64,
    state: BandwidthUsage,
    overusing_since: Option<SimTime>,
    prev_trend: f64,
    last_update: Option<SimTime>,
}

impl Default for OveruseDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl OveruseDetector {
    /// Create a detector in the `Normal` state.
    pub fn new() -> Self {
        OveruseDetector {
            threshold: INITIAL_THRESHOLD,
            state: BandwidthUsage::Normal,
            overusing_since: None,
            prev_trend: 0.0,
            last_update: None,
        }
    }

    /// Current adaptive threshold (ms).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Current state.
    pub fn state(&self) -> BandwidthUsage {
        self.state
    }

    /// Feed the modified trend at time `now`; returns the (possibly new)
    /// state.
    pub fn update(&mut self, now: SimTime, modified_trend: f64) -> BandwidthUsage {
        if modified_trend > self.threshold {
            let since = *self.overusing_since.get_or_insert(now);
            let sustained = now.saturating_since(since) >= OVERUSE_TIME;
            if sustained && modified_trend >= self.prev_trend {
                self.state = BandwidthUsage::Overusing;
            }
        } else if modified_trend < -self.threshold {
            self.overusing_since = None;
            self.state = BandwidthUsage::Underusing;
        } else {
            self.overusing_since = None;
            self.state = BandwidthUsage::Normal;
        }
        self.adapt_threshold(now, modified_trend);
        self.prev_trend = modified_trend;
        self.state
    }

    fn adapt_threshold(&mut self, now: SimTime, modified_trend: f64) {
        let dt_ms = match self.last_update {
            None => 0.0,
            // Clamp: long gaps would otherwise blow the threshold around.
            Some(last) => now.saturating_since(last).as_millis_f64().min(100.0),
        };
        self.last_update = Some(now);
        let abs = modified_trend.abs();
        // Ignore spikes far above the threshold (libwebrtc: 15 ms margin)
        // so a single outlier doesn't desensitise the detector.
        if abs > self.threshold + 15.0 {
            return;
        }
        let k = if abs < self.threshold { K_DOWN } else { K_UP };
        self.threshold += k * (abs - self.threshold) * dt_ms;
        self.threshold = self.threshold.clamp(THRESHOLD_RANGE.0, THRESHOLD_RANGE.1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn stays_normal_on_flat_trend() {
        let mut d = OveruseDetector::new();
        for i in 0..100 {
            assert_eq!(d.update(t(i * 10), 0.0), BandwidthUsage::Normal);
        }
    }

    #[test]
    fn sustained_positive_trend_overuses() {
        let mut d = OveruseDetector::new();
        let mut state = BandwidthUsage::Normal;
        for i in 0..20 {
            state = d.update(t(i * 10), 20.0);
        }
        assert_eq!(state, BandwidthUsage::Overusing);
    }

    #[test]
    fn single_spike_does_not_overuse() {
        let mut d = OveruseDetector::new();
        d.update(t(0), 0.0);
        // One spike, then back to normal: the 10 ms persistence gate keeps
        // the state Normal (the spike lasts one sample at the same time).
        let s = d.update(t(10), 50.0);
        assert_ne!(s, BandwidthUsage::Overusing);
        assert_eq!(d.update(t(20), 0.0), BandwidthUsage::Normal);
    }

    #[test]
    fn negative_trend_underuses() {
        let mut d = OveruseDetector::new();
        let s = d.update(t(0), -30.0);
        assert_eq!(s, BandwidthUsage::Underusing);
    }

    #[test]
    fn threshold_adapts_up_under_sustained_pressure() {
        let mut d = OveruseDetector::new();
        let initial = d.threshold();
        // Trend slightly above threshold for a while: γ rises.
        for i in 0..200 {
            d.update(t(i * 10), initial + 5.0);
        }
        assert!(d.threshold() > initial);
        assert!(d.threshold() <= THRESHOLD_RANGE.1);
    }

    #[test]
    fn threshold_decays_back_to_quiet_levels() {
        let mut d = OveruseDetector::new();
        for i in 0..200 {
            d.update(t(i * 10), 14.0);
        }
        let raised = d.threshold();
        for i in 200..2000 {
            d.update(t(i * 10), 0.0);
        }
        assert!(d.threshold() < raised);
        assert!(d.threshold() >= THRESHOLD_RANGE.0);
    }

    #[test]
    fn huge_outlier_does_not_move_threshold() {
        let mut d = OveruseDetector::new();
        d.update(t(0), 0.0);
        let before = d.threshold();
        d.update(t(10), 500.0); // way above threshold + 15
        assert_eq!(d.threshold(), before);
    }
}
