//! Trendline estimator: the delay-gradient filter of modern GCC.
//!
//! The original design used a Kalman filter on the one-way delay gradient
//! (Carlucci et al. §3); libwebrtc later replaced it with an equivalent
//! linear-regression "trendline" filter, which is what we implement: an
//! exponentially smoothed accumulated delay is regressed against arrival
//! time over a sliding window; the slope estimates the queuing-delay
//! growth rate.

use std::collections::VecDeque;

use rpav_sim::SimTime;

use crate::arrival::GroupDelta;

/// Window size in group samples (libwebrtc default 20).
pub const WINDOW: usize = 20;
/// Exponential smoothing coefficient (libwebrtc default 0.9).
pub const SMOOTHING: f64 = 0.9;
/// Gain applied to the raw slope before threshold comparison.
pub const THRESHOLD_GAIN: f64 = 4.0;
/// Cap on the sample count used to scale the modified trend.
pub const MAX_DELTAS: u32 = 60;

/// The estimator.
#[derive(Debug)]
pub struct TrendlineEstimator {
    acc_delay_ms: f64,
    smoothed_delay_ms: f64,
    history: VecDeque<(f64, f64)>, // (arrival time ms, smoothed delay ms)
    first_arrival: Option<SimTime>,
    num_deltas: u32,
    trend: f64,
}

impl Default for TrendlineEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl TrendlineEstimator {
    /// Create an empty estimator.
    pub fn new() -> Self {
        TrendlineEstimator {
            acc_delay_ms: 0.0,
            smoothed_delay_ms: 0.0,
            history: VecDeque::with_capacity(WINDOW),
            first_arrival: None,
            num_deltas: 0,
            trend: 0.0,
        }
    }

    /// Feed one group delta; returns the updated *modified trend* — the
    /// quantity compared against the adaptive threshold.
    pub fn update(&mut self, delta: &GroupDelta) -> f64 {
        let delay_variation = delta.arrival_delta_ms - delta.send_delta_ms;
        self.num_deltas = (self.num_deltas + 1).min(MAX_DELTAS);
        self.acc_delay_ms += delay_variation;
        self.smoothed_delay_ms =
            SMOOTHING * self.smoothed_delay_ms + (1.0 - SMOOTHING) * self.acc_delay_ms;

        let first = *self.first_arrival.get_or_insert(delta.arrival_time);
        let x_ms = delta.arrival_time.saturating_since(first).as_millis_f64();
        self.history.push_back((x_ms, self.smoothed_delay_ms));
        if self.history.len() > WINDOW {
            self.history.pop_front();
        }
        if self.history.len() >= 2 {
            // `make_contiguous` hands the fit a borrowed slice; after the
            // first wrap the deque stays contiguous, so this is free on the
            // steady-state path (and the fit no longer clones the window).
            if let Some(slope) = linear_fit_slope(self.history.make_contiguous()) {
                self.trend = slope;
            }
        }
        self.modified_trend()
    }

    /// Raw regression slope (ms of delay per ms of time).
    pub fn trend(&self) -> f64 {
        self.trend
    }

    /// Slope scaled by sample count and gain, as compared to the detector
    /// threshold.
    pub fn modified_trend(&self) -> f64 {
        self.trend * self.num_deltas.min(MAX_DELTAS) as f64 * THRESHOLD_GAIN
    }

    /// Number of deltas consumed (saturating at [`MAX_DELTAS`]).
    pub fn num_deltas(&self) -> u32 {
        self.num_deltas
    }
}

/// Ordinary least squares slope of `(x, y)` points; `None` if degenerate.
/// Takes a borrowed slice so the per-group hot path never copies the
/// window; the accumulation order is unchanged from the iterator version,
/// so results are bit-identical.
fn linear_fit_slope(points: &[(f64, f64)]) -> Option<f64> {
    let n = points.len() as f64;
    if n < 2.0 {
        return None;
    }
    let sum_x: f64 = points.iter().map(|&(x, _)| x).sum();
    let sum_y: f64 = points.iter().map(|&(_, y)| y).sum();
    let mean_x = sum_x / n;
    let mean_y = sum_y / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for &(x, y) in points {
        num += (x - mean_x) * (y - mean_y);
        den += (x - mean_x) * (x - mean_x);
    }
    if den.abs() < f64::EPSILON {
        None
    } else {
        Some(num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpav_sim::SimTime;

    fn delta(i: u64, send_ms: f64, arrival_ms: f64) -> GroupDelta {
        GroupDelta {
            send_delta_ms: send_ms,
            arrival_delta_ms: arrival_ms,
            arrival_time: SimTime::from_millis(100 + i * 10),
        }
    }

    #[test]
    fn flat_delay_has_zero_trend() {
        let mut e = TrendlineEstimator::new();
        let mut last = 0.0;
        for i in 0..40 {
            last = e.update(&delta(i, 10.0, 10.0));
        }
        assert!(last.abs() < 1e-9, "trend {last}");
    }

    #[test]
    fn growing_delay_has_positive_trend() {
        let mut e = TrendlineEstimator::new();
        let mut last = 0.0;
        for i in 0..40 {
            // Every group arrives 2 ms later than sent spacing: queue grows.
            last = e.update(&delta(i, 10.0, 12.0));
        }
        assert!(last > 6.0, "modified trend {last} should exceed threshold");
        assert!(e.trend() > 0.0);
    }

    #[test]
    fn draining_queue_has_negative_trend() {
        let mut e = TrendlineEstimator::new();
        // Build up then drain.
        for i in 0..20 {
            e.update(&delta(i, 10.0, 12.0));
        }
        let mut last = 0.0;
        for i in 20..60 {
            last = e.update(&delta(i, 10.0, 7.0));
        }
        assert!(last < -6.0, "modified trend {last}");
    }

    #[test]
    fn modified_trend_scales_with_sample_count() {
        let mut e = TrendlineEstimator::new();
        e.update(&delta(0, 10.0, 12.0));
        let early = e.modified_trend().abs();
        for i in 1..70 {
            e.update(&delta(i, 10.0, 12.0));
        }
        assert!(e.num_deltas() == MAX_DELTAS);
        assert!(e.modified_trend().abs() > early);
    }

    #[test]
    fn slope_fit_is_exact_on_a_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        assert!((linear_fit_slope(&pts).unwrap() - 3.0).abs() < 1e-12);
        // Degenerate: single x.
        let same: Vec<(f64, f64)> = (0..5).map(|_| (1.0, 2.0)).collect();
        assert!(linear_fit_slope(&same).is_none());
    }
}
