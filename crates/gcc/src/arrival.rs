//! Inter-arrival grouping: packets sent in a burst are treated as one
//! group; the estimator works on inter-*group* deltas, which filters out
//! self-inflicted burst jitter.

use rpav_sim::{SimDuration, SimTime};

/// Packets sent within this span belong to one group (libwebrtc: 5 ms).
pub const BURST_DELTA: SimDuration = SimDuration::from_millis(5);

/// A (send time, arrival time) pair for one acked packet.
#[derive(Clone, Copy, Debug)]
pub struct PacketTiming {
    /// When the sender put the packet on the wire.
    pub send_time: SimTime,
    /// When the receiver reported it arrived.
    pub arrival_time: SimTime,
    /// Payload size in bytes.
    pub size: usize,
}

/// One completed group delta pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GroupDelta {
    /// Send-time difference between this group and the previous (ms).
    pub send_delta_ms: f64,
    /// Arrival-time difference between this group and the previous (ms).
    pub arrival_delta_ms: f64,
    /// Arrival time of the newer group (for regression x-axis).
    pub arrival_time: SimTime,
}

#[derive(Clone, Copy, Debug)]
struct Group {
    first_send: SimTime,
    last_send: SimTime,
    last_arrival: SimTime,
}

/// Stateful grouper: feed acked packets in send order, get group deltas.
#[derive(Debug, Default)]
pub struct InterArrival {
    current: Option<Group>,
    previous: Option<Group>,
}

impl InterArrival {
    /// Create an empty grouper.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one acked packet (in send-time order). Returns a delta when a
    /// group completes.
    pub fn on_packet(&mut self, timing: PacketTiming) -> Option<GroupDelta> {
        let mut out = None;
        match &mut self.current {
            None => {
                self.current = Some(Group {
                    first_send: timing.send_time,
                    last_send: timing.send_time,
                    last_arrival: timing.arrival_time,
                });
            }
            Some(g) => {
                let belongs = timing.send_time.saturating_since(g.first_send) <= BURST_DELTA;
                if belongs {
                    g.last_send = g.last_send.max(timing.send_time);
                    g.last_arrival = g.last_arrival.max(timing.arrival_time);
                } else {
                    // Current group completes.
                    if let Some(prev) = self.previous {
                        let send_delta_ms =
                            g.last_send.saturating_since(prev.last_send).as_millis_f64();
                        let arrival_delta_ms = g.last_arrival.as_micros() as f64 / 1e3
                            - prev.last_arrival.as_micros() as f64 / 1e3;
                        out = Some(GroupDelta {
                            send_delta_ms,
                            arrival_delta_ms,
                            arrival_time: g.last_arrival,
                        });
                    }
                    self.previous = self.current;
                    self.current = Some(Group {
                        first_send: timing.send_time,
                        last_send: timing.send_time,
                        last_arrival: timing.arrival_time,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn pkt(send_ms: u64, arrival_ms: u64) -> PacketTiming {
        PacketTiming {
            send_time: t(send_ms),
            arrival_time: t(arrival_ms),
            size: 1200,
        }
    }

    #[test]
    fn groups_bursts_together() {
        let mut ia = InterArrival::new();
        // Burst 1 at 0-4 ms, burst 2 at 20 ms, burst 3 at 40 ms.
        assert!(ia.on_packet(pkt(0, 50)).is_none());
        assert!(ia.on_packet(pkt(2, 51)).is_none());
        assert!(ia.on_packet(pkt(4, 52)).is_none());
        // New group: completes burst 1, but no previous → no delta yet.
        assert!(ia.on_packet(pkt(20, 70)).is_none());
        // Third group: delta between burst 1 and burst 2.
        let d = ia.on_packet(pkt(40, 90)).unwrap();
        assert_eq!(d.send_delta_ms, 16.0); // 20 - 4
        assert_eq!(d.arrival_delta_ms, 18.0); // 70 - 52
    }

    #[test]
    fn steady_stream_has_zero_delay_gradient() {
        let mut ia = InterArrival::new();
        let mut deltas = Vec::new();
        for i in 0..50 {
            if let Some(d) = ia.on_packet(pkt(i * 10, 100 + i * 10)) {
                deltas.push(d);
            }
        }
        assert!(!deltas.is_empty());
        for d in deltas {
            assert_eq!(d.send_delta_ms, d.arrival_delta_ms);
        }
    }

    #[test]
    fn queue_buildup_shows_positive_gradient() {
        let mut ia = InterArrival::new();
        let mut gradients = Vec::new();
        for i in 0..50u64 {
            // Arrival spacing grows: queue building.
            let arrival = 100 + i * 10 + i * i / 10;
            if let Some(d) = ia.on_packet(pkt(i * 10, arrival)) {
                gradients.push(d.arrival_delta_ms - d.send_delta_ms);
            }
        }
        assert!(gradients.iter().skip(5).all(|g| *g > 0.0));
    }
}
