//! AIMD rate controller — the delay-based rate state machine.
//!
//! Maps detector verdicts to rate actions (Carlucci et al. §3.3):
//!
//! | signal      | state transition        |
//! |-------------|-------------------------|
//! | Overusing   | → Decrease (then Hold)  |
//! | Underusing  | → Hold                  |
//! | Normal      | → Increase              |
//!
//! Increase is multiplicative (≈8 %/s) far from the last known congestion
//! point and additive (one packet per response time) near it; decrease is
//! `β × acked_bitrate` with β = 0.85.

use rpav_sim::{SimDuration, SimTime};

use crate::detector::BandwidthUsage;

/// Rate-control state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RateControlState {
    /// Grow the target.
    Increase,
    /// Keep the target (queues draining).
    Hold,
    /// Shrink below the measured delivery rate.
    Decrease,
}

/// Multiplicative-decrease factor β.
pub const BETA: f64 = 0.85;
/// Multiplicative increase per second far from convergence.
pub const INCREASE_PER_SECOND: f64 = 0.08;
/// Assumed feedback response time for additive increase.
pub const RESPONSE_TIME: SimDuration = SimDuration::from_millis(200);

/// The AIMD controller.
#[derive(Debug)]
pub struct AimdRateControl {
    state: RateControlState,
    target_bps: f64,
    min_bps: f64,
    max_bps: f64,
    /// EWMA of the acked bitrate at decrease instants (the congestion
    /// point) and its variance, for the near-convergence test.
    avg_max_bps: Option<f64>,
    var_max: f64,
    last_update: Option<SimTime>,
}

impl AimdRateControl {
    /// Create a controller starting at `start_bps`.
    pub fn new(start_bps: f64, min_bps: f64, max_bps: f64) -> Self {
        AimdRateControl {
            state: RateControlState::Increase,
            target_bps: start_bps.clamp(min_bps, max_bps),
            min_bps,
            max_bps,
            avg_max_bps: None,
            var_max: 0.4,
            last_update: None,
        }
    }

    /// Current target bitrate.
    pub fn target_bps(&self) -> f64 {
        self.target_bps
    }

    /// Current state.
    pub fn state(&self) -> RateControlState {
        self.state
    }

    /// Feed a detector verdict and the currently measured acked bitrate.
    /// Returns the new target.
    pub fn update(
        &mut self,
        now: SimTime,
        usage: BandwidthUsage,
        acked_bps: f64,
        avg_packet_bits: f64,
    ) -> f64 {
        // State transitions.
        self.state = match (usage, self.state) {
            (BandwidthUsage::Overusing, _) => RateControlState::Decrease,
            (BandwidthUsage::Underusing, _) => RateControlState::Hold,
            (BandwidthUsage::Normal, RateControlState::Decrease) => RateControlState::Hold,
            (BandwidthUsage::Normal, _) => RateControlState::Increase,
        };

        let dt = self
            .last_update
            .map(|l| now.saturating_since(l))
            .unwrap_or(SimDuration::ZERO)
            .min(SimDuration::from_secs(1));
        self.last_update = Some(now);

        match self.state {
            RateControlState::Increase => {
                let near_convergence = match self.avg_max_bps {
                    None => false,
                    Some(avg) => {
                        // libwebrtc computes the deviation in kbps:
                        // σ_kbps = sqrt(var · avg_kbps).
                        let sigma_bps = (self.var_max * (avg / 1e3)).sqrt().max(0.1) * 1e3;
                        acked_bps > avg - 3.0 * sigma_bps && acked_bps < avg + 3.0 * sigma_bps
                    }
                };
                if near_convergence {
                    // Additive: one packet per response time.
                    let per_sec = avg_packet_bits / RESPONSE_TIME.as_secs_f64();
                    self.target_bps += per_sec * dt.as_secs_f64();
                } else {
                    let eta = (1.0 + INCREASE_PER_SECOND).powf(dt.as_secs_f64());
                    self.target_bps *= eta;
                }
                // Never run far ahead of what the path demonstrably
                // delivers.
                if acked_bps > 0.0 {
                    self.target_bps = self.target_bps.min(1.5 * acked_bps + 10_000.0);
                }
            }
            RateControlState::Decrease => {
                let basis = if acked_bps > 0.0 {
                    acked_bps
                } else {
                    self.target_bps
                };
                self.target_bps = BETA * basis;
                // Update the congestion-point statistics.
                match &mut self.avg_max_bps {
                    None => self.avg_max_bps = Some(basis),
                    Some(avg) => {
                        let norm = (basis - *avg) / avg.max(1.0);
                        self.var_max = 0.95 * self.var_max + 0.05 * norm * norm;
                        *avg += 0.05 * (basis - *avg);
                    }
                }
                // Decrease is one-shot: drop to Hold until the next verdict.
                self.state = RateControlState::Hold;
            }
            RateControlState::Hold => {}
        }
        self.target_bps = self.target_bps.clamp(self.min_bps, self.max_bps);
        self.target_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    const PKT_BITS: f64 = 1_200.0 * 8.0;

    #[test]
    fn grows_multiplicatively_without_congestion() {
        let mut c = AimdRateControl::new(2e6, 100e3, 50e6);
        let mut now = 0;
        for _ in 0..100 {
            now += 100;
            // Acked tracks target (no bottleneck).
            let acked = c.target_bps();
            c.update(t(now), BandwidthUsage::Normal, acked, PKT_BITS);
        }
        // 10 s at 8 %/s ≈ ×2.1.
        assert!(c.target_bps() > 4e6, "target {:.1e}", c.target_bps());
    }

    #[test]
    fn overuse_decreases_below_acked() {
        let mut c = AimdRateControl::new(10e6, 100e3, 50e6);
        c.update(t(0), BandwidthUsage::Overusing, 8e6, PKT_BITS);
        assert!((c.target_bps() - 0.85 * 8e6).abs() < 1.0);
        assert_eq!(c.state(), RateControlState::Hold);
    }

    #[test]
    fn underuse_holds() {
        let mut c = AimdRateControl::new(10e6, 100e3, 50e6);
        let before = c.target_bps();
        c.update(t(0), BandwidthUsage::Underusing, 9e6, PKT_BITS);
        assert_eq!(c.target_bps(), before);
        assert_eq!(c.state(), RateControlState::Hold);
    }

    #[test]
    fn additive_increase_near_convergence() {
        let mut c = AimdRateControl::new(10e6, 100e3, 50e6);
        // Establish a congestion point at ≈8 Mbps.
        c.update(t(0), BandwidthUsage::Overusing, 8e6, PKT_BITS);
        // Recover in Normal near the congestion point: growth should be
        // additive (slow), not multiplicative.
        let mut now = 0;
        for _ in 0..10 {
            now += 100;
            c.update(t(now), BandwidthUsage::Normal, 7.9e6, PKT_BITS);
        }
        // Additive: ~48 kbps per second → 1 s of updates adds ≤ 100 kbps.
        let target = c.target_bps();
        assert!(
            target < 0.85 * 8e6 + 200_000.0,
            "target {target:.1e} grew too fast near convergence"
        );
    }

    #[test]
    fn target_capped_by_acked_rate() {
        let mut c = AimdRateControl::new(10e6, 100e3, 50e6);
        // Path only delivers 2 Mbps; target must not run away.
        let mut now = 0;
        for _ in 0..100 {
            now += 100;
            c.update(t(now), BandwidthUsage::Normal, 2e6, PKT_BITS);
        }
        assert!(c.target_bps() <= 1.5 * 2e6 + 10_001.0);
    }

    #[test]
    fn respects_min_max_bounds() {
        let mut c = AimdRateControl::new(5e6, 1e6, 8e6);
        for i in 0..50 {
            c.update(t(i * 100), BandwidthUsage::Overusing, 0.5e6, PKT_BITS);
        }
        assert!(c.target_bps() >= 1e6);
        let mut c = AimdRateControl::new(5e6, 1e6, 8e6);
        for i in 0..200 {
            let acked = c.target_bps();
            c.update(t(i * 100), BandwidthUsage::Normal, acked, PKT_BITS);
        }
        assert!(c.target_bps() <= 8e6);
    }
}
