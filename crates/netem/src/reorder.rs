//! Explicit packet reordering with bounded displacement.
//!
//! The in-order links in [`link`](crate::link) model the RLC-AM radio leg,
//! which never reorders. Real WAN paths do — ECMP rehashes, load-balanced
//! routes, multi-homing — so hostile-wire experiments need a composable
//! stage that *holds* a randomly chosen packet and re-inserts it a bounded
//! number of positions later. Displacement is bounded both by packet count
//! (`max_displacement` subsequent deliveries) and by time (`max_hold`), so
//! a held packet still arrives during a traffic lull instead of vanishing.
//!
//! Determinism contract: [`ReorderStage::offer`] consumes exactly one RNG
//! draw per offered packet when `chance ∈ (0, 1)` plus one more when the
//! hold fires; with `chance == 0` it consumes **no** draws (see
//! `SimRng::chance`), so a transparent stage leaves every other stream in
//! the simulation untouched.

use rpav_sim::{SimDuration, SimRng, SimTime};

use crate::packet::Packet;

/// Upper bound on simultaneously held packets: past this the stage passes
/// everything through, so a pathological `chance` cannot swallow a flow.
const MAX_HELD: usize = 64;

/// Tunables for a [`ReorderStage`].
#[derive(Clone, Copy, Debug)]
pub struct ReorderConfig {
    /// Per-packet probability of being held back.
    pub chance: f64,
    /// A held packet is re-inserted after `1..=max_displacement`
    /// subsequently delivered packets (uniform draw).
    pub max_displacement: u64,
    /// Time bound: a held packet is released no later than this after it
    /// was offered, even if too few packets follow it.
    pub max_hold: SimDuration,
}

impl Default for ReorderConfig {
    fn default() -> Self {
        ReorderConfig {
            chance: 0.0,
            max_displacement: 4,
            max_hold: SimDuration::from_millis(50),
        }
    }
}

/// Counters for a [`ReorderStage`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReorderStats {
    /// Packets held back for later re-insertion.
    pub held: u64,
    /// Held packets released because enough packets passed them.
    pub released_by_count: u64,
    /// Held packets released by the `max_hold` timeout.
    pub released_by_time: u64,
    /// Packets passed straight through.
    pub passed: u64,
}

#[derive(Debug)]
struct Held {
    packet: Packet,
    /// Deliveries still to overtake this packet before release.
    remaining: u64,
    /// Latest instant the packet may stay held.
    release_by: SimTime,
}

/// Holds randomly chosen packets and re-inserts them out of order, with
/// bounded displacement. Scriptable: [`set_window`](Self::set_window)
/// overrides the probability/displacement for the duration of a scripted
/// reorder window and [`clear_window`](Self::clear_window) restores the
/// base configuration.
#[derive(Debug)]
pub struct ReorderStage {
    base: ReorderConfig,
    chance: f64,
    max_displacement: u64,
    rng: SimRng,
    held: Vec<Held>,
    stats: ReorderStats,
}

impl ReorderStage {
    /// Create a stage with its own random stream.
    pub fn new(config: ReorderConfig, rng: SimRng) -> Self {
        ReorderStage {
            chance: config.chance,
            max_displacement: config.max_displacement.max(1),
            base: config,
            rng,
            held: Vec::new(),
            stats: ReorderStats::default(),
        }
    }

    /// Override probability and displacement (scripted reorder window).
    pub fn set_window(&mut self, chance: f64, max_displacement: u64) {
        self.chance = chance;
        self.max_displacement = max_displacement.max(1);
    }

    /// Restore the base configuration after a scripted window ends.
    pub fn clear_window(&mut self) {
        self.chance = self.base.chance;
        self.max_displacement = self.base.max_displacement.max(1);
    }

    /// Counters so far.
    pub fn stats(&self) -> ReorderStats {
        self.stats
    }

    /// Packets currently held back.
    pub fn held_len(&self) -> usize {
        self.held.len()
    }

    /// Offer one packet; returns the packets to deliver now, in order.
    pub fn offer(&mut self, now: SimTime, packet: Packet) -> Vec<Packet> {
        if self.held.len() < MAX_HELD && self.rng.chance(self.chance) {
            let remaining = self.rng.uniform_u64(1, self.max_displacement + 1);
            self.held.push(Held {
                packet,
                remaining,
                release_by: now + self.base.max_hold,
            });
            self.stats.held += 1;
            return Vec::new();
        }
        self.stats.passed += 1;
        let mut out = vec![packet];
        // Every delivered packet — including ones released by this very
        // loop — overtakes every held one, which keeps the displacement
        // bound tight: a packet held with displacement d appears at most
        // d positions past its in-order slot.
        let mut idx = 0;
        while idx < out.len() && !self.held.is_empty() {
            for h in &mut self.held {
                h.remaining -= 1;
            }
            let mut i = 0;
            while i < self.held.len() {
                if self.held[i].remaining == 0 {
                    out.push(self.held.remove(i).packet);
                    self.stats.released_by_count += 1;
                } else {
                    i += 1;
                }
            }
            idx += 1;
        }
        out
    }

    /// Release packets whose `max_hold` deadline has passed.
    pub fn flush_due(&mut self, now: SimTime) -> Vec<Packet> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.held.len() {
            if self.held[i].release_by <= now {
                out.push(self.held.remove(i).packet);
                self.stats.released_by_time += 1;
            } else {
                i += 1;
            }
        }
        out
    }

    /// Earliest `max_hold` deadline among held packets.
    pub fn next_release(&self) -> Option<SimTime> {
        self.held.iter().map(|h| h.release_by).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;
    use bytes::Bytes;
    use rpav_sim::RngSet;

    fn pkt(seq: u64) -> Packet {
        Packet::new(
            seq,
            Bytes::from_static(&[0u8; 32]),
            PacketKind::Media,
            SimTime::ZERO,
        )
    }

    #[test]
    fn transparent_stage_is_fifo_and_drawless() {
        let set = RngSet::new(11);
        let mut stage = ReorderStage::new(ReorderConfig::default(), set.stream("re"));
        for i in 0..100 {
            let out = stage.offer(SimTime::from_millis(i), pkt(i));
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].seq, i);
        }
        assert_eq!(stage.stats().passed, 100);
        assert_eq!(stage.stats().held, 0);
        // chance == 0 consumes no draws: the stream is untouched.
        let mut fresh = set.stream("re");
        let mut used = stage.rng;
        assert_eq!(fresh.uniform_u64(0, 1 << 30), used.uniform_u64(0, 1 << 30));
    }

    #[test]
    fn displacement_is_bounded() {
        let cfg = ReorderConfig {
            chance: 0.2,
            max_displacement: 5,
            max_hold: SimDuration::from_secs(10),
        };
        let mut stage = ReorderStage::new(cfg, RngSet::new(12).stream("re"));
        let mut delivered = Vec::new();
        for i in 0..2_000u64 {
            delivered.extend(stage.offer(SimTime::from_millis(i), pkt(i)));
        }
        let mut reordered = 0usize;
        for (pos, p) in delivered.iter().enumerate() {
            // A packet with sequence s can appear at most max_displacement
            // positions later than in-order delivery would place it.
            let natural = p.seq as usize;
            assert!(
                pos <= natural + cfg.max_displacement as usize,
                "seq {} at position {pos}: displacement beyond bound",
                p.seq
            );
            if pos != natural {
                reordered += 1;
            }
        }
        assert!(reordered > 0, "20% hold chance must produce reordering");
    }

    #[test]
    fn all_packets_conserved_after_flush() {
        let cfg = ReorderConfig {
            chance: 0.5,
            max_displacement: 8,
            max_hold: SimDuration::from_millis(50),
        };
        let mut stage = ReorderStage::new(cfg, RngSet::new(13).stream("re"));
        let mut got = Vec::new();
        for i in 0..500u64 {
            got.extend(stage.offer(SimTime::from_millis(i), pkt(i)));
        }
        got.extend(stage.flush_due(SimTime::from_secs(10)));
        assert_eq!(stage.held_len(), 0);
        let mut seqs: Vec<u64> = got.iter().map(|p| p.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn timeout_releases_held_packet_during_lull() {
        let cfg = ReorderConfig {
            chance: 1.0,
            max_displacement: 100,
            max_hold: SimDuration::from_millis(50),
        };
        let mut stage = ReorderStage::new(cfg, RngSet::new(14).stream("re"));
        assert!(stage.offer(SimTime::ZERO, pkt(0)).is_empty());
        assert_eq!(stage.next_release(), Some(SimTime::from_millis(50)));
        assert!(stage.flush_due(SimTime::from_millis(49)).is_empty());
        let out = stage.flush_due(SimTime::from_millis(50));
        assert_eq!(out.len(), 1);
        assert_eq!(stage.stats().released_by_time, 1);
    }

    #[test]
    fn window_override_and_clear() {
        let mut stage = ReorderStage::new(ReorderConfig::default(), RngSet::new(15).stream("re"));
        stage.set_window(1.0, 2);
        assert!(stage.offer(SimTime::ZERO, pkt(0)).is_empty());
        stage.clear_window();
        // Base chance is 0: everything passes (and releases the held one
        // once two packets have overtaken it).
        let a = stage.offer(SimTime::ZERO, pkt(1));
        assert_eq!(a.iter().map(|p| p.seq).collect::<Vec<_>>(), vec![1]);
        let b = stage.offer(SimTime::ZERO, pkt(2));
        assert_eq!(b.iter().map(|p| p.seq).collect::<Vec<_>>(), vec![2, 0]);
        assert_eq!(stage.held_len(), 0);
    }
}
