//! Fault injection: loss (i.i.d. and bursty), duplication, corruption.
//!
//! Mirrors the fault-injection switches the smoltcp examples expose
//! (`--drop-chance`, `--corrupt-chance`, …) so scenarios can degrade a path
//! in controlled ways. The LTE simulator uses the Gilbert–Elliott component
//! for the paper's observation that "most of the observed packet drops
//! occurred consecutively" (§4.1) at an overall PER of 0.06–0.07 %.

use bytes::Bytes;
use rpav_sim::SimRng;

use crate::packet::Packet;

/// Flip 1–3 random bits of the payload and mark the packet corrupted.
///
/// Used by the [`FaultInjector`] and by scripted corruption windows; the
/// RNG is consumed **only** when a corruption fault actually fires, so
/// configs with `corrupt_chance == 0` leave the random stream untouched.
pub fn corrupt_payload(packet: &mut Packet, rng: &mut SimRng) {
    packet.corrupted = true;
    if packet.payload.is_empty() {
        return;
    }
    let mut bytes = packet.payload.to_vec();
    let flips = rng.uniform_u64(1, 4);
    for _ in 0..flips {
        let pos = rng.uniform_u64(0, bytes.len() as u64) as usize;
        let bit = rng.uniform_u64(0, 8) as u32;
        bytes[pos] ^= 1u8 << bit;
    }
    packet.payload = Bytes::from(bytes);
}

/// Two-state Gilbert–Elliott burst-loss process.
///
/// In the Good state packets are lost with `p_loss_good` (usually 0); in the
/// Bad state with `p_loss_bad` (usually ≈1, producing consecutive drops).
/// Transitions are evaluated per packet.
#[derive(Clone, Debug)]
pub struct GilbertElliott {
    /// P(Good → Bad) per packet.
    pub p_good_to_bad: f64,
    /// P(Bad → Good) per packet.
    pub p_bad_to_good: f64,
    /// Loss probability while Good.
    pub p_loss_good: f64,
    /// Loss probability while Bad.
    pub p_loss_bad: f64,
    in_bad: bool,
}

impl GilbertElliott {
    /// Create a process starting in the Good state.
    pub fn new(p_good_to_bad: f64, p_bad_to_good: f64, p_loss_good: f64, p_loss_bad: f64) -> Self {
        GilbertElliott {
            p_good_to_bad,
            p_bad_to_good,
            p_loss_good,
            p_loss_bad,
            in_bad: false,
        }
    }

    /// A disabled process that never loses anything.
    pub fn off() -> Self {
        GilbertElliott::new(0.0, 1.0, 0.0, 0.0)
    }

    /// Steady-state average loss rate of the process.
    pub fn mean_loss_rate(&self) -> f64 {
        let denom = self.p_good_to_bad + self.p_bad_to_good;
        if denom <= 0.0 {
            return self.p_loss_good;
        }
        let pi_bad = self.p_good_to_bad / denom;
        pi_bad * self.p_loss_bad + (1.0 - pi_bad) * self.p_loss_good
    }

    /// Advance one packet; returns `true` if that packet is lost.
    pub fn step(&mut self, rng: &mut SimRng) -> bool {
        if self.in_bad {
            if rng.chance(self.p_bad_to_good) {
                self.in_bad = false;
            }
        } else if rng.chance(self.p_good_to_bad) {
            self.in_bad = true;
        }
        let p = if self.in_bad {
            self.p_loss_bad
        } else {
            self.p_loss_good
        };
        rng.chance(p)
    }
}

/// Configuration of a [`FaultInjector`].
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Independent per-packet drop probability.
    pub drop_chance: f64,
    /// Per-packet duplication probability.
    pub duplicate_chance: f64,
    /// Per-packet payload-corruption probability. A firing corruption
    /// fault flips real payload bits (see [`corrupt_payload`]) and sets
    /// the packet's `corrupted` flag; what happens next is the receiver's
    /// choice — model a UDP checksum (drop) or feed the damaged bytes to
    /// the hardened wire parsers and count the fallout.
    pub corrupt_chance: f64,
    /// Burst-loss process layered on top of `drop_chance`.
    pub burst: GilbertElliott,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_chance: 0.0,
            duplicate_chance: 0.0,
            corrupt_chance: 0.0,
            burst: GilbertElliott::off(),
        }
    }
}

/// Outcome of offering one packet to the injector.
#[derive(Debug)]
pub enum FaultOutcome {
    /// Deliver the packet (possibly marked corrupted).
    Pass(Packet),
    /// Deliver the packet twice.
    Duplicate(Packet, Packet),
    /// The packet is gone.
    Drop,
}

/// Applies a [`FaultConfig`] to a packet stream.
#[derive(Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: SimRng,
    dropped: u64,
    duplicated: u64,
    corrupted: u64,
    passed: u64,
}

impl FaultInjector {
    /// Create an injector with its own random stream.
    pub fn new(config: FaultConfig, rng: SimRng) -> Self {
        FaultInjector {
            config,
            rng,
            dropped: 0,
            duplicated: 0,
            corrupted: 0,
            passed: 0,
        }
    }

    /// A no-op injector.
    pub fn transparent(rng: SimRng) -> Self {
        FaultInjector::new(FaultConfig::default(), rng)
    }

    /// Offer one packet.
    pub fn offer(&mut self, mut packet: Packet) -> FaultOutcome {
        if self.rng.chance(self.config.drop_chance) || self.config.burst.step(&mut self.rng) {
            self.dropped += 1;
            return FaultOutcome::Drop;
        }
        if self.rng.chance(self.config.corrupt_chance) {
            corrupt_payload(&mut packet, &mut self.rng);
            self.corrupted += 1;
        }
        if self.rng.chance(self.config.duplicate_chance) {
            self.duplicated += 1;
            let copy = packet.clone();
            self.passed += 2;
            return FaultOutcome::Duplicate(packet, copy);
        }
        self.passed += 1;
        FaultOutcome::Pass(packet)
    }

    /// (passed, dropped, duplicated, corrupted) counters.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (self.dropped, self.duplicated, self.corrupted, self.passed)
    }

    /// Observed drop fraction so far.
    pub fn drop_rate(&self) -> f64 {
        let total = self.dropped + self.passed;
        if total == 0 {
            0.0
        } else {
            self.dropped as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, PacketKind};
    use bytes::Bytes;
    use proptest::prelude::*;
    use rpav_sim::{RngSet, SimTime};

    fn pkt(seq: u64) -> Packet {
        Packet::new(
            seq,
            Bytes::from_static(&[0u8; 64]),
            PacketKind::Media,
            SimTime::ZERO,
        )
    }

    #[test]
    fn transparent_passes_everything() {
        let mut inj = FaultInjector::transparent(RngSet::new(1).stream("f"));
        for i in 0..1000 {
            match inj.offer(pkt(i)) {
                FaultOutcome::Pass(p) => assert!(!p.corrupted),
                _ => panic!("transparent injector must pass"),
            }
        }
        assert_eq!(inj.drop_rate(), 0.0);
    }

    #[test]
    fn iid_drop_rate_matches_config() {
        let cfg = FaultConfig {
            drop_chance: 0.2,
            ..Default::default()
        };
        let mut inj = FaultInjector::new(cfg, RngSet::new(2).stream("f"));
        let n = 50_000;
        for i in 0..n {
            let _ = inj.offer(pkt(i));
        }
        assert!((inj.drop_rate() - 0.2).abs() < 0.01, "{}", inj.drop_rate());
    }

    #[test]
    fn gilbert_elliott_produces_bursts() {
        // Rare bad state with certain loss inside it.
        let mut ge = GilbertElliott::new(0.001, 0.3, 0.0, 1.0);
        let mut rng = RngSet::new(3).stream("ge");
        let mut losses = Vec::new();
        for i in 0..200_000u64 {
            if ge.step(&mut rng) {
                losses.push(i);
            }
        }
        assert!(!losses.is_empty());
        // Count how many losses are adjacent to another loss: in a bursty
        // process the majority are.
        let adjacent = losses.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(
            adjacent as f64 >= 0.4 * losses.len() as f64,
            "losses were not bursty: {adjacent}/{}",
            losses.len()
        );
        // Mean loss rate should be near the analytic steady state.
        let expected = ge.mean_loss_rate();
        let observed = losses.len() as f64 / 200_000.0;
        assert!((observed - expected).abs() < expected * 0.3);
    }

    #[test]
    fn duplication_emits_two() {
        let cfg = FaultConfig {
            duplicate_chance: 1.0,
            ..Default::default()
        };
        let mut inj = FaultInjector::new(cfg, RngSet::new(4).stream("f"));
        match inj.offer(pkt(7)) {
            FaultOutcome::Duplicate(a, b) => {
                assert_eq!(a.seq, 7);
                assert_eq!(b.seq, 7);
            }
            _ => panic!("expected duplicate"),
        }
    }

    #[test]
    fn corruption_marks_packet() {
        let cfg = FaultConfig {
            corrupt_chance: 1.0,
            ..Default::default()
        };
        let mut inj = FaultInjector::new(cfg, RngSet::new(5).stream("f"));
        match inj.offer(pkt(1)) {
            FaultOutcome::Pass(p) => assert!(p.corrupted),
            _ => panic!("expected pass"),
        }
    }

    #[test]
    fn mean_loss_rate_analytics() {
        let ge = GilbertElliott::new(0.01, 0.99, 0.0, 1.0);
        let pi_bad = 0.01 / (0.01 + 0.99);
        assert!((ge.mean_loss_rate() - pi_bad).abs() < 1e-12);
        assert_eq!(GilbertElliott::off().mean_loss_rate(), 0.0);
    }

    proptest! {
        /// The analytic steady-state loss rate matches what the process
        /// empirically produces, across the parameter space.
        #[test]
        fn prop_mean_loss_rate_matches_empirical(
            g2b in 0.002f64..0.2,
            b2g in 0.1f64..0.9,
            loss_bad in 0.3f64..1.0,
            seed in any::<u64>(),
        ) {
            let mut ge = GilbertElliott::new(g2b, b2g, 0.0, loss_bad);
            let mut rng = RngSet::new(seed).stream("prop.ge");
            let n = 100_000u64;
            let mut lost = 0u64;
            for _ in 0..n {
                if ge.step(&mut rng) {
                    lost += 1;
                }
            }
            let empirical = lost as f64 / n as f64;
            let expected = ge.mean_loss_rate();
            prop_assert!(
                (empirical - expected).abs() < 0.15 * expected + 0.005,
                "empirical {} vs analytic {} (g2b {} b2g {} p_bad {})",
                empirical, expected, g2b, b2g, loss_bad
            );
        }
    }
}
