//! The packet type moved through every emulated stage.

use bytes::Bytes;
use rpav_sim::SimTime;

/// Classification of a packet for accounting and tracing.
///
/// The emulation treats all kinds identically (bytes are bytes); the kinds
/// exist so the metric collectors can attribute loss and latency to the
/// media stream vs. the RTCP feedback stream, as the paper does.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// RTP media (video) packet.
    Media,
    /// RTCP feedback packet (transport-wide CC or RFC 8888).
    Feedback,
    /// Active-measurement probe (the Fig. 13 ICMP-like echo workload).
    Probe,
}

/// A packet in flight through the emulated network.
///
/// `payload` carries the real serialised upper-layer bytes (RTP/RTCP wire
/// format); `size` is the on-the-wire size including lower-layer overhead,
/// which is what serialisation delay and queue occupancy are computed from.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Globally unique (per direction) transport-level sequence number.
    pub seq: u64,
    /// On-the-wire size in bytes, including IP/UDP overhead.
    pub size: usize,
    /// Serialised upper-layer payload.
    pub payload: Bytes,
    /// What this packet carries (for accounting only).
    pub kind: PacketKind,
    /// When the original sender handed the packet to the network.
    pub sent_at: SimTime,
    /// Set when a corruption fault fired on this packet; its `payload`
    /// really had bits flipped (see `fault::corrupt_payload`). Receivers
    /// decide what that means: drop it as a UDP-checksum failure, or feed
    /// the damaged bytes to the wire parsers and count the `ParseError`s.
    pub corrupted: bool,
}

/// IP + UDP header overhead added to every payload, in bytes.
pub const IP_UDP_OVERHEAD: usize = 20 + 8;

impl Packet {
    /// Build a media/feedback/probe packet around `payload`, adding IP/UDP
    /// overhead to the wire size.
    pub fn new(seq: u64, payload: Bytes, kind: PacketKind, sent_at: SimTime) -> Self {
        let size = payload.len() + IP_UDP_OVERHEAD;
        Packet {
            seq,
            size,
            payload,
            kind,
            sent_at,
            corrupted: false,
        }
    }

    /// Wire size in bits (for serialisation-delay math).
    pub fn size_bits(&self) -> u64 {
        self.size as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_adds_ip_udp_overhead() {
        let p = Packet::new(
            1,
            Bytes::from_static(&[0u8; 1200]),
            PacketKind::Media,
            SimTime::ZERO,
        );
        assert_eq!(p.size, 1200 + IP_UDP_OVERHEAD);
        assert_eq!(p.size_bits(), (1200 + IP_UDP_OVERHEAD) as u64 * 8);
        assert!(!p.corrupted);
    }
}
