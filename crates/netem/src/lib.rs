//! Packet-level network emulation substrate.
//!
//! This crate provides the generic transport machinery the LTE simulator
//! (`rpav-lte`) and the WAN leg are assembled from:
//!
//! * [`Packet`] — the unit every stage of the pipeline moves around: opaque
//!   payload bytes plus bookkeeping (sequence number, wire size, send time).
//! * [`DropTailQueue`] — a byte/packet bounded FIFO with drop statistics;
//!   the deep, bufferbloated eNodeB uplink queue is one of these with a
//!   large byte limit.
//! * [`BottleneckLink`] — serialisation at a (time-varying) bit-rate
//!   followed by propagation delay. The LTE air interface drives the rate
//!   from SINR; the WAN leg uses a fixed high rate.
//! * [`DelayPipe`] — pure delay with optional jitter; FIFO-preserving by
//!   default, with an explicit [`DeliveryOrder`] switch for routes that
//!   deliver as scheduled.
//! * [`FaultInjector`] — i.i.d. and Gilbert–Elliott burst loss, duplication
//!   and payload bit-corruption, mirroring the fault-injection options the
//!   smoltcp examples expose.
//! * [`ReorderStage`] — bounded-displacement packet reordering, composable
//!   onto a path exit and scriptable via reorder windows.
//! * [`Path`] — a composition of stages with a single `poll` interface.
//! * [`FaultScript`] / [`OutageScheduler`] — deterministic scripted fault
//!   campaigns (timed blackouts, feedback-only loss, delay spikes,
//!   duplication/corruption/reorder windows, altitude-keyed coverage
//!   holes) composable onto any path.
//!
//! All components follow the same poll-based idiom: `enqueue(now, packet)`
//! to push, `poll(now) -> Option<Packet>` to drain deliveries that are due,
//! and `next_wake()` to tell the event loop when to come back.

pub mod fault;
pub mod link;
pub mod packet;
pub mod path;
pub mod queue;
pub mod reorder;
pub mod script;

pub use fault::{corrupt_payload, FaultConfig, FaultInjector, GilbertElliott};
pub use link::{BottleneckLink, DelayPipe, DeliveryOrder};
pub use packet::{Packet, PacketKind};
pub use path::Path;
pub use queue::{DropTailQueue, QueueStats};
pub use reorder::{ReorderConfig, ReorderStage, ReorderStats};
pub use script::{FaultClause, FaultScript, OutageScheduler, ScriptStats};
