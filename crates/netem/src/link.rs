//! Rate-limited bottleneck links and delay pipes.

use std::collections::VecDeque;

use rpav_sim::{EventQueue, SimDuration, SimRng, SimTime};

use crate::packet::Packet;
use crate::queue::{DropTailQueue, QueueStats};

/// Delivery buffer for a FIFO delay stage. Both in-order stages clamp every
/// delivery time to a monotonic floor before scheduling, so arrival order
/// equals delivery order and a deque replaces the binary heap a general
/// [`EventQueue`] needs — no comparisons, no sift, O(1) at both ends on the
/// per-packet hot path.
#[derive(Debug, Default)]
struct FifoOutbox {
    q: VecDeque<(SimTime, Packet)>,
}

impl FifoOutbox {
    fn new() -> Self {
        FifoOutbox { q: VecDeque::new() }
    }

    fn schedule(&mut self, at: SimTime, packet: Packet) {
        debug_assert!(
            self.q.back().is_none_or(|(t, _)| *t <= at),
            "FIFO outbox requires nondecreasing delivery times"
        );
        self.q.push_back((at, packet));
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.q.front().map(|(t, _)| *t)
    }

    fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, Packet)> {
        if self.peek_time()? <= now {
            self.q.pop_front()
        } else {
            None
        }
    }

    fn len(&self) -> usize {
        self.q.len()
    }
}

/// Whether a delay stage preserves FIFO order or delivers packets at
/// whatever instant its jitter draw schedules them.
///
/// The cellular radio leg is modelled in-order (`InOrder`): LTE RLC-AM
/// reassembles and delivers in sequence, so radio-side jitter manifests as
/// delay, never as reordering. The wired WAN leg defaults to `InOrder` too
/// (the paper's single-path EPC→AWS route gave no evidence of reordering),
/// but multi-homed or load-balanced routes do reorder — set `AsScheduled`
/// to let jitter draws invert packet order, or use a
/// [`ReorderStage`](crate::reorder::ReorderStage) for explicit bounded
/// displacement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryOrder {
    /// Delivery times are clamped to a monotonic floor: a packet never
    /// overtakes one enqueued before it.
    InOrder,
    /// Delivery happens exactly when the jitter draw says; shrinking
    /// delays let later packets overtake earlier ones.
    AsScheduled,
}

/// A store-and-forward link: packets wait in a drop-tail queue, serialise at
/// the link rate, then propagate for a fixed delay.
///
/// The rate is settable at any time ([`BottleneckLink::set_rate_bps`]) which
/// is how the LTE channel imposes the SINR-derived capacity, and the link
/// can be stalled ([`BottleneckLink::pause_until`]) which is how handover
/// execution interruptions manifest: nothing is lost, everything queues —
/// exactly the "deep buffers, latency instead of loss" behaviour the paper
/// measures (§4.1).
#[derive(Debug)]
pub struct BottleneckLink {
    rate_bps: f64,
    prop_delay: SimDuration,
    queue: DropTailQueue,
    /// Packet currently serialising and the instant it finishes.
    in_service: Option<(Packet, SimTime)>,
    /// Packets past the serialiser, keyed by delivery time (monotone via
    /// the `last_delivery` floor, hence FIFO).
    out: FifoOutbox,
    paused_until: SimTime,
    /// Extra per-packet propagation (e.g. HARQ retransmissions); settable.
    extra_prop: SimDuration,
    /// FIFO floor on delivery times. The bottleneck models the radio leg,
    /// where RLC-AM delivers strictly in order, so this stage is
    /// unconditionally [`DeliveryOrder::InOrder`]: a shrinking extra delay
    /// must not reorder packets. Reordering is modelled explicitly —
    /// downstream — via [`DelayPipe::with_order`] or a
    /// [`ReorderStage`](crate::reorder::ReorderStage), never here.
    last_delivery: SimTime,
    /// Instant the serialiser last became idle; the next packet starts at
    /// `max(free_at, paused_until)` so the link is work-conserving in
    /// virtual time even though it is advanced lazily.
    free_at: SimTime,
}

impl BottleneckLink {
    /// Create a link with the given initial rate, one-way propagation delay,
    /// and queue bounds.
    pub fn new(
        rate_bps: f64,
        prop_delay: SimDuration,
        max_queue_bytes: usize,
        max_queue_packets: usize,
    ) -> Self {
        BottleneckLink {
            rate_bps,
            prop_delay,
            queue: DropTailQueue::new(max_queue_bytes, max_queue_packets),
            in_service: None,
            out: FifoOutbox::new(),
            paused_until: SimTime::ZERO,
            extra_prop: SimDuration::ZERO,
            last_delivery: SimTime::ZERO,
            free_at: SimTime::ZERO,
        }
    }

    /// Set the extra per-packet propagation delay applied on top of the
    /// base propagation (air-interface retransmissions).
    pub fn set_extra_prop(&mut self, extra: SimDuration) {
        self.extra_prop = extra;
    }

    /// Change the serialisation rate at `now`. Applies to packets that start
    /// serialising after this call; the packet currently in service keeps
    /// its original finish time (the LTE channel re-rates every scheduling
    /// tick, so the error window is one packet).
    pub fn set_rate_bps(&mut self, now: SimTime, rate_bps: f64) {
        self.advance(now);
        let was_zero = self.rate_bps <= 0.0;
        self.rate_bps = rate_bps.max(0.0);
        if was_zero && self.rate_bps > 0.0 {
            // Packets that waited out a zero-rate period start now, not at
            // the stale idle time.
            self.free_at = self.free_at.max(now);
        }
        self.advance(now);
    }

    /// Current serialisation rate in bits/s.
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    /// Stall the serialiser until `until` (e.g. during handover execution).
    /// The packet in service resumes afterwards with its remaining
    /// serialisation time intact; queued packets simply wait.
    pub fn pause_until(&mut self, now: SimTime, until: SimTime) {
        if until <= self.paused_until {
            return;
        }
        self.paused_until = until;
        if let Some((_, finish)) = &mut self.in_service {
            let remaining = finish.saturating_since(now);
            *finish = until + remaining;
        }
    }

    /// True while the serialiser is stalled.
    pub fn is_paused(&self, now: SimTime) -> bool {
        now < self.paused_until
    }

    /// Offer a packet to the link. Returns `false` if the queue rejected it.
    pub fn enqueue(&mut self, now: SimTime, packet: Packet) -> bool {
        self.advance(now);
        if self.in_service.is_none() && self.queue.is_empty() {
            // The serialiser is idle with nothing pending, so it cannot have
            // been busy since `free_at`; the new packet starts no earlier
            // than its own arrival.
            self.free_at = self.free_at.max(now);
        }
        if !self.queue.push(packet) {
            return false;
        }
        self.advance(now);
        true
    }

    /// Serialisation time of `packet` at the current rate.
    fn service_time(&self, packet: &Packet) -> SimDuration {
        if self.rate_bps <= 0.0 {
            // A zero-rate link never finishes; model as a very long stall so
            // time still progresses if the rate recovers (re-rated below).
            return SimDuration::from_secs(3600);
        }
        SimDuration::from_secs_f64(packet.size_bits() as f64 / self.rate_bps)
    }

    /// Move completed serialisations into the propagation stage and start
    /// the next queued packet.
    fn advance(&mut self, now: SimTime) {
        loop {
            match self.in_service.take() {
                Some((pkt, finish)) if finish <= now => {
                    let deliver =
                        (finish + self.prop_delay + self.extra_prop).max(self.last_delivery);
                    self.last_delivery = deliver;
                    self.out.schedule(deliver, pkt);
                    self.free_at = finish;
                }
                Some(in_flight) => {
                    self.in_service = Some(in_flight);
                    return;
                }
                None => {}
            }
            // Serialiser idle: start the next packet if allowed.
            if self.rate_bps <= 0.0 {
                return;
            }
            let Some(pkt) = self.queue.pop() else { return };
            let start = self.free_at.max(self.paused_until);
            let finish = start + self.service_time(&pkt);
            self.in_service = Some((pkt, finish));
        }
    }

    /// Drain the next packet whose delivery time has arrived.
    pub fn poll(&mut self, now: SimTime) -> Option<Packet> {
        self.poll_with_time(now).map(|(_, p)| p)
    }

    /// Like [`BottleneckLink::poll`] but also reports the instant the packet
    /// actually exited the link (≤ `now`), so downstream stages can be fed
    /// at the correct virtual time even when polled late.
    pub fn poll_with_time(&mut self, now: SimTime) -> Option<(SimTime, Packet)> {
        self.advance(now);
        self.out.pop_due(now)
    }

    /// The next instant at which `poll` could make progress.
    pub fn next_wake(&self) -> Option<SimTime> {
        let service = self.in_service.as_ref().map(|(_, f)| *f);
        let delivery = self.out.peek_time();
        match (service, delivery) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => {
                if self.queue.is_empty() {
                    None
                } else {
                    // Queue is non-empty but the serialiser could not start
                    // (zero rate): wake when the pause lifts, or never if
                    // the rate is zero without a pause (caller re-rates).
                    Some(self.paused_until)
                }
            }
        }
    }

    /// Bytes sitting in the queue (excludes the packet in service).
    pub fn queued_bytes(&self) -> usize {
        self.queue.bytes()
    }

    /// Packets sitting in the queue (excludes the packet in service).
    pub fn queued_packets(&self) -> usize {
        self.queue.len()
    }

    /// Queue counters.
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Drop everything queued (not the packet in service). Returns count.
    pub fn flush_queue(&mut self) -> usize {
        self.queue.flush()
    }

    /// Estimated delay a new arrival would face right now: queue drain plus
    /// own serialisation plus propagation (plus residual pause).
    pub fn estimated_delay(&self, now: SimTime, size_bytes: usize) -> SimDuration {
        let mut d = self.prop_delay;
        d += self.paused_until.saturating_since(now);
        if self.rate_bps > 0.0 {
            let backlog_bits = (self.queue.bytes() + size_bytes) as f64 * 8.0;
            d += SimDuration::from_secs_f64(backlog_bits / self.rate_bps);
            if let Some((pkt, finish)) = &self.in_service {
                let _ = pkt;
                d += finish.saturating_since(now);
            }
        }
        d
    }
}

/// A delay stage with optional jitter: models the wired WAN leg between
/// the PGW and the AWS server (§3.1: ≈1 000 km, lowest RTT ≈35 ms
/// including the radio leg). Whether jitter may reorder packets is an
/// explicit [`DeliveryOrder`] choice; [`DelayPipe::new`] keeps the
/// historical FIFO-preserving behaviour.
#[derive(Debug)]
pub struct DelayPipe {
    base_delay: SimDuration,
    jitter_sigma: SimDuration,
    rng: SimRng,
    out: DelayOutbox,
    /// FIFO floor on delivery times, applied only when `ordering` is
    /// [`DeliveryOrder::InOrder`].
    last_delivery: SimTime,
    ordering: DeliveryOrder,
}

/// In-order pipes schedule monotone delivery times (see the FIFO floor in
/// [`DelayPipe::enqueue`]) and get the cheap deque; as-scheduled pipes can
/// invert delivery order and need the real priority queue.
#[derive(Debug)]
enum DelayOutbox {
    Fifo(FifoOutbox),
    Heap(EventQueue<Packet>),
}

impl DelayOutbox {
    fn schedule(&mut self, at: SimTime, packet: Packet) {
        match self {
            DelayOutbox::Fifo(q) => q.schedule(at, packet),
            DelayOutbox::Heap(q) => q.schedule(at, packet),
        }
    }

    fn peek_time(&self) -> Option<SimTime> {
        match self {
            DelayOutbox::Fifo(q) => q.peek_time(),
            DelayOutbox::Heap(q) => q.peek_time(),
        }
    }

    fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, Packet)> {
        match self {
            DelayOutbox::Fifo(q) => q.pop_due(now),
            DelayOutbox::Heap(q) => q.pop_due(now),
        }
    }

    fn len(&self) -> usize {
        match self {
            DelayOutbox::Fifo(q) => q.len(),
            DelayOutbox::Heap(q) => q.len(),
        }
    }
}

impl DelayPipe {
    /// Create a FIFO-preserving pipe adding `base_delay` plus
    /// `N(0, jitter_sigma)` of jitter (truncated below at half the base
    /// delay) to every packet. Equivalent to
    /// [`with_order`](Self::with_order) + [`DeliveryOrder::InOrder`].
    pub fn new(base_delay: SimDuration, jitter_sigma: SimDuration, rng: SimRng) -> Self {
        DelayPipe::with_order(base_delay, jitter_sigma, rng, DeliveryOrder::InOrder)
    }

    /// Create a pipe with an explicit delivery-order policy.
    pub fn with_order(
        base_delay: SimDuration,
        jitter_sigma: SimDuration,
        rng: SimRng,
        ordering: DeliveryOrder,
    ) -> Self {
        DelayPipe {
            base_delay,
            jitter_sigma,
            rng,
            out: match ordering {
                DeliveryOrder::InOrder => DelayOutbox::Fifo(FifoOutbox::new()),
                DeliveryOrder::AsScheduled => DelayOutbox::Heap(EventQueue::new()),
            },
            last_delivery: SimTime::ZERO,
            ordering,
        }
    }

    /// The pipe's delivery-order policy.
    pub fn ordering(&self) -> DeliveryOrder {
        self.ordering
    }

    /// Push a packet into the pipe.
    pub fn enqueue(&mut self, now: SimTime, packet: Packet) {
        let jitter = if self.jitter_sigma.is_zero() {
            0.0
        } else {
            self.rng.normal(0.0, self.jitter_sigma.as_secs_f64())
        };
        let delay_s =
            (self.base_delay.as_secs_f64() + jitter).max(self.base_delay.as_secs_f64() * 0.5);
        let mut deliver = now + SimDuration::from_secs_f64(delay_s);
        if self.ordering == DeliveryOrder::InOrder {
            // FIFO: never deliver before a previously enqueued packet.
            deliver = deliver.max(self.last_delivery);
        }
        self.last_delivery = deliver;
        self.out.schedule(deliver, packet);
    }

    /// Drain the next due packet.
    pub fn poll(&mut self, now: SimTime) -> Option<Packet> {
        self.out.pop_due(now).map(|(_, p)| p)
    }

    /// Next delivery instant.
    pub fn next_wake(&self) -> Option<SimTime> {
        self.out.peek_time()
    }

    /// Packets currently inside the pipe.
    pub fn in_flight(&self) -> usize {
        self.out.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, PacketKind, IP_UDP_OVERHEAD};
    use bytes::Bytes;
    use rpav_sim::RngSet;

    fn pkt(seq: u64, payload_len: usize) -> Packet {
        Packet::new(
            seq,
            Bytes::from(vec![0u8; payload_len]),
            PacketKind::Media,
            SimTime::ZERO,
        )
    }

    /// 1000 wire bytes at 8 Mbps = 1 ms serialisation.
    fn link_8mbps() -> BottleneckLink {
        BottleneckLink::new(
            8_000_000.0,
            SimDuration::from_millis(10),
            usize::MAX,
            usize::MAX,
        )
    }

    #[test]
    fn serialisation_plus_propagation() {
        let mut link = link_8mbps();
        let t0 = SimTime::from_secs(1);
        link.enqueue(t0, pkt(0, 1000 - IP_UDP_OVERHEAD));
        // Not there before 11 ms.
        assert!(link.poll(t0 + SimDuration::from_micros(10_999)).is_none());
        let got = link.poll(t0 + SimDuration::from_millis(11)).unwrap();
        assert_eq!(got.seq, 0);
    }

    #[test]
    fn back_to_back_packets_serialise_sequentially() {
        let mut link = link_8mbps();
        let t0 = SimTime::from_secs(1);
        link.enqueue(t0, pkt(0, 1000 - IP_UDP_OVERHEAD));
        link.enqueue(t0, pkt(1, 1000 - IP_UDP_OVERHEAD));
        // First at t0+11ms, second at t0+12ms.
        let t1 = t0 + SimDuration::from_millis(11);
        assert_eq!(link.poll(t1).unwrap().seq, 0);
        assert!(link.poll(t1).is_none());
        let t2 = t0 + SimDuration::from_millis(12);
        assert_eq!(link.poll(t2).unwrap().seq, 1);
    }

    #[test]
    fn pause_stalls_and_resumes() {
        let mut link = link_8mbps();
        let t0 = SimTime::from_secs(1);
        link.enqueue(t0, pkt(0, 1000 - IP_UDP_OVERHEAD));
        // Pause 500 ms in the middle of serialisation (0.5 ms in).
        let t_pause = t0 + SimDuration::from_micros(500);
        link.pause_until(t_pause, t_pause + SimDuration::from_millis(500));
        // Original delivery would be t0+11ms; now remaining 0.5ms of
        // serialisation resumes at t_pause+500ms.
        let expected = t_pause
            + SimDuration::from_millis(500)
            + SimDuration::from_micros(500)
            + SimDuration::from_millis(10);
        assert!(link.poll(expected - SimDuration::from_micros(1)).is_none());
        assert_eq!(link.poll(expected).unwrap().seq, 0);
    }

    #[test]
    fn rate_change_applies_to_next_packet() {
        let mut link = link_8mbps();
        let t0 = SimTime::from_secs(1);
        link.enqueue(t0, pkt(0, 1000 - IP_UDP_OVERHEAD));
        link.set_rate_bps(t0, 80_000_000.0); // 10x faster
        link.enqueue(t0, pkt(1, 1000 - IP_UDP_OVERHEAD));
        // pkt0 keeps 1ms service; pkt1 then takes 0.1ms.
        let t_pkt1 = t0 + SimDuration::from_micros(1_100) + SimDuration::from_millis(10);
        assert_eq!(link.poll(t0 + SimDuration::from_millis(11)).unwrap().seq, 0);
        assert_eq!(link.poll(t_pkt1).unwrap().seq, 1);
    }

    #[test]
    fn queue_bound_drops() {
        let mut link = BottleneckLink::new(8_000.0, SimDuration::ZERO, 2_200, usize::MAX);
        let t0 = SimTime::ZERO;
        // First goes into service immediately, next two queue, fourth drops.
        assert!(link.enqueue(t0, pkt(0, 1000 - IP_UDP_OVERHEAD)));
        assert!(link.enqueue(t0, pkt(1, 1000 - IP_UDP_OVERHEAD)));
        assert!(link.enqueue(t0, pkt(2, 1000 - IP_UDP_OVERHEAD)));
        assert!(!link.enqueue(t0, pkt(3, 1000 - IP_UDP_OVERHEAD)));
        assert_eq!(link.queue_stats().dropped, 1);
    }

    #[test]
    fn next_wake_tracks_progress() {
        let mut link = link_8mbps();
        assert_eq!(link.next_wake(), None);
        let t0 = SimTime::from_secs(1);
        link.enqueue(t0, pkt(0, 1000 - IP_UDP_OVERHEAD));
        // Wake at serialisation finish.
        assert_eq!(link.next_wake(), Some(t0 + SimDuration::from_millis(1)));
        // After serialisation completes, wake at delivery.
        link.advance(t0 + SimDuration::from_millis(1));
        assert_eq!(link.next_wake(), Some(t0 + SimDuration::from_millis(11)));
    }

    #[test]
    fn estimated_delay_counts_backlog() {
        let mut link = link_8mbps();
        let t0 = SimTime::ZERO;
        let idle = link.estimated_delay(t0, 1000);
        // 1 ms serialisation + 10 ms propagation.
        assert_eq!(idle, SimDuration::from_millis(11));
        link.enqueue(t0, pkt(0, 1000 - IP_UDP_OVERHEAD));
        link.enqueue(t0, pkt(1, 1000 - IP_UDP_OVERHEAD));
        let busy = link.estimated_delay(t0, 1000);
        assert!(busy > idle);
    }

    #[test]
    fn delay_pipe_preserves_order() {
        let rng = RngSet::new(9).stream("pipe");
        let mut pipe = DelayPipe::new(
            SimDuration::from_millis(10),
            SimDuration::from_millis(5),
            rng,
        );
        let t0 = SimTime::ZERO;
        for i in 0..200 {
            pipe.enqueue(t0 + SimDuration::from_micros(i * 100), pkt(i, 100));
        }
        let mut last = 0;
        let mut got = 0;
        let horizon = SimTime::from_secs(10);
        while let Some(p) = pipe.poll(horizon) {
            assert!(p.seq >= last);
            last = p.seq;
            got += 1;
        }
        assert_eq!(got, 200);
    }

    #[test]
    fn delay_pipe_as_scheduled_can_reorder() {
        // Same traffic through both policies: the FIFO pipe never inverts
        // sequence numbers, the as-scheduled pipe (with σ comparable to
        // the inter-arrival gap) must produce at least one inversion.
        let mk = |order| {
            DelayPipe::with_order(
                SimDuration::from_millis(10),
                SimDuration::from_millis(5),
                RngSet::new(9).stream("pipe"),
                order,
            )
        };
        let mut inversions = [0usize; 2];
        for (slot, order) in [DeliveryOrder::InOrder, DeliveryOrder::AsScheduled]
            .into_iter()
            .enumerate()
        {
            let mut pipe = mk(order);
            for i in 0..200 {
                pipe.enqueue(
                    SimTime::ZERO + SimDuration::from_micros(i * 100),
                    pkt(i, 100),
                );
            }
            let mut last = 0u64;
            let mut got = 0;
            while let Some(p) = pipe.poll(SimTime::from_secs(10)) {
                if p.seq < last {
                    inversions[slot] += 1;
                }
                last = last.max(p.seq);
                got += 1;
            }
            // Both policies conserve packets; only ordering differs.
            assert_eq!(got, 200);
        }
        assert_eq!(inversions[0], 0, "InOrder pipe must stay FIFO");
        assert!(
            inversions[1] > 0,
            "AsScheduled pipe with large jitter must reorder"
        );
    }

    #[test]
    fn delay_pipe_default_constructor_is_in_order() {
        let pipe = DelayPipe::new(
            SimDuration::from_millis(10),
            SimDuration::from_millis(5),
            RngSet::new(1).stream("p"),
        );
        assert_eq!(pipe.ordering(), DeliveryOrder::InOrder);
    }

    #[test]
    fn delay_pipe_zero_jitter_is_exact() {
        let rng = RngSet::new(9).stream("pipe2");
        let mut pipe = DelayPipe::new(SimDuration::from_millis(10), SimDuration::ZERO, rng);
        let t0 = SimTime::from_secs(5);
        pipe.enqueue(t0, pkt(0, 100));
        assert_eq!(pipe.next_wake(), Some(t0 + SimDuration::from_millis(10)));
        assert!(pipe.poll(t0 + SimDuration::from_micros(9_999)).is_none());
        assert!(pipe.poll(t0 + SimDuration::from_millis(10)).is_some());
    }
}
