//! A multi-stage unidirectional path.
//!
//! [`Path`] composes a fault injector, a bottleneck link and a delay pipe
//! into the canonical "access link + WAN" shape used for both directions of
//! the measurement pipeline:
//!
//! ```text
//! sender ──► FaultInjector ──► BottleneckLink (radio) ──► DelayPipe (WAN) ──► receiver
//! ```
//!
//! The owner drives the composition: `enqueue` at the entry, then `poll` in
//! a loop at each simulation step; internally packets cascade between stages
//! at their due times.

use rpav_sim::{SimDuration, SimRng, SimTime};

use crate::fault::{FaultConfig, FaultInjector, FaultOutcome};
use crate::link::{BottleneckLink, DelayPipe};
use crate::packet::Packet;
use crate::queue::QueueStats;

/// Fault injector + bottleneck + WAN pipe, in series.
#[derive(Debug)]
pub struct Path {
    faults: FaultInjector,
    pub(crate) bottleneck: BottleneckLink,
    wan: DelayPipe,
}

impl Path {
    /// Assemble a path.
    ///
    /// * `faults` — impairment applied before the bottleneck.
    /// * `bottleneck_rate_bps`, `bottleneck_delay`, `queue_bytes` — the
    ///   rate-limited access stage.
    /// * `wan_delay`, `wan_jitter` — the wired leg.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        fault_config: FaultConfig,
        fault_rng: SimRng,
        bottleneck_rate_bps: f64,
        bottleneck_delay: SimDuration,
        queue_bytes: usize,
        wan_delay: SimDuration,
        wan_jitter: SimDuration,
        wan_rng: SimRng,
    ) -> Self {
        Path {
            faults: FaultInjector::new(fault_config, fault_rng),
            bottleneck: BottleneckLink::new(
                bottleneck_rate_bps,
                bottleneck_delay,
                queue_bytes,
                usize::MAX,
            ),
            wan: DelayPipe::new(wan_delay, wan_jitter, wan_rng),
        }
    }

    /// Offer a packet at the path entry. Returns `false` if it was dropped
    /// immediately (fault or full queue).
    pub fn enqueue(&mut self, now: SimTime, packet: Packet) -> bool {
        match self.faults.offer(packet) {
            FaultOutcome::Drop => false,
            FaultOutcome::Pass(p) => self.bottleneck.enqueue(now, p),
            FaultOutcome::Duplicate(a, b) => {
                let ra = self.bottleneck.enqueue(now, a);
                let rb = self.bottleneck.enqueue(now, b);
                ra || rb
            }
        }
    }

    /// Drain one packet that has fully traversed the path, if due.
    pub fn poll(&mut self, now: SimTime) -> Option<Packet> {
        // Cascade: bottleneck output feeds the WAN pipe at the instant each
        // packet actually exited the bottleneck, not at the poll time.
        while let Some((exit, p)) = self.bottleneck.poll_with_time(now) {
            self.wan.enqueue(exit, p);
        }
        self.wan.poll(now)
    }

    /// The earliest instant `poll` could make progress.
    pub fn next_wake(&self) -> Option<SimTime> {
        match (self.bottleneck.next_wake(), self.wan.next_wake()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    /// Re-rate the bottleneck (radio capacity changed).
    pub fn set_rate_bps(&mut self, now: SimTime, rate_bps: f64) {
        self.bottleneck.set_rate_bps(now, rate_bps);
    }

    /// Stall the bottleneck serialiser (handover execution).
    pub fn pause_until(&mut self, now: SimTime, until: SimTime) {
        self.bottleneck.pause_until(now, until);
    }

    /// Set the extra per-packet air-interface delay (retransmissions).
    pub fn set_extra_delay(&mut self, extra: SimDuration) {
        self.bottleneck.set_extra_prop(extra);
    }

    /// Bottleneck queue depth in bytes.
    pub fn queued_bytes(&self) -> usize {
        self.bottleneck.queued_bytes()
    }

    /// Bottleneck queue counters.
    pub fn queue_stats(&self) -> QueueStats {
        self.bottleneck.queue_stats()
    }

    /// Injector counters: (dropped, duplicated, corrupted, passed).
    pub fn fault_counters(&self) -> (u64, u64, u64, u64) {
        self.faults.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, PacketKind, IP_UDP_OVERHEAD};
    use bytes::Bytes;
    use rpav_sim::RngSet;

    fn pkt(seq: u64, now: SimTime) -> Packet {
        Packet::new(
            seq,
            Bytes::from(vec![0u8; 1000 - IP_UDP_OVERHEAD]),
            PacketKind::Media,
            now,
        )
    }

    fn quiet_path() -> Path {
        let rngs = RngSet::new(11);
        Path::new(
            FaultConfig::default(),
            rngs.stream("fault"),
            8_000_000.0,
            SimDuration::from_millis(5),
            usize::MAX,
            SimDuration::from_millis(12),
            SimDuration::ZERO,
            rngs.stream("wan"),
        )
    }

    #[test]
    fn end_to_end_delay_is_sum_of_stages() {
        let mut path = quiet_path();
        let t0 = SimTime::from_secs(1);
        path.enqueue(t0, pkt(0, t0));
        // 1 ms serialisation + 5 ms radio prop + 12 ms WAN = 18 ms.
        let expected = t0 + SimDuration::from_millis(18);
        assert!(path.poll(expected - SimDuration::from_micros(1)).is_none());
        assert_eq!(path.poll(expected).unwrap().seq, 0);
    }

    #[test]
    fn all_packets_eventually_arrive_in_order() {
        let mut path = quiet_path();
        let t0 = SimTime::ZERO;
        for i in 0..100 {
            path.enqueue(t0 + SimDuration::from_millis(i), pkt(i, t0));
        }
        let mut seen = 0u64;
        let mut t = t0;
        let horizon = SimTime::from_secs(10);
        while t < horizon && seen < 100 {
            while let Some(p) = path.poll(t) {
                assert_eq!(p.seq, seen);
                seen += 1;
            }
            t = path
                .next_wake()
                .unwrap_or(horizon)
                .max(t + SimDuration::from_micros(1));
        }
        assert_eq!(seen, 100);
    }

    #[test]
    fn full_drop_path_delivers_nothing() {
        let rngs = RngSet::new(13);
        let mut path = Path::new(
            FaultConfig {
                drop_chance: 1.0,
                ..Default::default()
            },
            rngs.stream("fault"),
            8_000_000.0,
            SimDuration::ZERO,
            usize::MAX,
            SimDuration::ZERO,
            SimDuration::ZERO,
            rngs.stream("wan"),
        );
        let t0 = SimTime::ZERO;
        for i in 0..10 {
            assert!(!path.enqueue(t0, pkt(i, t0)));
        }
        assert!(path.poll(SimTime::from_secs(60)).is_none());
        assert_eq!(path.fault_counters().0, 10);
    }

    #[test]
    fn pause_propagates_to_bottleneck() {
        let mut path = quiet_path();
        let t0 = SimTime::from_secs(1);
        path.pause_until(t0, t0 + SimDuration::from_secs(1));
        path.enqueue(t0, pkt(0, t0));
        // Nothing before the pause lifts + 18 ms of pipeline.
        assert!(path.poll(t0 + SimDuration::from_millis(1000)).is_none());
        assert!(path.poll(t0 + SimDuration::from_millis(1018)).is_some());
    }
}
