//! A multi-stage unidirectional path.
//!
//! [`Path`] composes a fault injector, a bottleneck link and a delay pipe
//! into the canonical "access link + WAN" shape used for both directions of
//! the measurement pipeline:
//!
//! ```text
//! sender ──► FaultInjector ──► BottleneckLink (radio) ──► DelayPipe (WAN) ──► receiver
//! ```
//!
//! The owner drives the composition: `enqueue` at the entry, then `poll` in
//! a loop at each simulation step; internally packets cascade between stages
//! at their due times.
//!
//! An optional exit-side [`ReorderStage`] (attached with
//! [`Path::set_reorder`]) sits after the WAN pipe and models routes that
//! deliver out of order; scripted reorder windows retune it on the fly.

use std::collections::VecDeque;

use rpav_sim::{SimDuration, SimRng, SimTime};

use crate::fault::{FaultConfig, FaultInjector, FaultOutcome};
use crate::link::{BottleneckLink, DelayPipe};
use crate::packet::Packet;
use crate::queue::QueueStats;
use crate::reorder::{ReorderConfig, ReorderStage, ReorderStats};
use crate::script::{FaultScript, OutageScheduler, ScriptStats};

/// Fault injector + bottleneck + WAN pipe (+ optional reorder stage), in
/// series.
#[derive(Debug)]
pub struct Path {
    faults: FaultInjector,
    pub(crate) bottleneck: BottleneckLink,
    wan: DelayPipe,
    script: Option<OutageScheduler>,
    /// Latest blackout end already applied as a bottleneck pause (guards
    /// against re-extending the pause on every poll inside one window).
    script_paused_until: SimTime,
    /// Exit-side reordering, if attached.
    reorder: Option<ReorderStage>,
    /// Packets past every stage, awaiting hand-off to the caller (the
    /// reorder stage can release several per poll).
    ready: VecDeque<Packet>,
}

impl Path {
    /// Assemble a path.
    ///
    /// * `faults` — impairment applied before the bottleneck.
    /// * `bottleneck_rate_bps`, `bottleneck_delay`, `queue_bytes` — the
    ///   rate-limited access stage.
    /// * `wan_delay`, `wan_jitter` — the wired leg.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        fault_config: FaultConfig,
        fault_rng: SimRng,
        bottleneck_rate_bps: f64,
        bottleneck_delay: SimDuration,
        queue_bytes: usize,
        wan_delay: SimDuration,
        wan_jitter: SimDuration,
        wan_rng: SimRng,
    ) -> Self {
        Path {
            faults: FaultInjector::new(fault_config, fault_rng),
            bottleneck: BottleneckLink::new(
                bottleneck_rate_bps,
                bottleneck_delay,
                queue_bytes,
                usize::MAX,
            ),
            wan: DelayPipe::new(wan_delay, wan_jitter, wan_rng),
            script: None,
            script_paused_until: SimTime::ZERO,
            reorder: None,
            ready: VecDeque::new(),
        }
    }

    /// Attach a scripted fault campaign to this path. Replaces any script
    /// attached earlier; counters restart from zero.
    pub fn set_script(&mut self, script: FaultScript, rng: SimRng) {
        self.script = Some(OutageScheduler::new(script, rng));
    }

    /// Attach an exit-side reorder stage. With `config.chance == 0` the
    /// stage is transparent (and drawless) until a scripted reorder window
    /// activates it.
    pub fn set_reorder(&mut self, config: ReorderConfig, rng: SimRng) {
        self.reorder = Some(ReorderStage::new(config, rng));
    }

    /// Counters of the attached reorder stage, if any.
    pub fn reorder_stats(&self) -> Option<ReorderStats> {
        self.reorder.as_ref().map(|r| r.stats())
    }

    /// Report the UAV position to positional script clauses (no-op without
    /// a script).
    pub fn set_position(&mut self, x: f64, y: f64, z: f64) {
        if let Some(s) = self.script.as_mut() {
            s.set_position(x, y, z);
        }
    }

    /// Whether an attached script has a full blackout in force at `now`.
    pub fn script_blackout_active(&self, now: SimTime) -> bool {
        self.script
            .as_ref()
            .map(|s| s.blackout_active(now))
            .unwrap_or(false)
    }

    /// Drop/admit counters of the attached script, if any.
    pub fn script_stats(&self) -> Option<ScriptStats> {
        self.script.as_ref().map(|s| s.stats())
    }

    /// Stall the serialiser while a timed blackout is in force (applied at
    /// most once per window, so queued packets resume exactly at its end).
    fn apply_script_pause(&mut self, now: SimTime) {
        if let Some(until) = self.script.as_ref().and_then(|s| s.blackout_until(now)) {
            if until > self.script_paused_until {
                self.script_paused_until = until;
                self.bottleneck.pause_until(now, until);
            }
        }
    }

    /// Offer a packet at the path entry. Returns `false` if it was dropped
    /// immediately (script, fault or full queue).
    pub fn enqueue(&mut self, now: SimTime, mut packet: Packet) -> bool {
        self.apply_script_pause(now);
        let mut scripted_copy = None;
        if let Some(s) = self.script.as_mut() {
            if !s.admit(now, &packet) {
                return false;
            }
            // Scripted duplication/corruption windows bite after
            // admission; a duplicate traverses the fault injector as its
            // own packet, exactly like an injector-produced one.
            if s.impair(now, &mut packet) {
                scripted_copy = Some(packet.clone());
            }
        }
        let delivered = self.offer_to_faults(now, packet);
        match scripted_copy {
            Some(copy) => self.offer_to_faults(now, copy) || delivered,
            None => delivered,
        }
    }

    fn offer_to_faults(&mut self, now: SimTime, packet: Packet) -> bool {
        match self.faults.offer(packet) {
            FaultOutcome::Drop => false,
            FaultOutcome::Pass(p) => self.bottleneck.enqueue(now, p),
            FaultOutcome::Duplicate(a, b) => {
                let ra = self.bottleneck.enqueue(now, a);
                let rb = self.bottleneck.enqueue(now, b);
                ra || rb
            }
        }
    }

    /// Drain one packet that has fully traversed the path, if due.
    pub fn poll(&mut self, now: SimTime) -> Option<Packet> {
        self.apply_script_pause(now);
        // Idle fast path: with nothing buffered and no stage due, the full
        // cascade below is a guaranteed no-op — the bottleneck is advanced
        // eagerly on enqueue/re-rate, so "nothing due" implies its lazy
        // `advance` would not change state either — and the reorder retune
        // can wait for a poll that actually offers packets (the window only
        // gates `offer`, never the time-based flush).
        if self.ready.is_empty() && self.next_wake().is_none_or(|w| w > now) {
            return None;
        }
        // Scripted reorder windows retune the exit stage.
        if let (Some(r), Some(s)) = (self.reorder.as_mut(), self.script.as_ref()) {
            match s.reorder_params(now) {
                Some((prob, disp)) => r.set_window(prob, disp),
                None => r.clear_window(),
            }
        }
        // Cascade: bottleneck output feeds the WAN pipe at the instant each
        // packet actually exited the bottleneck, not at the poll time.
        while let Some((exit, p)) = self.bottleneck.poll_with_time(now) {
            // Scripted delay spikes bite between radio exit and the WAN.
            let exit = match self.script.as_ref() {
                Some(s) => exit + s.extra_delay(exit),
                None => exit,
            };
            self.wan.enqueue(exit, p);
        }
        loop {
            if let Some(p) = self.ready.pop_front() {
                return Some(p);
            }
            let Some(p) = self.wan.poll(now) else { break };
            match self.reorder.as_mut() {
                Some(r) => self.ready.extend(r.offer(now, p)),
                None => return Some(p),
            }
        }
        // Quiet wire: time-based release of held packets.
        if let Some(r) = self.reorder.as_mut() {
            self.ready.extend(r.flush_due(now));
        }
        self.ready.pop_front()
    }

    /// Drain every packet deliverable at `now` into `out`, in the exact
    /// order repeated [`poll`](Self::poll) calls would return them — but
    /// with one script-pause application, one reorder retune and one
    /// bottleneck→WAN cascade for the whole batch instead of one per
    /// delivered packet. The hot receive loop drains a few packets per
    /// visited tick, so the per-call overhead is worth amortising.
    pub fn drain_due(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        self.apply_script_pause(now);
        if self.ready.is_empty() && self.next_wake().is_none_or(|w| w > now) {
            return;
        }
        if let (Some(r), Some(s)) = (self.reorder.as_mut(), self.script.as_ref()) {
            match s.reorder_params(now) {
                Some((prob, disp)) => r.set_window(prob, disp),
                None => r.clear_window(),
            }
        }
        while let Some((exit, p)) = self.bottleneck.poll_with_time(now) {
            let exit = match self.script.as_ref() {
                Some(s) => exit + s.extra_delay(exit),
                None => exit,
            };
            self.wan.enqueue(exit, p);
        }
        out.extend(self.ready.drain(..));
        while let Some(p) = self.wan.poll(now) {
            match self.reorder.as_mut() {
                Some(r) => out.extend(r.offer(now, p)),
                None => out.push(p),
            }
        }
        if let Some(r) = self.reorder.as_mut() {
            out.extend(r.flush_due(now));
        }
    }

    /// The earliest instant `poll` could make progress.
    pub fn next_wake(&self) -> Option<SimTime> {
        let held = self.reorder.as_ref().and_then(|r| r.next_release());
        [self.bottleneck.next_wake(), self.wan.next_wake(), held]
            .into_iter()
            .flatten()
            .min()
    }

    /// Like [`next_wake`](Self::next_wake), additionally folding in the
    /// next scripted timed-blackout start after `now`: an adaptive driver
    /// must visit that instant so the serialiser stall is applied exactly
    /// when a per-tick driver would apply it.
    pub fn next_wake_scripted(&self, now: SimTime) -> Option<SimTime> {
        let edge = self
            .script
            .as_ref()
            .and_then(|s| s.next_blackout_start(now));
        [self.next_wake(), edge].into_iter().flatten().min()
    }

    /// Re-rate the bottleneck (radio capacity changed).
    pub fn set_rate_bps(&mut self, now: SimTime, rate_bps: f64) {
        self.bottleneck.set_rate_bps(now, rate_bps);
    }

    /// Stall the bottleneck serialiser (handover execution).
    pub fn pause_until(&mut self, now: SimTime, until: SimTime) {
        self.bottleneck.pause_until(now, until);
    }

    /// Set the extra per-packet air-interface delay (retransmissions).
    pub fn set_extra_delay(&mut self, extra: SimDuration) {
        self.bottleneck.set_extra_prop(extra);
    }

    /// Bottleneck queue depth in bytes.
    pub fn queued_bytes(&self) -> usize {
        self.bottleneck.queued_bytes()
    }

    /// Bottleneck queue counters.
    pub fn queue_stats(&self) -> QueueStats {
        self.bottleneck.queue_stats()
    }

    /// Injector counters: (dropped, duplicated, corrupted, passed).
    pub fn fault_counters(&self) -> (u64, u64, u64, u64) {
        self.faults.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, PacketKind, IP_UDP_OVERHEAD};
    use bytes::Bytes;
    use rpav_sim::RngSet;

    fn pkt(seq: u64, now: SimTime) -> Packet {
        Packet::new(
            seq,
            Bytes::from(vec![0u8; 1000 - IP_UDP_OVERHEAD]),
            PacketKind::Media,
            now,
        )
    }

    fn quiet_path() -> Path {
        let rngs = RngSet::new(11);
        Path::new(
            FaultConfig::default(),
            rngs.stream("fault"),
            8_000_000.0,
            SimDuration::from_millis(5),
            usize::MAX,
            SimDuration::from_millis(12),
            SimDuration::ZERO,
            rngs.stream("wan"),
        )
    }

    #[test]
    fn end_to_end_delay_is_sum_of_stages() {
        let mut path = quiet_path();
        let t0 = SimTime::from_secs(1);
        path.enqueue(t0, pkt(0, t0));
        // 1 ms serialisation + 5 ms radio prop + 12 ms WAN = 18 ms.
        let expected = t0 + SimDuration::from_millis(18);
        assert!(path.poll(expected - SimDuration::from_micros(1)).is_none());
        assert_eq!(path.poll(expected).unwrap().seq, 0);
    }

    #[test]
    fn all_packets_eventually_arrive_in_order() {
        let mut path = quiet_path();
        let t0 = SimTime::ZERO;
        for i in 0..100 {
            path.enqueue(t0 + SimDuration::from_millis(i), pkt(i, t0));
        }
        let mut seen = 0u64;
        let mut t = t0;
        let horizon = SimTime::from_secs(10);
        while t < horizon && seen < 100 {
            while let Some(p) = path.poll(t) {
                assert_eq!(p.seq, seen);
                seen += 1;
            }
            t = path
                .next_wake()
                .unwrap_or(horizon)
                .max(t + SimDuration::from_micros(1));
        }
        assert_eq!(seen, 100);
    }

    #[test]
    fn full_drop_path_delivers_nothing() {
        let rngs = RngSet::new(13);
        let mut path = Path::new(
            FaultConfig {
                drop_chance: 1.0,
                ..Default::default()
            },
            rngs.stream("fault"),
            8_000_000.0,
            SimDuration::ZERO,
            usize::MAX,
            SimDuration::ZERO,
            SimDuration::ZERO,
            rngs.stream("wan"),
        );
        let t0 = SimTime::ZERO;
        for i in 0..10 {
            assert!(!path.enqueue(t0, pkt(i, t0)));
        }
        assert!(path.poll(SimTime::from_secs(60)).is_none());
        assert_eq!(path.fault_counters().0, 10);
    }

    #[test]
    fn scripted_blackout_drops_new_and_stalls_queued() {
        use crate::script::FaultScript;
        let mut path = quiet_path();
        let rngs = RngSet::new(21);
        let t0 = SimTime::from_secs(1);
        let bo_start = t0 + SimDuration::from_millis(10);
        path.set_script(
            FaultScript::new().blackout(bo_start, SimDuration::from_secs(2)),
            rngs.stream("script"),
        );
        // Before the window: passes.
        assert!(path.enqueue(t0, pkt(0, t0)));
        // Queued at entry just before the blackout: survives but is stalled.
        assert!(path.enqueue(bo_start - SimDuration::from_micros(1), pkt(1, bo_start)));
        // Inside the window: dropped at entry.
        let inside = bo_start + SimDuration::from_secs(1);
        assert!(!path.enqueue(inside, pkt(2, inside)));
        assert!(path.script_blackout_active(inside));
        // First packet was in service before the pause; the stalled one only
        // arrives after the window plus the remaining pipeline.
        let mut got = Vec::new();
        let mut t = t0;
        let horizon = t0 + SimDuration::from_secs(6);
        while t < horizon {
            while let Some(p) = path.poll(t) {
                got.push((p.seq, t));
            }
            t += SimDuration::from_millis(1);
        }
        assert_eq!(got.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![0, 1]);
        let bo_end = bo_start + SimDuration::from_secs(2);
        assert!(got[1].1 >= bo_end, "stalled packet released early");
        assert_eq!(path.script_stats().unwrap().blackout_dropped, 1);
    }

    #[test]
    fn reorder_stage_inverts_order_but_conserves_packets() {
        use crate::reorder::ReorderConfig;
        let mut path = quiet_path();
        path.set_reorder(
            ReorderConfig {
                chance: 0.3,
                max_displacement: 4,
                max_hold: SimDuration::from_millis(50),
            },
            RngSet::new(31).stream("reorder"),
        );
        let t0 = SimTime::ZERO;
        for i in 0..300 {
            path.enqueue(t0 + SimDuration::from_millis(i), pkt(i, t0));
        }
        let mut got = Vec::new();
        let mut t = t0;
        let horizon = SimTime::from_secs(10);
        while t < horizon {
            while let Some(p) = path.poll(t) {
                got.push(p.seq);
            }
            t = path
                .next_wake()
                .unwrap_or(horizon)
                .max(t + SimDuration::from_micros(1));
        }
        assert_eq!(got.len(), 300, "reordering must not lose packets");
        let inversions = got.windows(2).filter(|w| w[1] < w[0]).count();
        assert!(inversions > 0, "30% hold chance must reorder something");
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn scripted_duplicate_and_corrupt_windows_apply() {
        use crate::script::FaultScript;
        let mut path = quiet_path();
        let rngs = RngSet::new(41);
        let t0 = SimTime::ZERO;
        path.set_script(
            FaultScript::new()
                .duplicate_window(t0, SimDuration::from_secs(1), 1.0, None)
                .corrupt_window(SimTime::from_secs(2), SimDuration::from_secs(1), 1.0, None),
            rngs.stream("script"),
        );
        // Inside the duplication window: two copies arrive.
        path.enqueue(t0, pkt(0, t0));
        // Inside the corruption window: one damaged copy arrives.
        let t_corrupt = SimTime::from_millis(2_500);
        path.enqueue(t_corrupt, pkt(1, t_corrupt));
        let mut got = Vec::new();
        let mut t = t0;
        while t < SimTime::from_secs(5) {
            while let Some(p) = path.poll(t) {
                got.push(p);
            }
            t += SimDuration::from_millis(1);
        }
        let zeros = got.iter().filter(|p| p.seq == 0).count();
        assert_eq!(zeros, 2, "duplication window must emit two copies");
        let ones: Vec<_> = got.iter().filter(|p| p.seq == 1).collect();
        assert_eq!(ones.len(), 1);
        assert!(ones[0].corrupted, "corruption window must damage payload");
        let stats = path.script_stats().unwrap();
        assert_eq!(stats.duplicated, 1);
        assert_eq!(stats.corrupted, 1);
    }

    #[test]
    fn pause_propagates_to_bottleneck() {
        let mut path = quiet_path();
        let t0 = SimTime::from_secs(1);
        path.pause_until(t0, t0 + SimDuration::from_secs(1));
        path.enqueue(t0, pkt(0, t0));
        // Nothing before the pause lifts + 18 ms of pipeline.
        assert!(path.poll(t0 + SimDuration::from_millis(1000)).is_none());
        assert!(path.poll(t0 + SimDuration::from_millis(1018)).is_some());
    }
}
