//! A multi-stage unidirectional path.
//!
//! [`Path`] composes a fault injector, a bottleneck link and a delay pipe
//! into the canonical "access link + WAN" shape used for both directions of
//! the measurement pipeline:
//!
//! ```text
//! sender ──► FaultInjector ──► BottleneckLink (radio) ──► DelayPipe (WAN) ──► receiver
//! ```
//!
//! The owner drives the composition: `enqueue` at the entry, then `poll` in
//! a loop at each simulation step; internally packets cascade between stages
//! at their due times.

use rpav_sim::{SimDuration, SimRng, SimTime};

use crate::fault::{FaultConfig, FaultInjector, FaultOutcome};
use crate::link::{BottleneckLink, DelayPipe};
use crate::packet::Packet;
use crate::queue::QueueStats;
use crate::script::{FaultScript, OutageScheduler, ScriptStats};

/// Fault injector + bottleneck + WAN pipe, in series.
#[derive(Debug)]
pub struct Path {
    faults: FaultInjector,
    pub(crate) bottleneck: BottleneckLink,
    wan: DelayPipe,
    script: Option<OutageScheduler>,
    /// Latest blackout end already applied as a bottleneck pause (guards
    /// against re-extending the pause on every poll inside one window).
    script_paused_until: SimTime,
}

impl Path {
    /// Assemble a path.
    ///
    /// * `faults` — impairment applied before the bottleneck.
    /// * `bottleneck_rate_bps`, `bottleneck_delay`, `queue_bytes` — the
    ///   rate-limited access stage.
    /// * `wan_delay`, `wan_jitter` — the wired leg.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        fault_config: FaultConfig,
        fault_rng: SimRng,
        bottleneck_rate_bps: f64,
        bottleneck_delay: SimDuration,
        queue_bytes: usize,
        wan_delay: SimDuration,
        wan_jitter: SimDuration,
        wan_rng: SimRng,
    ) -> Self {
        Path {
            faults: FaultInjector::new(fault_config, fault_rng),
            bottleneck: BottleneckLink::new(
                bottleneck_rate_bps,
                bottleneck_delay,
                queue_bytes,
                usize::MAX,
            ),
            wan: DelayPipe::new(wan_delay, wan_jitter, wan_rng),
            script: None,
            script_paused_until: SimTime::ZERO,
        }
    }

    /// Attach a scripted fault campaign to this path. Replaces any script
    /// attached earlier; counters restart from zero.
    pub fn set_script(&mut self, script: FaultScript, rng: SimRng) {
        self.script = Some(OutageScheduler::new(script, rng));
    }

    /// Report the UAV position to positional script clauses (no-op without
    /// a script).
    pub fn set_position(&mut self, x: f64, y: f64, z: f64) {
        if let Some(s) = self.script.as_mut() {
            s.set_position(x, y, z);
        }
    }

    /// Whether an attached script has a full blackout in force at `now`.
    pub fn script_blackout_active(&self, now: SimTime) -> bool {
        self.script
            .as_ref()
            .map(|s| s.blackout_active(now))
            .unwrap_or(false)
    }

    /// Drop/admit counters of the attached script, if any.
    pub fn script_stats(&self) -> Option<ScriptStats> {
        self.script.as_ref().map(|s| s.stats())
    }

    /// Stall the serialiser while a timed blackout is in force (applied at
    /// most once per window, so queued packets resume exactly at its end).
    fn apply_script_pause(&mut self, now: SimTime) {
        if let Some(until) = self.script.as_ref().and_then(|s| s.blackout_until(now)) {
            if until > self.script_paused_until {
                self.script_paused_until = until;
                self.bottleneck.pause_until(now, until);
            }
        }
    }

    /// Offer a packet at the path entry. Returns `false` if it was dropped
    /// immediately (script, fault or full queue).
    pub fn enqueue(&mut self, now: SimTime, packet: Packet) -> bool {
        self.apply_script_pause(now);
        if let Some(s) = self.script.as_mut() {
            if !s.admit(now, &packet) {
                return false;
            }
        }
        match self.faults.offer(packet) {
            FaultOutcome::Drop => false,
            FaultOutcome::Pass(p) => self.bottleneck.enqueue(now, p),
            FaultOutcome::Duplicate(a, b) => {
                let ra = self.bottleneck.enqueue(now, a);
                let rb = self.bottleneck.enqueue(now, b);
                ra || rb
            }
        }
    }

    /// Drain one packet that has fully traversed the path, if due.
    pub fn poll(&mut self, now: SimTime) -> Option<Packet> {
        self.apply_script_pause(now);
        // Cascade: bottleneck output feeds the WAN pipe at the instant each
        // packet actually exited the bottleneck, not at the poll time.
        while let Some((exit, p)) = self.bottleneck.poll_with_time(now) {
            // Scripted delay spikes bite between radio exit and the WAN.
            let exit = match self.script.as_ref() {
                Some(s) => exit + s.extra_delay(exit),
                None => exit,
            };
            self.wan.enqueue(exit, p);
        }
        self.wan.poll(now)
    }

    /// The earliest instant `poll` could make progress.
    pub fn next_wake(&self) -> Option<SimTime> {
        match (self.bottleneck.next_wake(), self.wan.next_wake()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    /// Re-rate the bottleneck (radio capacity changed).
    pub fn set_rate_bps(&mut self, now: SimTime, rate_bps: f64) {
        self.bottleneck.set_rate_bps(now, rate_bps);
    }

    /// Stall the bottleneck serialiser (handover execution).
    pub fn pause_until(&mut self, now: SimTime, until: SimTime) {
        self.bottleneck.pause_until(now, until);
    }

    /// Set the extra per-packet air-interface delay (retransmissions).
    pub fn set_extra_delay(&mut self, extra: SimDuration) {
        self.bottleneck.set_extra_prop(extra);
    }

    /// Bottleneck queue depth in bytes.
    pub fn queued_bytes(&self) -> usize {
        self.bottleneck.queued_bytes()
    }

    /// Bottleneck queue counters.
    pub fn queue_stats(&self) -> QueueStats {
        self.bottleneck.queue_stats()
    }

    /// Injector counters: (dropped, duplicated, corrupted, passed).
    pub fn fault_counters(&self) -> (u64, u64, u64, u64) {
        self.faults.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, PacketKind, IP_UDP_OVERHEAD};
    use bytes::Bytes;
    use rpav_sim::RngSet;

    fn pkt(seq: u64, now: SimTime) -> Packet {
        Packet::new(
            seq,
            Bytes::from(vec![0u8; 1000 - IP_UDP_OVERHEAD]),
            PacketKind::Media,
            now,
        )
    }

    fn quiet_path() -> Path {
        let rngs = RngSet::new(11);
        Path::new(
            FaultConfig::default(),
            rngs.stream("fault"),
            8_000_000.0,
            SimDuration::from_millis(5),
            usize::MAX,
            SimDuration::from_millis(12),
            SimDuration::ZERO,
            rngs.stream("wan"),
        )
    }

    #[test]
    fn end_to_end_delay_is_sum_of_stages() {
        let mut path = quiet_path();
        let t0 = SimTime::from_secs(1);
        path.enqueue(t0, pkt(0, t0));
        // 1 ms serialisation + 5 ms radio prop + 12 ms WAN = 18 ms.
        let expected = t0 + SimDuration::from_millis(18);
        assert!(path.poll(expected - SimDuration::from_micros(1)).is_none());
        assert_eq!(path.poll(expected).unwrap().seq, 0);
    }

    #[test]
    fn all_packets_eventually_arrive_in_order() {
        let mut path = quiet_path();
        let t0 = SimTime::ZERO;
        for i in 0..100 {
            path.enqueue(t0 + SimDuration::from_millis(i), pkt(i, t0));
        }
        let mut seen = 0u64;
        let mut t = t0;
        let horizon = SimTime::from_secs(10);
        while t < horizon && seen < 100 {
            while let Some(p) = path.poll(t) {
                assert_eq!(p.seq, seen);
                seen += 1;
            }
            t = path
                .next_wake()
                .unwrap_or(horizon)
                .max(t + SimDuration::from_micros(1));
        }
        assert_eq!(seen, 100);
    }

    #[test]
    fn full_drop_path_delivers_nothing() {
        let rngs = RngSet::new(13);
        let mut path = Path::new(
            FaultConfig {
                drop_chance: 1.0,
                ..Default::default()
            },
            rngs.stream("fault"),
            8_000_000.0,
            SimDuration::ZERO,
            usize::MAX,
            SimDuration::ZERO,
            SimDuration::ZERO,
            rngs.stream("wan"),
        );
        let t0 = SimTime::ZERO;
        for i in 0..10 {
            assert!(!path.enqueue(t0, pkt(i, t0)));
        }
        assert!(path.poll(SimTime::from_secs(60)).is_none());
        assert_eq!(path.fault_counters().0, 10);
    }

    #[test]
    fn scripted_blackout_drops_new_and_stalls_queued() {
        use crate::script::FaultScript;
        let mut path = quiet_path();
        let rngs = RngSet::new(21);
        let t0 = SimTime::from_secs(1);
        let bo_start = t0 + SimDuration::from_millis(10);
        path.set_script(
            FaultScript::new().blackout(bo_start, SimDuration::from_secs(2)),
            rngs.stream("script"),
        );
        // Before the window: passes.
        assert!(path.enqueue(t0, pkt(0, t0)));
        // Queued at entry just before the blackout: survives but is stalled.
        assert!(path.enqueue(bo_start - SimDuration::from_micros(1), pkt(1, bo_start)));
        // Inside the window: dropped at entry.
        let inside = bo_start + SimDuration::from_secs(1);
        assert!(!path.enqueue(inside, pkt(2, inside)));
        assert!(path.script_blackout_active(inside));
        // First packet was in service before the pause; the stalled one only
        // arrives after the window plus the remaining pipeline.
        let mut got = Vec::new();
        let mut t = t0;
        let horizon = t0 + SimDuration::from_secs(6);
        while t < horizon {
            while let Some(p) = path.poll(t) {
                got.push((p.seq, t));
            }
            t += SimDuration::from_millis(1);
        }
        assert_eq!(got.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![0, 1]);
        let bo_end = bo_start + SimDuration::from_secs(2);
        assert!(got[1].1 >= bo_end, "stalled packet released early");
        assert_eq!(path.script_stats().unwrap().blackout_dropped, 1);
    }

    #[test]
    fn pause_propagates_to_bottleneck() {
        let mut path = quiet_path();
        let t0 = SimTime::from_secs(1);
        path.pause_until(t0, t0 + SimDuration::from_secs(1));
        path.enqueue(t0, pkt(0, t0));
        // Nothing before the pause lifts + 18 ms of pipeline.
        assert!(path.poll(t0 + SimDuration::from_millis(1000)).is_none());
        assert!(path.poll(t0 + SimDuration::from_millis(1018)).is_some());
    }
}
